//! The OCTOPUS engine facade: the keyword-based interface of Figure 2.
//!
//! [`Octopus`] owns the graph, the topic model, and every offline index
//! (bound tables, per-topic seed tables, topic samples, the influencer
//! index, the autocomplete trie), and exposes the three analysis services
//! plus the UI helpers, all keyed by plain keywords and user names:
//!
//! * [`Octopus::find_influencers`] — Scenario 1;
//! * [`Octopus::suggest_keywords`] — Scenario 2 (+ radar charts);
//! * [`Octopus::explore_paths`] — Scenario 3;
//! * [`Octopus::autocomplete`] — name completion.

use crate::budget::{Anytime, QualityBound, QueryBudget};
use crate::cache::{CacheStats, QueryCache};
use crate::error::CoreError;
use crate::kim::bounds::BoundKind;
use crate::kim::{topic_sample, KimAlgorithm, KimResult, KimStats, NaiveKim};
use crate::offline::persist::{self, Fingerprint, StageKeys};
use crate::offline::view::MappedArtifacts;
use crate::offline::{self, OfflineArtifacts, PbSource, StageReuse, StageTiming};
use crate::paths::{explore, ExploreDirection, PathExploration};
use crate::piks::{GreedyPiks, PiksConfig, PiksResult};
use crate::Result;
use octopus_graph::{NodeId, TopicGraph};
use octopus_topics::radar::{keyword_radar, RadarChart};
use octopus_topics::{KeywordId, TopicDistribution, TopicModel};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Which KIM engine answers influencer queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KimEngineChoice {
    /// Per-query OPIM from scratch (the baseline).
    Naive,
    /// Marginal influence sort.
    Mis,
    /// Best-effort with the given bound estimator.
    BestEffort(BoundKind),
    /// Topic samples over a best-effort core.
    TopicSample {
        /// Bound estimator of the inner best-effort engine.
        bound: BoundKind,
        /// Dirichlet samples beyond the `Z` corners.
        extra_samples: usize,
        /// L1 radius inside which a sample answers directly.
        direct_eps: f64,
    },
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct OctopusConfig {
    /// KIM engine choice.
    pub kim: KimEngineChoice,
    /// MIA threshold for exact spread evaluation and path exploration.
    pub mia_theta: f64,
    /// Offline seed-set depth (max `k` MIS / topic samples can serve).
    pub k_max: usize,
    /// RR sets per pure-topic CELF run (MIS offline phase).
    pub mis_rr_per_topic: usize,
    /// Worlds in the PIKS influencer index.
    pub piks_index_size: usize,
    /// Safety factor of the PB bound.
    pub pb_safety: f64,
    /// Exploration depth of the LG bound.
    pub lg_depth: u32,
    /// Safety factor of the LG bound.
    pub lg_safety: f64,
    /// Keyword-suggestion configuration.
    pub piks: PiksConfig,
    /// How many top paths an exploration reports.
    pub top_paths: usize,
    /// Online query-cache capacity (0 disables caching).
    pub cache_capacity: usize,
    /// L1 tolerance within which a cached query answers a new one.
    pub cache_tolerance: f64,
    /// Master RNG seed for all offline sampling.
    pub seed: u64,
}

impl Default for OctopusConfig {
    fn default() -> Self {
        OctopusConfig {
            kim: KimEngineChoice::BestEffort(BoundKind::Precomputation),
            mia_theta: 1.0 / 320.0,
            k_max: 50,
            mis_rr_per_topic: 4000,
            piks_index_size: 2048,
            pb_safety: 1.2,
            lg_depth: 2,
            lg_safety: 1.1,
            piks: PiksConfig::default(),
            top_paths: 10,
            cache_capacity: 128,
            cache_tolerance: 1e-9,
            seed: 0x0C70_9005,
        }
    }
}

/// One ranked seed in a KIM answer.
#[derive(Debug, Clone, PartialEq)]
pub struct SeedInfo {
    /// The user.
    pub node: NodeId,
    /// Display name (numeric fallback for anonymous graphs).
    pub name: String,
    /// Selection rank (0 = first seed).
    pub rank: usize,
}

/// Answer to a keyword influencer query.
#[derive(Debug, Clone)]
pub struct KimAnswer {
    /// Resolved query keywords.
    pub keywords: Vec<KeywordId>,
    /// Query words that did not resolve.
    pub unknown: Vec<String>,
    /// The induced topic distribution.
    pub gamma: TopicDistribution,
    /// Ranked seeds.
    pub seeds: Vec<SeedInfo>,
    /// Engine result (spread + work stats).
    pub result: KimResult,
    /// Online latency of the query.
    pub elapsed: Duration,
}

/// Answer to a keyword-suggestion query.
#[derive(Debug, Clone)]
pub struct SuggestAnswer {
    /// The target user.
    pub user: NodeId,
    /// Display name.
    pub user_name: String,
    /// Suggested keywords as strings.
    pub words: Vec<String>,
    /// Engine result (ids, gamma, spread, stats).
    pub result: PiksResult,
    /// Radar chart of the suggested set.
    pub radar: RadarChart,
    /// Online latency of the query.
    pub elapsed: Duration,
}

/// Operational summary of an engine instance (sizes of every offline
/// structure) — what a deployment dashboard would scrape.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemReport {
    /// Users in the graph.
    pub users: usize,
    /// Directed influence edges.
    pub edges: usize,
    /// Topics.
    pub topics: usize,
    /// Keywords in the vocabulary.
    pub keywords: usize,
    /// Worlds in the PIKS influencer index.
    pub piks_worlds: usize,
    /// Nodes stored across PIKS worlds.
    pub piks_stored_nodes: usize,
    /// Whether per-topic PB bound tables are resident.
    pub pb_tables: bool,
    /// Precomputed topic samples (0 unless the topic-sample engine is on).
    pub topic_samples: usize,
    /// Entries currently in the query cache.
    pub cached_queries: usize,
    /// Global MIA spread cap (the NB/LG bound constant).
    pub spread_cap: f64,
    /// Per-stage wall-clock timings of the offline phase. A fresh build
    /// reports [`offline::STAGE_ORDER`] (plus
    /// [`persist::STAGE_ARTIFACT_STORE`] when a cache was written); an
    /// engine fully restored by [`Octopus::open_or_build`] or
    /// [`Octopus::open_mapped`] reports the three artifact stages —
    /// [`persist::STAGE_ARTIFACT_MAP`], [`persist::STAGE_ARTIFACT_VALIDATE`],
    /// [`persist::STAGE_ARTIFACT_DECODE`] — and zero build stages; a
    /// *partial* rebuild reports exactly the stages that ran.
    pub stage_timings: Vec<StageTiming>,
    /// Per-stage cache hit/miss counters of the offline phase, always one
    /// entry per [`offline::STAGE_ORDER`] stage. [`Octopus::new`] reports
    /// all-miss; [`Octopus::open_or_build`] reports how many work units of
    /// each stage were reloaded — `piks-worlds` is world-granular and
    /// `spread-cap`/`pb-bound`/`mis-tables` are topic-granular, so a
    /// k-edge delta shows `reused < total` with the untouched worlds still
    /// counted as hits, and a topic-z-confined nudge shows `Z-1/Z` on the
    /// weight stages with only topic z rebuilt.
    pub stage_reuse: Vec<StageReuse>,
    /// Wall-clock duration of the whole offline phase. For
    /// [`Octopus::open_or_build`] this spans cache lookup (file reads,
    /// section decode, per-world footprint screening) plus whatever
    /// rebuilding remained — full build, partial rebuild, or pure load —
    /// so partial-vs-full comparisons are honest. Stages overlap, so this
    /// can be less than the timing sum.
    pub offline_build_total: Duration,
    /// Whether the offline artifacts were loaded from the on-disk cache
    /// instead of built (always `false` for [`Octopus::new`]).
    pub cache_hit: bool,
}

/// Where the engine's offline structures live: decoded on the heap, or
/// served zero-copy off a memory-mapped OCTA v5 file.
///
/// Both modes answer every operator bit-identically (pinned by the
/// `mapped_mode` tests); the difference is purely operational — startup
/// cost, resident memory, and page-cache sharing across replicas.
// One store exists per engine, so the Owned/Mapped size gap is irrelevant;
// boxing the owned artifacts would add a pointer hop to every hot-path access.
#[allow(clippy::large_enum_variant)]
enum ArtifactStore {
    /// Heap-decoded artifacts ([`Octopus::new`] / [`Octopus::open_or_build`]).
    Owned(OfflineArtifacts),
    /// A mapped v5 artifact, plus the telemetry captured when the engine
    /// entered mapped mode ([`Octopus::open_mapped`]): a pure mapped hit
    /// carries the three artifact stages, a build-then-remap carries the
    /// build stages followed by them.
    Mapped {
        art: MappedArtifacts,
        timings: Vec<StageTiming>,
        reuse: Vec<StageReuse>,
        build_total: Duration,
    },
}

/// The OCTOPUS engine.
///
/// `Octopus` is `Send + Sync`: all offline structures are immutable after
/// construction and the query cache is internally synchronized, so one
/// instance behind an `Arc` serves concurrent query threads.
pub struct Octopus {
    graph: TopicGraph,
    model: TopicModel,
    config: OctopusConfig,
    /// Everything the offline pipeline precomputed (see [`offline::build`]),
    /// owned or mapped.
    store: ArtifactStore,
    /// Whether the offline structures came from the on-disk artifact cache.
    cache_hit: bool,
    user_keywords: HashMap<NodeId, Vec<KeywordId>>,
    cache: QueryCache,
}

// One engine instance must be shareable across query threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Octopus>();
};

impl Octopus {
    /// Build the engine: validates graph/model agreement, then runs the
    /// staged offline pipeline ([`offline::build`]) for every phase the
    /// configured engines need.
    pub fn new(graph: TopicGraph, model: TopicModel, config: OctopusConfig) -> Result<Self> {
        check_shapes(&graph, &model)?;
        let offline = offline::build(&graph, &config);
        Ok(Self::from_parts(graph, model, config, offline, false))
    }

    /// Build the engine, reusing every cached offline stage whose inputs
    /// are unchanged and rebuilding only the rest.
    ///
    /// Reuse is decided per work unit by [`StageKeys`]: each OCTA cache
    /// section is keyed on exactly the input slice its unit reads — for
    /// the weight-dependent stages (`spread-cap`/`pb-bound`/`mis-tables`)
    /// that is one topic's sparse weight slice per unit — so after a small
    /// graph delta (a weight nudge from a warm EM refit, an edge insert, a
    /// rename) the unchanged units — and, world-by-world, every PIKS world
    /// whose BFS footprint missed the delta — reload from `cache_dir`
    /// while the invalidated ones rebuild. A topic-z-confined nudge
    /// therefore recomputes exactly topic z's cap/PB/MIS units. The lookup degrades,
    /// never fails: missing, truncated, corrupted, stale-version (v1–v4), or
    /// foreign files only reduce how much is reused, after which the merged
    /// artifacts are written back atomically (write failures are ignored —
    /// a read-only cache directory costs the speedup, not the engine).
    ///
    /// [`SystemReport::stage_reuse`] reports the per-stage hit/miss
    /// breakdown. When **everything** was reused, [`SystemReport::cache_hit`]
    /// is `true` and [`SystemReport::stage_timings`] holds only the three
    /// artifact stages — map (plain file reads on this owned path),
    /// validate (framing + checksums), decode: zero offline stages ran.
    /// Reused-or-rebuilt makes no observable difference — a partially
    /// rebuilt engine is bit-identical to a freshly built one (pinned by
    /// the `build_determinism` and `delta_invalidation` tests), so every
    /// query answers the same either way.
    ///
    /// # Example
    ///
    /// ```
    /// use octopus_core::engine::{Octopus, OctopusConfig};
    /// use octopus_graph::GraphBuilder;
    /// use octopus_topics::{TopicModel, Vocabulary};
    ///
    /// let mut b = GraphBuilder::new(1);
    /// let ada = b.add_node("ada");
    /// let grace = b.add_node("grace");
    /// b.add_edge(ada, grace, &[(0, 0.5)]).unwrap();
    /// let graph = b.build().unwrap();
    /// let mut vocab = Vocabulary::new();
    /// vocab.intern("compilers");
    /// let model = TopicModel::from_rows(vocab, vec![vec![1.0]], vec![1.0]).unwrap();
    /// let config = OctopusConfig {
    ///     piks_index_size: 16,
    ///     mis_rr_per_topic: 32,
    ///     k_max: 2,
    ///     ..Default::default()
    /// };
    ///
    /// let dir = std::env::temp_dir().join("octopus-doc-open-or-build");
    /// // First open builds the offline artifacts and persists them…
    /// let cold = Octopus::open_or_build(graph.clone(), model.clone(), config.clone(), &dir)?;
    /// // …so reopening with identical inputs reuses every stage.
    /// let warm = Octopus::open_or_build(graph, model, config, &dir)?;
    /// assert!(warm.cache_hit());
    /// assert!(warm.system_report().stage_reuse.iter().all(|s| s.is_full()));
    /// assert_eq!(
    ///     cold.find_influencers("compilers", 1)?.seeds,
    ///     warm.find_influencers("compilers", 1)?.seeds,
    /// );
    /// # std::fs::remove_dir_all(&dir).ok();
    /// # Ok::<(), octopus_core::CoreError>(())
    /// ```
    pub fn open_or_build(
        graph: TopicGraph,
        model: TopicModel,
        config: OctopusConfig,
        cache_dir: &std::path::Path,
    ) -> Result<Self> {
        check_shapes(&graph, &model)?;
        let fp = Fingerprint::compute(&graph, &config);
        let keys = StageKeys::compute(&graph, &config);
        let t0 = Instant::now();
        let lookup = persist::lookup(cache_dir, &fp, &keys, &graph, &config);
        let mut offline = offline::build_with_reuse(&graph, &config, lookup.slots);
        // the offline phase a caller observes spans the cache lookup
        // (file reads, section decode, per-world footprint screening) AND
        // whatever rebuilding remained — not just the build half
        offline.build_total = t0.elapsed();
        let path = fp.cache_path(cache_dir);
        if offline.fully_reused() {
            // a full hit not served by the exact-fingerprint file alone
            // (donor epochs contributed, or the exact file is missing or
            // damaged) earns a merged write-back under the exact name, so
            // the next identical open fast-paths instead of re-scanning
            // and re-screening every donor
            if lookup.sources.as_slice() != [path.clone()] {
                let _ = persist::save(&offline, &fp, &keys, &path);
                persist::prune(cache_dir, &[&path]);
            }
            let t = lookup.timings;
            offline.timings = vec![
                StageTiming {
                    stage: persist::STAGE_ARTIFACT_MAP,
                    duration: t.map,
                },
                StageTiming {
                    stage: persist::STAGE_ARTIFACT_VALIDATE,
                    duration: t.validate,
                },
                StageTiming {
                    stage: persist::STAGE_ARTIFACT_DECODE,
                    duration: t.decode,
                },
            ];
            offline.build_total = t0.elapsed();
            return Ok(Self::from_parts(graph, model, config, offline, true));
        }
        let t_store = Instant::now();
        if persist::save(&offline, &fp, &keys, &path).is_ok() {
            offline.timings.push(StageTiming {
                stage: persist::STAGE_ARTIFACT_STORE,
                duration: t_store.elapsed(),
            });
            persist::prune(cache_dir, &[&path]);
        }
        Ok(Self::from_parts(graph, model, config, offline, false))
    }

    /// Open the engine in **mapped mode**: serve queries zero-copy off a
    /// memory-mapped OCTA v5 artifact instead of decoding it onto the heap.
    ///
    /// Fast path: when `cache_dir` holds a complete artifact whose combined
    /// fingerprint and every per-stage key match these exact inputs, the
    /// file is mapped and validated in `O(pages touched)` — header, section
    /// table, and the small eager sections only (see
    /// [`crate::offline::view`]) — so startup cost no longer scales with
    /// the big PB/MIS/PIKS tables, and replicas mapping the same file share
    /// its page cache. [`SystemReport::cache_hit`] is `true`; the deferred
    /// section checksums verify lazily at first operator touch and fail
    /// closed ([`CoreError::Artifact`]) if the file was damaged.
    ///
    /// Miss path: the artifacts are built (or partially reused) through the
    /// owned pipeline, written back, and the freshly written file is mapped
    /// — a cold start still ends in mapped mode, paying the build once. If
    /// even that is impossible (say, an unwritable cache directory), the
    /// engine falls back to owned mode. Answers are bit-identical in every
    /// mode (pinned by the `mapped_mode` tests).
    pub fn open_mapped(
        graph: TopicGraph,
        model: TopicModel,
        config: OctopusConfig,
        cache_dir: &std::path::Path,
    ) -> Result<Self> {
        Self::open_mapped_inner(graph, model, config, cache_dir, false)
    }

    /// [`Octopus::open_mapped`] with every section checksum verified up
    /// front (the `--paranoid` flag of `exp_runner`): damage anywhere in
    /// the file fails the mapped open instead of the first query touching
    /// the damaged section.
    pub fn open_mapped_paranoid(
        graph: TopicGraph,
        model: TopicModel,
        config: OctopusConfig,
        cache_dir: &std::path::Path,
    ) -> Result<Self> {
        Self::open_mapped_inner(graph, model, config, cache_dir, true)
    }

    fn open_mapped_inner(
        graph: TopicGraph,
        model: TopicModel,
        config: OctopusConfig,
        cache_dir: &std::path::Path,
        paranoid: bool,
    ) -> Result<Self> {
        check_shapes(&graph, &model)?;
        let fp = Fingerprint::compute(&graph, &config);
        let keys = StageKeys::compute(&graph, &config);
        let path = fp.cache_path(cache_dir);
        let t0 = Instant::now();
        if let Ok(art) = offline::view::open(&path, &fp, &keys, &graph, &config, paranoid) {
            let store = ArtifactStore::Mapped {
                timings: art.timings().to_vec(),
                reuse: art.reuse().to_vec(),
                build_total: art.open_total(),
                art,
            };
            return Ok(Self::from_store(graph, model, config, store, true));
        }
        // No exact mappable file. Run the owned open — which salvages
        // whatever cached sections still match and rebuilds the rest —
        // write the merged artifact back, and map the fresh file.
        let lookup = persist::lookup(cache_dir, &fp, &keys, &graph, &config);
        let mut offline = offline::build_with_reuse(&graph, &config, lookup.slots);
        let full = offline.fully_reused();
        let t_store = Instant::now();
        if persist::save(&offline, &fp, &keys, &path).is_ok() {
            offline.timings.push(StageTiming {
                stage: persist::STAGE_ARTIFACT_STORE,
                duration: t_store.elapsed(),
            });
            persist::prune(cache_dir, &[&path]);
            if let Ok(art) = offline::view::open(&path, &fp, &keys, &graph, &config, paranoid) {
                let mut timings = std::mem::take(&mut offline.timings);
                timings.extend(art.timings().iter().cloned());
                let store = ArtifactStore::Mapped {
                    timings,
                    reuse: std::mem::take(&mut offline.reuse),
                    build_total: t0.elapsed(),
                    art,
                };
                return Ok(Self::from_store(graph, model, config, store, full));
            }
        }
        // Mapping is impossible here: stay owned rather than fail.
        offline.build_total = t0.elapsed();
        Ok(Self::from_store(
            graph,
            model,
            config,
            ArtifactStore::Owned(offline),
            full,
        ))
    }

    fn from_parts(
        graph: TopicGraph,
        model: TopicModel,
        config: OctopusConfig,
        offline: OfflineArtifacts,
        cache_hit: bool,
    ) -> Self {
        Self::from_store(
            graph,
            model,
            config,
            ArtifactStore::Owned(offline),
            cache_hit,
        )
    }

    fn from_store(
        graph: TopicGraph,
        model: TopicModel,
        config: OctopusConfig,
        store: ArtifactStore,
        cache_hit: bool,
    ) -> Self {
        let cache = QueryCache::new(config.cache_capacity, config.cache_tolerance);
        Octopus {
            graph,
            model,
            config,
            store,
            cache_hit,
            user_keywords: HashMap::new(),
            cache,
        }
    }

    /// Whether this engine's offline artifacts came from the on-disk cache
    /// (only ever `true` for [`Octopus::open_or_build`] and
    /// [`Octopus::open_mapped`]).
    pub fn cache_hit(&self) -> bool {
        self.cache_hit
    }

    /// Whether this engine serves queries zero-copy off a memory-mapped
    /// artifact (see [`Octopus::open_mapped`]).
    pub fn is_mapped(&self) -> bool {
        matches!(self.store, ArtifactStore::Mapped { .. })
    }

    /// `"mapped"` or `"owned"` — how the offline structures are held.
    pub fn mode(&self) -> &'static str {
        if self.is_mapped() {
            "mapped"
        } else {
            "owned"
        }
    }

    /// The mapped artifact this engine serves from (`None` in owned mode).
    pub fn mapped_artifacts(&self) -> Option<&MappedArtifacts> {
        match &self.store {
            ArtifactStore::Mapped { art, .. } => Some(art),
            ArtifactStore::Owned(_) => None,
        }
    }

    /// Per-stage wall-clock timings of the offline phase, mode-agnostic
    /// (what [`SystemReport::stage_timings`] reports).
    pub fn stage_timings(&self) -> &[StageTiming] {
        match &self.store {
            ArtifactStore::Owned(a) => &a.timings,
            ArtifactStore::Mapped { timings, .. } => timings,
        }
    }

    /// Per-stage cache reuse counters of the offline phase, mode-agnostic
    /// (what [`SystemReport::stage_reuse`] reports).
    pub fn stage_reuse(&self) -> &[StageReuse] {
        match &self.store {
            ArtifactStore::Owned(a) => &a.reuse,
            ArtifactStore::Mapped { reuse, .. } => reuse,
        }
    }

    /// The artifacts the offline pipeline produced (sizes, tables, per-stage
    /// timings).
    ///
    /// # Panics
    ///
    /// In mapped mode there are no owned artifacts to return — use
    /// [`Octopus::mapped_artifacts`], [`Octopus::stage_timings`], and
    /// [`Octopus::stage_reuse`] instead.
    pub fn offline_artifacts(&self) -> &OfflineArtifacts {
        match &self.store {
            ArtifactStore::Owned(art) => art,
            ArtifactStore::Mapped { .. } => {
                panic!("offline_artifacts() is owned-mode only; this engine is mapped")
            }
        }
    }

    /// The global MIA spread cap, whichever mode holds it.
    fn spread_cap(&self) -> f64 {
        match &self.store {
            ArtifactStore::Owned(a) => a.cap,
            ArtifactStore::Mapped { art, .. } => art.cap(),
        }
    }

    /// The precomputed topic samples, whichever mode holds them.
    fn topic_samples(&self) -> &[topic_sample::TopicSample] {
        match &self.store {
            ArtifactStore::Owned(a) => &a.samples,
            ArtifactStore::Mapped { art, .. } => art.samples(),
        }
    }

    /// PB tables for a best-effort run: owned tables, or a zero-copy view
    /// (whose section checksum verifies on first touch and fails closed).
    fn pb_source(&self) -> Result<PbSource<'_>> {
        match &self.store {
            ArtifactStore::Owned(a) => Ok(PbSource::Owned(a.pb.as_ref())),
            ArtifactStore::Mapped { art, .. } => Ok(PbSource::View(art.pb_view()?)),
        }
    }

    /// Exact name lookup against whichever trie form is resident.
    fn name_lookup(&self, name: &str) -> Option<NodeId> {
        match &self.store {
            ArtifactStore::Owned(a) => a.names.lookup(name),
            ArtifactStore::Mapped { art, .. } => art.trie_view().lookup(name),
        }
    }

    /// Prefix completion against whichever trie form is resident.
    fn name_complete(&self, prefix: &str, limit: usize) -> Vec<(NodeId, String, f64)> {
        match &self.store {
            ArtifactStore::Owned(a) => a.names.complete(prefix, limit),
            ArtifactStore::Mapped { art, .. } => art.trie_view().complete(prefix, limit),
        }
    }

    /// Attach per-user keyword candidates (from the action log: "keywords
    /// extracted from paper titles of the researcher"). Without this, the
    /// suggestion service falls back to model-derived candidates.
    pub fn with_user_keywords(mut self, map: HashMap<NodeId, Vec<KeywordId>>) -> Self {
        self.user_keywords = map;
        self
    }

    /// The per-user keyword candidates attached via
    /// [`Octopus::with_user_keywords`] (empty if none were). The serving
    /// layer reads this to carry the overrides forward onto the rebuilt
    /// engine of the next epoch.
    pub fn user_keywords(&self) -> &HashMap<NodeId, Vec<KeywordId>> {
        &self.user_keywords
    }

    /// The underlying graph.
    pub fn graph(&self) -> &TopicGraph {
        &self.graph
    }

    /// The topic model.
    pub fn model(&self) -> &TopicModel {
        &self.model
    }

    /// The configuration.
    pub fn config(&self) -> &OctopusConfig {
        &self.config
    }

    /// Online query-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Operational summary of the resident offline structures.
    pub fn system_report(&self) -> SystemReport {
        // structure sizes come straight from whichever form is resident;
        // in mapped mode PB presence is a config property (the open already
        // validated that the section agrees with it), so reporting never
        // forces a lazy checksum
        let (piks_worlds, piks_stored_nodes, pb_tables, topic_samples, build_total) =
            match &self.store {
                ArtifactStore::Owned(a) => (
                    a.piks_index.len(),
                    a.piks_index.stats().stored_nodes,
                    a.pb.is_some(),
                    a.samples.len(),
                    a.build_total,
                ),
                ArtifactStore::Mapped {
                    art, build_total, ..
                } => (
                    art.piks_len(),
                    art.piks_stored_nodes(),
                    offline::needs_pb(&self.config),
                    art.samples().len(),
                    *build_total,
                ),
            };
        SystemReport {
            users: self.graph.node_count(),
            edges: self.graph.edge_count(),
            topics: self.graph.num_topics(),
            keywords: self.model.vocab_size(),
            piks_worlds,
            piks_stored_nodes,
            pb_tables,
            topic_samples,
            cached_queries: self.cache.len(),
            spread_cap: self.spread_cap(),
            stage_timings: self.stage_timings().to_vec(),
            stage_reuse: self.stage_reuse().to_vec(),
            offline_build_total: build_total,
            cache_hit: self.cache_hit,
        }
    }

    /// Influence-vs-budget curve: the engine's spread estimate for every
    /// prefix of the `k_max`-seed greedy solution. Marketing teams use this
    /// to pick the campaign budget where marginal reach flattens.
    ///
    /// One engine call computes the deepest seed set; prefix spreads are
    /// reconstructed from the greedy marginal structure, so the curve is
    /// consistent with [`Octopus::find_influencers_gamma`] at every `k`.
    pub fn influence_curve(
        &self,
        gamma: &TopicDistribution,
        k_max: usize,
    ) -> Result<Vec<(usize, f64)>> {
        if k_max == 0 {
            return Err(CoreError::ZeroK);
        }
        self.graph.check_gamma(gamma.as_slice())?;
        let probs = self.graph.materialize(gamma.as_slice())?;
        let res = self.find_influencers_gamma(gamma, k_max)?;
        let mut curve = Vec::with_capacity(res.seeds.len());
        for k in 1..=res.seeds.len() {
            let spread = octopus_mia::mia_spread_set(
                &self.graph,
                &probs,
                &res.seeds[..k],
                self.config.mia_theta,
            );
            curve.push((k, spread));
        }
        Ok(curve)
    }

    /// Keyword-based influence maximization with an already-resolved `γ`.
    pub fn find_influencers_gamma(&self, gamma: &TopicDistribution, k: usize) -> Result<KimResult> {
        if k == 0 {
            return Err(CoreError::ZeroK);
        }
        self.graph.check_gamma(gamma.as_slice())?;
        if let Some(mut hit) = self.cache.get(gamma, k) {
            hit.stats.answered_from_cache = true;
            return Ok(hit);
        }
        let res = match self.config.kim {
            KimEngineChoice::Naive => NaiveKim::new(&self.graph).select(gamma, k),
            KimEngineChoice::Mis => match &self.store {
                ArtifactStore::Owned(a) => a
                    .mis
                    .as_ref()
                    .expect("MIS built at construction")
                    .select(gamma, k),
                ArtifactStore::Mapped { art, .. } => art
                    .mis_view()?
                    .expect("MIS section present in mapped artifact")
                    .select(gamma, k),
            },
            KimEngineChoice::BestEffort(bound) => {
                let pb = self.pb_source()?;
                offline::run_best_effort(
                    &self.graph,
                    bound,
                    pb,
                    self.spread_cap(),
                    &self.config,
                    gamma,
                    k,
                    &[],
                )
            }
            KimEngineChoice::TopicSample {
                bound, direct_eps, ..
            } => {
                // nearest-sample lookup against the stored samples (borrowed
                // — the samples are immutable offline artifacts, so the
                // query path never clones them); direct-answer rule shared
                // with the TopicSampleKim engine via the topic_sample helpers
                let pb = self.pb_source()?;
                let samples = self.topic_samples();
                match topic_sample::nearest_sample(samples, gamma) {
                    Some((idx, dist)) => {
                        topic_sample::direct_answer(samples, idx, dist, direct_eps, k)
                            .unwrap_or_else(|| {
                                let warm: Vec<NodeId> =
                                    samples[idx].seeds.iter().copied().take(k.max(1)).collect();
                                offline::run_best_effort(
                                    &self.graph,
                                    bound,
                                    pb,
                                    self.spread_cap(),
                                    &self.config,
                                    gamma,
                                    k,
                                    &warm,
                                )
                            })
                    }
                    None => offline::run_best_effort(
                        &self.graph,
                        bound,
                        pb,
                        self.spread_cap(),
                        &self.config,
                        gamma,
                        k,
                        &[],
                    ),
                }
            }
        };
        self.cache.put(gamma.clone(), k, res.clone());
        Ok(res)
    }

    /// Scenario 1: keyword-based influential user discovery.
    pub fn find_influencers(&self, query: &str, k: usize) -> Result<KimAnswer> {
        let (keywords, unknown) = self.model.vocab().resolve_query(query);
        if keywords.is_empty() {
            return Err(CoreError::NoKnownKeywords { unknown });
        }
        let gamma = self.model.infer(&keywords)?;
        let start = Instant::now();
        let result = self.find_influencers_gamma(&gamma, k)?;
        let elapsed = start.elapsed();
        let seeds = result
            .seeds
            .iter()
            .enumerate()
            .map(|(rank, &node)| SeedInfo {
                node,
                name: self
                    .graph
                    .name(node)
                    .map(str::to_string)
                    .unwrap_or_else(|| node.0.to_string()),
                rank,
            })
            .collect();
        Ok(KimAnswer {
            keywords,
            unknown,
            gamma,
            seeds,
            result,
            elapsed,
        })
    }

    /// Keyword candidates for a user: log-provided if available, otherwise
    /// the top keywords of the user's strongest outgoing topics.
    pub fn keyword_candidates(&self, user: NodeId) -> Vec<KeywordId> {
        if let Some(ws) = self.user_keywords.get(&user) {
            if !ws.is_empty() {
                return ws.clone();
            }
        }
        // fallback: aggregate outgoing edge mass per topic
        let mut mass = vec![0.0f64; self.graph.num_topics()];
        for (_, e) in self.graph.out_edges(user) {
            for (z, p) in self.graph.edge_topic_probs(e) {
                mass[z.index()] += p as f64;
            }
        }
        let mut topics: Vec<(usize, f64)> = mass
            .into_iter()
            .enumerate()
            .filter(|&(_, m)| m > 0.0)
            .collect();
        topics.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite mass"));
        let mut out = Vec::new();
        for (z, _) in topics.into_iter().take(2) {
            for (w, _) in self.model.top_keywords(z, 8) {
                if !out.contains(&w) {
                    out.push(w);
                }
            }
        }
        out
    }

    /// Scenario 2: personalized influential keyword suggestion by user name.
    pub fn suggest_keywords(&self, user: &str, k: usize) -> Result<SuggestAnswer> {
        let node = self
            .name_lookup(user)
            .or_else(|| self.graph.node_by_name(user))
            .ok_or_else(|| CoreError::UnknownUser(user.to_string()))?;
        self.suggest_keywords_for(node, k)
    }

    /// Scenario 2 by node id.
    pub fn suggest_keywords_for(&self, user: NodeId, k: usize) -> Result<SuggestAnswer> {
        self.graph.check_node(user)?;
        let candidates = self.keyword_candidates(user);
        let start = Instant::now();
        let index: crate::piks::PiksHandle<'_> = match &self.store {
            ArtifactStore::Owned(a) => (&a.piks_index).into(),
            ArtifactStore::Mapped { art, .. } => art.piks_view()?.into(),
        };
        let engine = GreedyPiks::new(&self.graph, &self.model, index, self.config.piks.clone());
        let result = engine.suggest(user, &candidates, k)?;
        let elapsed = start.elapsed();
        let words = result
            .keywords
            .iter()
            .map(|&w| self.model.vocab().word(w).map(str::to_string))
            .collect::<octopus_topics::Result<Vec<_>>>()?;
        let radar = octopus_topics::radar::keyword_set_radar(&self.model, &result.keywords)?;
        Ok(SuggestAnswer {
            user,
            user_name: self
                .graph
                .name(user)
                .map(str::to_string)
                .unwrap_or_else(|| user.0.to_string()),
            words,
            result,
            radar,
            elapsed,
        })
    }

    /// Scenario 3: influential path exploration by user name. `query` may
    /// narrow the analysis to a keyword topic; `None` explores under the
    /// topic prior.
    pub fn explore_paths(
        &self,
        user: &str,
        direction: ExploreDirection,
        query: Option<&str>,
    ) -> Result<PathExploration> {
        let node = self
            .name_lookup(user)
            .or_else(|| self.graph.node_by_name(user))
            .ok_or_else(|| CoreError::UnknownUser(user.to_string()))?;
        let gamma = match query {
            Some(q) => {
                let (ws, unknown) = self.model.vocab().resolve_query(q);
                if ws.is_empty() {
                    return Err(CoreError::NoKnownKeywords { unknown });
                }
                self.model.infer(&ws)?
            }
            None => TopicDistribution::from_weights(
                (0..self.model.num_topics())
                    .map(|z| self.model.topic_prior(z))
                    .collect(),
            )
            .map_err(CoreError::Topic)?,
        };
        explore(
            &self.graph,
            node,
            &gamma,
            self.config.mia_theta,
            direction,
            self.config.top_paths,
        )
    }

    /// Name auto-completion.
    pub fn autocomplete(&self, prefix: &str, limit: usize) -> Vec<(NodeId, String, f64)> {
        self.name_complete(prefix, limit)
    }

    /// Radar chart for one keyword (UI keyword interpretation).
    pub fn keyword_radar(&self, word: &str) -> Result<RadarChart> {
        let w = self.model.vocab().require(word)?;
        Ok(keyword_radar(&self.model, w)?)
    }

    // ------------------------------------------------------------------
    // Anytime (budgeted) operator variants.
    //
    // Every variant dispatches to the exact path unchanged when the budget
    // is unlimited (so an infinite budget is bit-identical to the exact
    // operator), and otherwise returns a best-so-far answer with a
    // `QualityBound`. Finite-budget answers bypass the query cache in both
    // directions: they must not poison exact answers, and a cached exact
    // answer would make the degraded path nondeterministic in the budget.
    // At a fixed *sample* budget every variant is a deterministic function
    // of the snapshot (per-set RR streams, pinned candidate/axis orders);
    // deadlines are checked only at deterministic chunk boundaries.
    // ------------------------------------------------------------------

    /// [`Octopus::find_influencers_gamma`] under a [`QueryBudget`], also
    /// reporting per-seed marginal gains (what a scatter-gather merge
    /// ranks by). The finite-budget path runs the budgeted OPIM sampler —
    /// the one estimator with a certificate — regardless of the
    /// configured engine; its Chernoff bounds become the
    /// [`QualityBound`].
    pub fn find_influencers_budgeted_gamma(
        &self,
        gamma: &TopicDistribution,
        k: usize,
        budget: &QueryBudget,
    ) -> Result<(KimResult, QualityBound, Vec<f64>)> {
        if k == 0 {
            return Err(CoreError::ZeroK);
        }
        self.graph.check_gamma(gamma.as_slice())?;
        if budget.is_unlimited() {
            let result = self.find_influencers_gamma(gamma, k)?;
            // exact per-seed gains from the MIA prefix curve, consistent
            // with influence_curve()
            let probs = self.graph.materialize(gamma.as_slice())?;
            let mut gains = Vec::with_capacity(result.seeds.len());
            let mut prev = 0.0;
            for i in 1..=result.seeds.len() {
                let s = octopus_mia::mia_spread_set(
                    &self.graph,
                    &probs,
                    &result.seeds[..i],
                    self.config.mia_theta,
                );
                gains.push((s - prev).max(0.0));
                prev = s;
            }
            let bound = QualityBound::exact(result.spread);
            return Ok((result, bound, gains));
        }
        let start = Instant::now();
        let probs = self.graph.materialize(gamma.as_slice())?;
        let opts = octopus_cascade::OpimOptions {
            k,
            ..octopus_cascade::OpimOptions::default()
        };
        let ob = octopus_cascade::OpimBudget {
            max_rr_sets: budget.samples,
            deadline: budget.deadline_from(start),
        };
        let res = octopus_cascade::opim_select_budgeted(&self.graph, &probs, &opts, &ob);
        let bound = QualityBound::degraded(
            res.spread_lower,
            res.opt_upper.min(self.graph.node_count() as f64),
            res.rr_sets,
        );
        let result = KimResult {
            seeds: res.seeds,
            spread: res.spread,
            stats: KimStats {
                exact_evaluations: res.rr_sets,
                ..KimStats::default()
            },
        };
        Ok((result, bound, res.gains))
    }

    /// Scenario 1 under a [`QueryBudget`].
    pub fn find_influencers_budgeted(
        &self,
        query: &str,
        k: usize,
        budget: &QueryBudget,
    ) -> Result<Anytime<KimAnswer>> {
        let (keywords, unknown) = self.model.vocab().resolve_query(query);
        if keywords.is_empty() {
            return Err(CoreError::NoKnownKeywords { unknown });
        }
        let gamma = self.model.infer(&keywords)?;
        let start = Instant::now();
        let (result, bound, _gains) = self.find_influencers_budgeted_gamma(&gamma, k, budget)?;
        let elapsed = start.elapsed();
        let seeds = result
            .seeds
            .iter()
            .enumerate()
            .map(|(rank, &node)| SeedInfo {
                node,
                name: self
                    .graph
                    .name(node)
                    .map(str::to_string)
                    .unwrap_or_else(|| node.0.to_string()),
                rank,
            })
            .collect();
        Ok(Anytime {
            value: KimAnswer {
                keywords,
                unknown,
                gamma,
                seeds,
                result,
                elapsed,
            },
            bound,
        })
    }

    /// Scenario 2 under a [`QueryBudget`], by user name.
    pub fn suggest_keywords_budgeted(
        &self,
        user: &str,
        k: usize,
        budget: &QueryBudget,
    ) -> Result<Anytime<SuggestAnswer>> {
        let node = self
            .name_lookup(user)
            .or_else(|| self.graph.node_by_name(user))
            .ok_or_else(|| CoreError::UnknownUser(user.to_string()))?;
        self.suggest_keywords_for_budgeted(node, k, budget)
    }

    /// Scenario 2 under a [`QueryBudget`], by node id.
    ///
    /// The sample budget caps how many keyword candidates the greedy
    /// scores, taken as a *prefix* of the pinned candidate order (so a
    /// fixed budget is deterministic); under a deadline the candidate
    /// prefix doubles per chunk, keeping the last completed answer. The
    /// bound's lower edge is the degraded answer's own spread (the exact
    /// greedy anchors at the best singleton of a candidate superset);
    /// the upper edge is the engine's global MIA spread cap.
    pub fn suggest_keywords_for_budgeted(
        &self,
        user: NodeId,
        k: usize,
        budget: &QueryBudget,
    ) -> Result<Anytime<SuggestAnswer>> {
        if budget.is_unlimited() {
            let ans = self.suggest_keywords_for(user, k)?;
            let spread = ans.result.spread;
            return Ok(Anytime::exact(ans, spread));
        }
        self.graph.check_node(user)?;
        let candidates = self.keyword_candidates(user);
        if candidates.is_empty() {
            return Err(CoreError::NoCandidates {
                user: self
                    .graph
                    .name(user)
                    .map(str::to_string)
                    .unwrap_or_else(|| user.0.to_string()),
            });
        }
        let start = Instant::now();
        let deadline = budget.deadline_from(start);
        let cap = candidates
            .len()
            .min(budget.samples.unwrap_or(usize::MAX))
            .max(1);
        let index: crate::piks::PiksHandle<'_> = match &self.store {
            ArtifactStore::Owned(a) => (&a.piks_index).into(),
            ArtifactStore::Mapped { art, .. } => art.piks_view()?.into(),
        };
        let engine = GreedyPiks::new(&self.graph, &self.model, index, self.config.piks.clone());
        // progressive refinement: no deadline → one run at the cap;
        // deadline → doubling candidate prefixes, best-so-far kept
        let mut m = if deadline.is_some() {
            cap.min(k.max(2))
        } else {
            cap
        };
        let mut result = engine.suggest(user, &candidates[..m], k)?;
        while m < cap && deadline.is_none_or(|d| Instant::now() < d) {
            m = (m * 2).min(cap);
            result = engine.suggest(user, &candidates[..m], k)?;
        }
        let elapsed = start.elapsed();
        let words = result
            .keywords
            .iter()
            .map(|&w| self.model.vocab().word(w).map(str::to_string))
            .collect::<octopus_topics::Result<Vec<_>>>()?;
        let radar = octopus_topics::radar::keyword_set_radar(&self.model, &result.keywords)?;
        let bound = QualityBound::degraded(result.spread, self.spread_cap(), m);
        let ans = SuggestAnswer {
            user,
            user_name: self
                .graph
                .name(user)
                .map(str::to_string)
                .unwrap_or_else(|| user.0.to_string()),
            words,
            result,
            radar,
            elapsed,
        };
        Ok(Anytime { value: ans, bound })
    }

    /// Scenario 3 under a [`QueryBudget`].
    ///
    /// The sample budget raises the effective MIA threshold to
    /// `max(mia_theta, 1/samples)`, shrinking the tree the exploration
    /// walks; under a deadline the threshold descends geometrically from
    /// a coarse start, keeping the last completed tree. The bound is the
    /// MIA truncation argument: a node missing from a `θ`-truncated tree
    /// contributes `< θ` influence each, so the exact influence lies in
    /// `[influence, influence + θ_eff·(n − reached)]`.
    pub fn explore_paths_budgeted(
        &self,
        user: &str,
        direction: ExploreDirection,
        query: Option<&str>,
        budget: &QueryBudget,
    ) -> Result<Anytime<PathExploration>> {
        if budget.is_unlimited() {
            let ex = self.explore_paths(user, direction, query)?;
            let influence = ex.influence;
            return Ok(Anytime::exact(ex, influence));
        }
        let node = self
            .name_lookup(user)
            .or_else(|| self.graph.node_by_name(user))
            .ok_or_else(|| CoreError::UnknownUser(user.to_string()))?;
        let gamma = match query {
            Some(q) => {
                let (ws, unknown) = self.model.vocab().resolve_query(q);
                if ws.is_empty() {
                    return Err(CoreError::NoKnownKeywords { unknown });
                }
                self.model.infer(&ws)?
            }
            None => TopicDistribution::from_weights(
                (0..self.model.num_topics())
                    .map(|z| self.model.topic_prior(z))
                    .collect(),
            )
            .map_err(CoreError::Topic)?,
        };
        let start = Instant::now();
        let deadline = budget.deadline_from(start);
        let theta_target = budget
            .samples
            .map(|s| (1.0 / s.max(1) as f64).max(self.config.mia_theta))
            .unwrap_or(self.config.mia_theta);
        let run = |theta: f64| {
            explore(
                &self.graph,
                node,
                &gamma,
                theta,
                direction,
                self.config.top_paths,
            )
        };
        let mut theta = if deadline.is_some() {
            theta_target.max(1.0 / 64.0)
        } else {
            theta_target
        };
        let mut ex = run(theta)?;
        while theta > theta_target && deadline.is_none_or(|d| Instant::now() < d) {
            theta = (theta / 8.0).max(theta_target);
            ex = run(theta)?;
        }
        if theta <= self.config.mia_theta {
            // the walk ran at the exact threshold: nothing was degraded
            let influence = ex.influence;
            return Ok(Anytime::exact(ex, influence));
        }
        let n = self.graph.node_count() as f64;
        let slack = theta * (n - ex.reached as f64).max(0.0);
        let bound = QualityBound::degraded(ex.influence, (ex.influence + slack).min(n), ex.reached);
        Ok(Anytime { value: ex, bound })
    }

    /// Name auto-completion under a [`QueryBudget`]. Trie walks are
    /// sublinear and never degraded — every budget returns the exact
    /// completion list (the bound's value is the hit count).
    pub fn autocomplete_budgeted(
        &self,
        prefix: &str,
        limit: usize,
        _budget: &QueryBudget,
    ) -> Anytime<Vec<(NodeId, String, f64)>> {
        let hits = self.name_complete(prefix, limit);
        let score = hits.len() as f64;
        Anytime::exact(hits, score)
    }

    /// Keyword radar under a [`QueryBudget`]. The sample budget keeps the
    /// top-`b` axes by mass (ties to the lower axis index) and zeroes the
    /// rest without renormalizing; kept mass bounds the chart's total
    /// mass from below, kept mass plus `(axes − b)` copies of the
    /// smallest kept value from above. Deadlines never bind (the chart
    /// is one vocabulary row). Always completes; never degraded when
    /// `b ≥ axes`.
    pub fn keyword_radar_budgeted(
        &self,
        word: &str,
        budget: &QueryBudget,
    ) -> Result<Anytime<RadarChart>> {
        let chart = self.keyword_radar(word)?;
        let total: f64 = chart.values.iter().sum();
        let b = budget.samples.unwrap_or(usize::MAX);
        if budget.is_unlimited() || b >= chart.values.len() {
            return Ok(Anytime::exact(chart, total));
        }
        let b = b.max(1);
        // top-b axes by value, ties to the lower axis index
        let mut order: Vec<usize> = (0..chart.values.len()).collect();
        order.sort_by(|&i, &j| {
            chart.values[j]
                .partial_cmp(&chart.values[i])
                .expect("finite mass")
                .then(i.cmp(&j))
        });
        let keep: Vec<usize> = order.into_iter().take(b).collect();
        let mut values = vec![0.0; chart.values.len()];
        let mut kept_mass = 0.0;
        let mut smallest_kept = f64::INFINITY;
        for &i in &keep {
            values[i] = chart.values[i];
            kept_mass += chart.values[i];
            smallest_kept = smallest_kept.min(chart.values[i]);
        }
        let dropped = chart.values.len() - keep.len();
        let upper = (kept_mass + dropped as f64 * smallest_kept).min(total);
        let bound = QualityBound::degraded(kept_mass, upper, keep.len());
        Ok(Anytime {
            value: RadarChart { values, ..chart },
            bound,
        })
    }

    /// Keywords topically related to `word` — the UI's "did you also mean"
    /// suggestions. Returns `(keyword string, relatedness score)` pairs.
    pub fn related_keywords(&self, word: &str, k: usize) -> Result<Vec<(String, f64)>> {
        let w = self.model.vocab().require(word)?;
        let related = octopus_topics::related::related_keywords(&self.model, w, k)?;
        related
            .into_iter()
            .map(|r| Ok((self.model.vocab().word(r.keyword)?.to_string(), r.score)))
            .collect()
    }
}

/// Graph/model agreement check shared by both construction paths.
fn check_shapes(graph: &TopicGraph, model: &TopicModel) -> Result<()> {
    if graph.num_topics() != model.num_topics() {
        return Err(CoreError::Topic(
            octopus_topics::TopicError::ShapeMismatch {
                what: "graph vs model topic count",
                expected: graph.num_topics(),
                got: model.num_topics(),
            },
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_graph::GraphBuilder;
    use octopus_topics::Vocabulary;

    /// Small two-topic network with named users and a themed vocabulary.
    fn build_engine(kim: KimEngineChoice) -> Octopus {
        let (g, model, config) = fixture(kim);
        Octopus::new(g, model, config).unwrap()
    }

    fn fixture(kim: KimEngineChoice) -> (TopicGraph, TopicModel, OctopusConfig) {
        let mut b = GraphBuilder::new(2);
        let han = b.add_node("jiawei han"); // db hub
        let jordan = b.add_node("michael jordan"); // ml hub
        for i in 0..5 {
            let v = b.add_node(format!("db-follower-{i}"));
            b.add_edge(han, v, &[(0, 0.7)]).unwrap();
        }
        for i in 0..4 {
            let v = b.add_node(format!("ml-follower-{i}"));
            b.add_edge(jordan, v, &[(1, 0.7)]).unwrap();
        }
        let g = b.build().unwrap();
        let mut vocab = Vocabulary::new();
        vocab.intern("data mining"); // w0 → t0
        vocab.intern("frequent patterns"); // w1 → t0
        vocab.intern("em algorithm"); // w2 → t1
        vocab.intern("graphical models"); // w3 → t1
        let model = TopicModel::from_rows(
            vocab,
            vec![vec![0.5, 0.4, 0.05, 0.05], vec![0.05, 0.05, 0.5, 0.4]],
            vec![0.5, 0.5],
        )
        .unwrap()
        .with_labels(vec!["databases".into(), "machine learning".into()])
        .unwrap();
        let config = OctopusConfig {
            kim,
            piks_index_size: 1500,
            mis_rr_per_topic: 2000,
            k_max: 5,
            ..Default::default()
        };
        (g, model, config)
    }

    #[test]
    fn scenario1_keyword_discovery_all_engines() {
        for kim in [
            KimEngineChoice::Naive,
            KimEngineChoice::Mis,
            KimEngineChoice::BestEffort(BoundKind::Precomputation),
            KimEngineChoice::BestEffort(BoundKind::Neighborhood),
            KimEngineChoice::BestEffort(BoundKind::LocalGraph),
            KimEngineChoice::TopicSample {
                bound: BoundKind::Precomputation,
                extra_samples: 8,
                direct_eps: 0.05,
            },
        ] {
            let octo = build_engine(kim);
            let ans = octo.find_influencers("data mining", 1).unwrap();
            assert_eq!(ans.seeds[0].name, "jiawei han", "engine {kim:?}");
            let ans = octo.find_influencers("em algorithm", 1).unwrap();
            assert_eq!(ans.seeds[0].name, "michael jordan", "engine {kim:?}");
        }
    }

    #[test]
    fn unknown_keywords_error_with_detail() {
        let octo = build_engine(KimEngineChoice::Mis);
        let err = octo.find_influencers("quantum blockchain", 3).unwrap_err();
        match err {
            CoreError::NoKnownKeywords { unknown } => {
                assert_eq!(
                    unknown,
                    vec!["quantum".to_string(), "blockchain".to_string()]
                );
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn scenario2_keyword_suggestion() {
        let octo = build_engine(KimEngineChoice::Mis);
        let ans = octo.suggest_keywords("jiawei han", 2).unwrap();
        assert!(
            ans.words
                .iter()
                .any(|w| w == "data mining" || w == "frequent patterns"),
            "db hub's selling points must be db keywords: {:?}",
            ans.words
        );
        assert_eq!(ans.result.gamma.dominant_topic(), 0);
        assert_eq!(ans.radar.axes, vec!["databases", "machine learning"]);
        assert!(ans.result.spread > 1.0);
    }

    #[test]
    fn scenario3_path_exploration() {
        let octo = build_engine(KimEngineChoice::Mis);
        let ex = octo
            .explore_paths(
                "jiawei han",
                ExploreDirection::Influences,
                Some("data mining"),
            )
            .unwrap();
        assert_eq!(ex.root_name, "jiawei han");
        assert_eq!(ex.reached, 6, "hub + 5 followers");
        assert!(ex.d3_json.contains("db-follower-0"));
        // reverse direction from a follower finds the hub
        let ex = octo
            .explore_paths(
                "db-follower-1",
                ExploreDirection::InfluencedBy,
                Some("data mining"),
            )
            .unwrap();
        assert!(ex
            .tree
            .contains(octo.graph().node_by_name("jiawei han").unwrap()));
    }

    #[test]
    fn autocomplete_ranks_by_degree() {
        let octo = build_engine(KimEngineChoice::Mis);
        let hits = octo.autocomplete("mi", 5);
        assert_eq!(hits[0].1, "michael jordan");
        let hits = octo.autocomplete("db-", 3);
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn keyword_radar_exposes_topics() {
        let octo = build_engine(KimEngineChoice::Mis);
        let radar = octo.keyword_radar("em algorithm").unwrap();
        let ranked = radar.ranked_axes();
        assert_eq!(ranked[0].0, "machine learning");
        assert!(octo.keyword_radar("nonexistent").is_err());
    }

    #[test]
    fn user_keyword_override_is_used() {
        let mut map = HashMap::new();
        map.insert(NodeId(0), vec![KeywordId(1)]); // only "frequent patterns"
        let octo = build_engine(KimEngineChoice::Mis).with_user_keywords(map);
        let ans = octo.suggest_keywords("jiawei han", 1).unwrap();
        assert_eq!(ans.words, vec!["frequent patterns"]);
    }

    #[test]
    fn unknown_user_errors() {
        let octo = build_engine(KimEngineChoice::Mis);
        assert!(matches!(
            octo.suggest_keywords("nobody", 2),
            Err(CoreError::UnknownUser(_))
        ));
        assert!(octo
            .explore_paths("nobody", ExploreDirection::Influences, None)
            .is_err());
    }

    #[test]
    fn topic_count_mismatch_rejected() {
        let mut b = GraphBuilder::new(3);
        let _ = b.add_nodes(2);
        let g = b.build().unwrap();
        let mut vocab = Vocabulary::new();
        vocab.intern("x");
        let model = TopicModel::from_rows(vocab, vec![vec![1.0]], vec![1.0]).unwrap();
        assert!(Octopus::new(g, model, OctopusConfig::default()).is_err());
    }

    #[test]
    fn system_report_reflects_configuration() {
        let octo = build_engine(KimEngineChoice::BestEffort(BoundKind::Precomputation));
        let r = octo.system_report();
        assert_eq!(r.users, 11);
        assert_eq!(r.topics, 2);
        assert_eq!(r.keywords, 4);
        assert!(r.pb_tables, "PB engine must build its tables");
        assert_eq!(r.topic_samples, 0);
        assert!(r.piks_worlds > 0);
        assert!(r.spread_cap >= 1.0);
        assert!(!r.cache_hit, "Octopus::new never reads the artifact cache");
        let stages: Vec<&str> = r.stage_timings.iter().map(|t| t.stage).collect();
        assert_eq!(stages, crate::offline::STAGE_ORDER.to_vec());
        assert!(r.offline_build_total > Duration::ZERO);
        let _ = octo.find_influencers("data mining", 2).unwrap();
        assert!(octo.system_report().cached_queries > 0);
    }

    #[test]
    fn influence_curve_is_monotone_and_consistent() {
        let octo = build_engine(KimEngineChoice::BestEffort(BoundKind::Neighborhood));
        let gamma = octo.model().infer_str("data mining").unwrap();
        let curve = octo.influence_curve(&gamma, 4).unwrap();
        assert_eq!(curve.len(), 4);
        for w in curve.windows(2) {
            assert!(
                w[1].1 >= w[0].1 - 1e-9,
                "curve must be non-decreasing: {curve:?}"
            );
        }
        // the full-k point matches the engine's own answer
        let full = octo.find_influencers_gamma(&gamma, 4).unwrap();
        assert!((curve[3].1 - full.spread).abs() < 1e-9);
        assert!(octo.influence_curve(&gamma, 0).is_err());
    }

    #[test]
    fn related_keywords_stay_topical() {
        let octo = build_engine(KimEngineChoice::Mis);
        let rel = octo.related_keywords("data mining", 2).unwrap();
        assert_eq!(
            rel[0].0, "frequent patterns",
            "db keyword relates to db keyword"
        );
        assert!(octo.related_keywords("nonexistent", 2).is_err());
    }

    #[test]
    fn repeated_queries_hit_the_cache() {
        let octo = build_engine(KimEngineChoice::BestEffort(BoundKind::Neighborhood));
        let a = octo.find_influencers("data mining", 2).unwrap();
        assert!(!a.result.stats.answered_from_cache);
        let b = octo.find_influencers("data mining", 2).unwrap();
        assert!(
            b.result.stats.answered_from_cache,
            "identical repeat must hit"
        );
        assert_eq!(
            a.seeds.iter().map(|s| s.node).collect::<Vec<_>>(),
            b.seeds.iter().map(|s| s.node).collect::<Vec<_>>()
        );
        // different k is a different cache key
        let c = octo.find_influencers("data mining", 3).unwrap();
        assert!(!c.result.stats.answered_from_cache);
        let stats = octo.cache_stats();
        assert_eq!(stats.hits, 1);
        assert!(stats.misses >= 2);
    }

    #[test]
    fn open_or_build_misses_then_hits() {
        let (g, model, config) = fixture(KimEngineChoice::Mis);
        let dir = std::env::temp_dir().join(format!(
            "octopus_engine_cache_{:016x}",
            persist::Fingerprint::compute(&g, &config).config
        ));
        std::fs::remove_dir_all(&dir).ok();

        let first = Octopus::open_or_build(g.clone(), model.clone(), config.clone(), &dir).unwrap();
        assert!(!first.cache_hit(), "empty cache dir must miss");
        let stages: Vec<&str> = first
            .system_report()
            .stage_timings
            .iter()
            .map(|t| t.stage)
            .collect();
        assert!(
            stages.starts_with(&crate::offline::STAGE_ORDER),
            "miss runs the full pipeline: {stages:?}"
        );
        assert_eq!(
            stages.last().copied(),
            Some(persist::STAGE_ARTIFACT_STORE),
            "fresh build must be written back"
        );

        let second = Octopus::open_or_build(g, model, config, &dir).unwrap();
        let report = second.system_report();
        assert!(report.cache_hit, "identical inputs must hit");
        let stages: Vec<&str> = report.stage_timings.iter().map(|t| t.stage).collect();
        assert_eq!(
            stages,
            vec![
                persist::STAGE_ARTIFACT_MAP,
                persist::STAGE_ARTIFACT_VALIDATE,
                persist::STAGE_ARTIFACT_DECODE,
            ],
            "a hit runs zero offline stages, only the artifact load phases"
        );
        // both engines answer identically
        let a = first.find_influencers("data mining", 3).unwrap();
        let b = second.find_influencers("data mining", 3).unwrap();
        assert_eq!(
            a.seeds.iter().map(|s| s.node).collect::<Vec<_>>(),
            b.seeds.iter().map(|s| s.node).collect::<Vec<_>>()
        );
        assert_eq!(a.result.spread, b.result.spread);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_mapped_cold_builds_then_maps_and_warm_hits() {
        let (g, model, config) = fixture(KimEngineChoice::Mis);
        let dir = std::env::temp_dir().join("octopus_engine_mapped_mode");
        std::fs::remove_dir_all(&dir).ok();

        let cold = Octopus::open_mapped(g.clone(), model.clone(), config.clone(), &dir).unwrap();
        assert!(cold.is_mapped(), "cold open must end mapped (build+remap)");
        assert!(!cold.cache_hit(), "nothing was cached yet");
        assert_eq!(cold.mode(), "mapped");
        let stages: Vec<&str> = cold.stage_timings().iter().map(|t| t.stage).collect();
        assert!(
            stages.starts_with(&crate::offline::STAGE_ORDER),
            "cold mapped open runs the build first: {stages:?}"
        );
        assert_eq!(
            stages.last().copied(),
            Some(persist::STAGE_ARTIFACT_DECODE),
            "…then maps the written file: {stages:?}"
        );

        let warm = Octopus::open_mapped(g.clone(), model.clone(), config.clone(), &dir).unwrap();
        assert!(warm.is_mapped() && warm.cache_hit());
        let stages: Vec<&str> = warm.stage_timings().iter().map(|t| t.stage).collect();
        assert_eq!(
            stages,
            vec![
                persist::STAGE_ARTIFACT_MAP,
                persist::STAGE_ARTIFACT_VALIDATE,
                persist::STAGE_ARTIFACT_DECODE,
            ],
            "warm mapped open runs zero build stages"
        );
        assert!(warm.system_report().stage_reuse.iter().all(|s| s.is_full()));

        // mapped answers are bit-identical to the owned engine's
        let owned = Octopus::open_or_build(g, model, config, &dir).unwrap();
        assert!(!owned.is_mapped());
        let a = owned.find_influencers("data mining", 3).unwrap();
        let b = warm.find_influencers("data mining", 3).unwrap();
        assert_eq!(
            a.seeds.iter().map(|s| s.node).collect::<Vec<_>>(),
            b.seeds.iter().map(|s| s.node).collect::<Vec<_>>()
        );
        assert_eq!(a.result.spread.to_bits(), b.result.spread.to_bits());
        let sa = owned.suggest_keywords("jiawei han", 2).unwrap();
        let sb = warm.suggest_keywords("jiawei han", 2).unwrap();
        assert_eq!(sa.words, sb.words);
        assert_eq!(sa.result.spread.to_bits(), sb.result.spread.to_bits());
        assert_eq!(owned.autocomplete("db-", 3), warm.autocomplete("db-", 3));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_or_build_key_separates_configs() {
        let (g, model, config) = fixture(KimEngineChoice::Mis);
        let dir = std::env::temp_dir().join("octopus_engine_cache_separation");
        std::fs::remove_dir_all(&dir).ok();
        let _ = Octopus::open_or_build(g.clone(), model.clone(), config.clone(), &dir).unwrap();
        // different seed → different key → miss, not a false hit
        let reseeded = OctopusConfig {
            seed: config.seed ^ 0xBEEF,
            ..config
        };
        let other = Octopus::open_or_build(g, model, reseeded, &dir).unwrap();
        assert!(!other.cache_hit(), "a reseeded config must not hit");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn diversity_of_mixed_query() {
        // "data mining em algorithm" spans both topics: the two hubs beat
        // any hub+follower combination (the Scenario 1 diversity claim)
        let octo = build_engine(KimEngineChoice::BestEffort(BoundKind::Neighborhood));
        let ans = octo
            .find_influencers("data mining em algorithm", 2)
            .unwrap();
        let mut names: Vec<&str> = ans.seeds.iter().map(|s| s.name.as_str()).collect();
        names.sort();
        assert_eq!(names, vec!["jiawei han", "michael jordan"]);
    }
}
