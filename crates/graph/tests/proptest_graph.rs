//! Property-based tests for the graph substrate: CSR invariants, codec
//! round-trips, and probability-evaluation laws that every upper layer
//! relies on.

use octopus_graph::{codec, GraphBuilder, NodeId, TopicGraph};
use proptest::prelude::*;

const MAX_NODES: usize = 24;
const MAX_TOPICS: usize = 6;

/// `(source, target, sparse (topic, prob) pairs)` — one generated edge.
type EdgeSpec = (u32, u32, Vec<(usize, f64)>);

/// Strategy: an arbitrary small topic graph as (n, Z, edge list).
fn arb_graph_parts() -> impl Strategy<Value = (usize, usize, Vec<EdgeSpec>)> {
    (2..MAX_NODES, 1..MAX_TOPICS).prop_flat_map(|(n, z)| {
        let edge = (
            0..n as u32,
            0..n as u32,
            proptest::collection::vec((0..z, 0.0f64..=1.0f64), 1..4),
        );
        (Just(n), Just(z), proptest::collection::vec(edge, 0..n * 3))
    })
}

fn build(n: usize, z: usize, edges: &[EdgeSpec]) -> TopicGraph {
    let mut b = GraphBuilder::new(z);
    let _ = b.add_nodes(n);
    for (u, v, probs) in edges {
        if u != v {
            b.add_edge(NodeId(*u), NodeId(*v), probs).unwrap();
        }
    }
    b.build().unwrap()
}

fn arb_gamma(z: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..=1.0f64, z).prop_map(|mut v| {
        let s: f64 = v.iter().sum();
        if s == 0.0 {
            v[0] = 1.0;
        } else {
            for x in v.iter_mut() {
                *x /= s;
            }
        }
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every edge visible in forward adjacency is visible in reverse
    /// adjacency with the same edge id, and vice versa.
    #[test]
    fn forward_reverse_consistency((n, z, edges) in arb_graph_parts()) {
        let g = build(n, z, &edges);
        let mut fwd: Vec<(u32, u32, u32)> = Vec::new();
        for u in g.nodes() {
            for (v, e) in g.out_edges(u) {
                fwd.push((u.0, v.0, e.0));
            }
        }
        let mut rev: Vec<(u32, u32, u32)> = Vec::new();
        for v in g.nodes() {
            for (u, e) in g.in_edges(v) {
                rev.push((u.0, v.0, e.0));
            }
        }
        fwd.sort_unstable();
        rev.sort_unstable();
        prop_assert_eq!(fwd, rev);
    }

    /// Degrees sum to the edge count on both sides.
    #[test]
    fn degree_sums((n, z, edges) in arb_graph_parts()) {
        let g = build(n, z, &edges);
        let out_sum: usize = g.nodes().map(|u| g.out_degree(u)).sum();
        let in_sum: usize = g.nodes().map(|u| g.in_degree(u)).sum();
        prop_assert_eq!(out_sum, g.edge_count());
        prop_assert_eq!(in_sum, g.edge_count());
    }

    /// `edge_endpoints` inverts `find_edge` for every edge.
    #[test]
    fn endpoints_invert_find((n, z, edges) in arb_graph_parts()) {
        let g = build(n, z, &edges);
        for e in g.edges() {
            let (u, v) = g.edge_endpoints(e).unwrap();
            prop_assert_eq!(g.find_edge(u, v), Some(e));
        }
    }

    /// `pp_e(γ)` is a convex combination: bounded by `[0, max_z pp^z_e]`,
    /// and exactly `pp^z_e` at simplex corners.
    #[test]
    fn edge_prob_convexity(
        (n, z, edges) in arb_graph_parts(),
        seed in 0u64..1000,
    ) {
        let g = build(n, z, &edges);
        // Deterministic pseudo-gamma from the seed to avoid a dependent
        // strategy on z.
        let mut gamma = vec![0.0f64; g.num_topics()];
        let mut s = 0.0;
        for (i, gz) in gamma.iter_mut().enumerate() {
            let val = ((seed + 1) * (i as u64 + 3) % 17) as f64;
            *gz = val;
            s += val;
        }
        if s == 0.0 { gamma[0] = 1.0; s = 1.0; }
        for gz in gamma.iter_mut() { *gz /= s; }

        for e in g.edges() {
            let p = g.edge_prob(e, &gamma);
            prop_assert!(p >= -1e-12);
            prop_assert!(p <= g.edge_prob_max(e) as f64 + 1e-6);
            for zz in 0..g.num_topics() {
                let mut corner = vec![0.0; g.num_topics()];
                corner[zz] = 1.0;
                let pc = g.edge_prob(e, &corner);
                let direct = g.edge_prob_topic(e, octopus_graph::TopicId(zz as u16)) as f64;
                prop_assert!((pc - direct).abs() < 1e-6);
            }
        }
    }

    /// Linearity: `pp_e(aγ₁ + (1-a)γ₂) = a·pp_e(γ₁) + (1-a)·pp_e(γ₂)`
    /// (before clamping, which convexity keeps inactive here).
    #[test]
    fn edge_prob_linearity(
        (n, z, edges) in arb_graph_parts(),
        mix in 0.0f64..=1.0f64,
    ) {
        let g = build(n, z, &edges);
        let zt = g.num_topics();
        let g1: Vec<f64> = (0..zt).map(|i| if i == 0 { 1.0 } else { 0.0 }).collect();
        let g2: Vec<f64> = vec![1.0 / zt as f64; zt];
        let blended: Vec<f64> = g1.iter().zip(&g2).map(|(a, b)| mix * a + (1.0 - mix) * b).collect();
        for e in g.edges() {
            let lhs = g.edge_prob(e, &blended);
            let rhs = mix * g.edge_prob(e, &g1) + (1.0 - mix) * g.edge_prob(e, &g2);
            prop_assert!((lhs - rhs).abs() < 1e-9, "lhs={lhs} rhs={rhs}");
        }
    }

    /// Codec round-trip is the identity.
    #[test]
    fn codec_round_trip((n, z, edges) in arb_graph_parts()) {
        let g = build(n, z, &edges);
        let g2 = codec::decode(codec::encode(&g)).unwrap();
        prop_assert_eq!(g, g2);
    }

    /// Materialized dense probabilities agree with sparse evaluation.
    #[test]
    fn materialize_agrees(
        (n, z, edges) in arb_graph_parts(),
    ) {
        let g = build(n, z, &edges);
        let zt = g.num_topics();
        let gamma = vec![1.0 / zt as f64; zt];
        let dense = g.materialize(&gamma).unwrap();
        for e in g.edges() {
            prop_assert!((dense.get(e) as f64 - g.edge_prob(e, &gamma)).abs() < 1e-6);
        }
    }

    /// Truncated codec payloads error (never panic).
    #[test]
    fn codec_truncation_safe((n, z, edges) in arb_graph_parts(), frac in 0.0f64..1.0) {
        let g = build(n, z, &edges);
        let bytes = codec::encode(&g);
        let cut = ((bytes.len() as f64) * frac) as usize;
        if cut < bytes.len() {
            prop_assert!(codec::decode(&bytes[..cut]).is_err());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Gamma validation catches every wrong dimension.
    #[test]
    fn gamma_validation(z in 1usize..6, wrong in 0usize..10) {
        prop_assume!(wrong != z);
        let mut b = GraphBuilder::new(z);
        let u = b.add_node("u");
        let v = b.add_node("v");
        b.add_edge(u, v, &[(0, 0.5)]).unwrap();
        let g = b.build().unwrap();
        let gamma = vec![0.0; wrong];
        prop_assert!(g.materialize(&gamma).is_err());
    }

    /// `arb_gamma` helper really produces simplex points (self-test of the
    /// strategy used elsewhere).
    #[test]
    fn gamma_strategy_is_simplex(gamma in arb_gamma(4)) {
        let s: f64 = gamma.iter().sum();
        prop_assert!((s - 1.0).abs() < 1e-9);
        prop_assert!(gamma.iter().all(|&x| x >= 0.0));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Tarjan SCC agrees with brute-force mutual reachability: two nodes
    /// share a component iff each reaches the other.
    #[test]
    fn scc_matches_mutual_reachability((n, z, edges) in arb_graph_parts()) {
        use octopus_graph::algo::{reachable, strongly_connected_components, Direction};
        let g = build(n, z, &edges);
        let (comp, count) = strongly_connected_components(&g);
        prop_assert!(count >= 1 || g.node_count() == 0);
        // brute-force forward reachability sets
        let reach: Vec<Vec<bool>> = g
            .nodes()
            .map(|u| {
                let mut r = vec![false; g.node_count()];
                for v in reachable(&g, u, Direction::Forward) {
                    r[v.index()] = true;
                }
                r
            })
            .collect();
        for u in 0..g.node_count() {
            for v in 0..g.node_count() {
                let mutually = reach[u][v] && reach[v][u];
                prop_assert_eq!(
                    comp[u] == comp[v],
                    mutually,
                    "nodes {} and {}: comp {:?}/{:?}, mutual {}",
                    u, v, comp[u], comp[v], mutually
                );
            }
        }
    }

    /// Component ids are dense: every id in 0..count is used.
    #[test]
    fn scc_ids_are_dense((n, z, edges) in arb_graph_parts()) {
        use octopus_graph::algo::strongly_connected_components;
        let g = build(n, z, &edges);
        let (comp, count) = strongly_connected_components(&g);
        let mut seen = vec![false; count];
        for &c in &comp {
            prop_assert!((c as usize) < count);
            seen[c as usize] = true;
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }
}
