//! Property tests for induced-subgraph extraction.

use octopus_graph::subgraph::induced;
use octopus_graph::{GraphBuilder, NodeId, TopicGraph};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = TopicGraph> {
    (3usize..16).prop_flat_map(|n| {
        proptest::collection::vec(
            (0..n as u32, 0..n as u32, 0usize..3, 0.05f64..0.95),
            1..n * 2,
        )
        .prop_map(move |edges| {
            let mut b = GraphBuilder::new(3);
            for i in 0..n {
                b.add_node(format!("node-{i}"));
            }
            for (u, v, z, p) in edges {
                if u != v {
                    b.add_edge(NodeId(u), NodeId(v), &[(z, p)]).unwrap();
                }
            }
            b.build().unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Induced subgraph contains exactly the internal edges, with identical
    /// sparse probability vectors, and the id mapping is a bijection.
    #[test]
    fn induced_subgraph_faithful(g in arb_graph(), picks in proptest::collection::vec(0u32..16, 1..8)) {
        let members: Vec<NodeId> =
            picks.iter().map(|&i| NodeId(i % g.node_count() as u32)).collect();
        let sub = induced(&g, &members).unwrap();
        // bijection over distinct members
        let mut distinct = members.clone();
        distinct.sort();
        distinct.dedup();
        prop_assert_eq!(sub.graph.node_count(), distinct.len());
        for &m in &distinct {
            let s = sub.project(m).unwrap();
            prop_assert_eq!(sub.lift(s), m);
            prop_assert_eq!(sub.graph.name(s), g.name(m));
        }
        // edge count = internal edges of the original
        let internal = g
            .edges()
            .filter(|&e| {
                let (u, v) = g.edge_endpoints(e).unwrap();
                distinct.contains(&u) && distinct.contains(&v)
            })
            .count();
        prop_assert_eq!(sub.graph.edge_count(), internal);
        // probabilities preserved exactly
        for e in sub.graph.edges() {
            let (su, sv) = sub.graph.edge_endpoints(e).unwrap();
            let orig = g.find_edge(sub.lift(su), sub.lift(sv)).unwrap();
            let a: Vec<_> = sub.graph.edge_topic_probs(e).collect();
            let b: Vec<_> = g.edge_topic_probs(orig).collect();
            prop_assert_eq!(a, b);
        }
    }

    /// Inducing on ALL nodes reproduces an isomorphic graph (identity
    /// mapping when members are in id order).
    #[test]
    fn induced_on_everything_is_identity(g in arb_graph()) {
        let all: Vec<NodeId> = g.nodes().collect();
        let sub = induced(&g, &all).unwrap();
        prop_assert_eq!(&sub.graph, &g);
    }
}
