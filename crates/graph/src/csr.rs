//! Compressed sparse-row topic graph: the core substrate type.

use crate::error::GraphError;
use crate::ids::{EdgeId, NodeId, TopicId};
use crate::Result;
use std::collections::HashMap;

/// A directed social graph with per-edge, per-topic activation probabilities
/// (the topic-aware IC model of OCTOPUS §II-B).
///
/// Representation: forward and reverse CSR adjacency plus a third CSR-like
/// arena holding each edge's *sparse* topic-probability vector. Edge `e`'s
/// probabilities live in
/// `prob_topics[prob_offsets[e] .. prob_offsets[e+1]]` (sorted by topic) and
/// `prob_values[..]` in parallel. Sparse storage matters: in real
/// topic-aware networks the probability mass of an edge concentrates on a
/// handful of topics (observed by Chen et al., PVLDB'15), so dense `Z`-vectors
/// would waste an order of magnitude of memory.
///
/// [`EdgeId`]s are assigned in forward-CSR order (sorted by source, then
/// target), so any `Vec` indexed by `EdgeId` is a valid per-edge side table.
#[derive(Debug, Clone, PartialEq)]
pub struct TopicGraph {
    pub(crate) num_topics: usize,
    /// Node display names; empty vector when the graph is anonymous.
    pub(crate) names: Vec<String>,
    /// Name → node lookup (present only when names are).
    pub(crate) name_index: HashMap<String, NodeId>,

    // Forward CSR: out-edges of u are fwd_targets[fwd_offsets[u]..fwd_offsets[u+1]].
    pub(crate) fwd_offsets: Vec<u32>,
    pub(crate) fwd_targets: Vec<u32>,

    // Reverse CSR: in-edges of v are rev_sources[rev_offsets[v]..rev_offsets[v+1]],
    // with rev_edge_ids mapping each slot back to the forward EdgeId.
    pub(crate) rev_offsets: Vec<u32>,
    pub(crate) rev_sources: Vec<u32>,
    pub(crate) rev_edge_ids: Vec<u32>,

    // Sparse per-edge topic probabilities.
    pub(crate) prob_offsets: Vec<u32>,
    pub(crate) prob_topics: Vec<u16>,
    pub(crate) prob_values: Vec<f32>,
}

impl TopicGraph {
    /// Number of nodes.
    #[inline(always)]
    pub fn node_count(&self) -> usize {
        self.fwd_offsets.len() - 1
    }

    /// Number of directed edges.
    #[inline(always)]
    pub fn edge_count(&self) -> usize {
        self.fwd_targets.len()
    }

    /// Number of topics `Z` the model was built with.
    #[inline(always)]
    pub fn num_topics(&self) -> usize {
        self.num_topics
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Iterator over all edge ids.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edge_count() as u32).map(EdgeId)
    }

    /// Validate a node id.
    #[inline]
    pub fn check_node(&self, u: NodeId) -> Result<()> {
        if u.index() < self.node_count() {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfBounds {
                node: u.0,
                len: self.node_count(),
            })
        }
    }

    /// Validate an edge id.
    #[inline]
    pub fn check_edge(&self, e: EdgeId) -> Result<()> {
        if e.index() < self.edge_count() {
            Ok(())
        } else {
            Err(GraphError::EdgeOutOfBounds {
                edge: e.0,
                len: self.edge_count(),
            })
        }
    }

    /// Validate a `γ` slice against `Z`.
    #[inline]
    pub fn check_gamma(&self, gamma: &[f64]) -> Result<()> {
        if gamma.len() == self.num_topics {
            Ok(())
        } else {
            Err(GraphError::DimensionMismatch {
                expected: self.num_topics,
                got: gamma.len(),
            })
        }
    }

    /// Display name of `u`, if the graph carries names.
    pub fn name(&self, u: NodeId) -> Option<&str> {
        self.names
            .get(u.index())
            .map(String::as_str)
            .filter(|s| !s.is_empty())
    }

    /// Look a node up by its exact display name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.name_index.get(name).copied()
    }

    /// All node names (aligned with node ids); empty if anonymous.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        let i = u.index();
        (self.fwd_offsets[i + 1] - self.fwd_offsets[i]) as usize
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        let i = v.index();
        (self.rev_offsets[i + 1] - self.rev_offsets[i]) as usize
    }

    /// Out-neighbors of `u` with the connecting edge id.
    ///
    /// Edge ids of out-edges are contiguous: `fwd_offsets[u] .. fwd_offsets[u+1]`.
    #[inline]
    pub fn out_edges(&self, u: NodeId) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        let i = u.index();
        let lo = self.fwd_offsets[i] as usize;
        let hi = self.fwd_offsets[i + 1] as usize;
        self.fwd_targets[lo..hi]
            .iter()
            .zip(lo as u32..hi as u32)
            .map(|(&t, e)| (NodeId(t), EdgeId(e)))
    }

    /// In-neighbors of `v` with the connecting edge id.
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        let i = v.index();
        let lo = self.rev_offsets[i] as usize;
        let hi = self.rev_offsets[i + 1] as usize;
        self.rev_sources[lo..hi]
            .iter()
            .zip(self.rev_edge_ids[lo..hi].iter())
            .map(|(&s, &e)| (NodeId(s), EdgeId(e)))
    }

    /// Source and target of edge `e`.
    pub fn edge_endpoints(&self, e: EdgeId) -> Result<(NodeId, NodeId)> {
        self.check_edge(e)?;
        let v = NodeId(self.fwd_targets[e.index()]);
        // Binary search the source in fwd_offsets: the source u is the node
        // whose slot range contains e.
        let u = match self.fwd_offsets.binary_search(&e.0) {
            // offsets may contain repeated values for empty nodes; take the
            // *last* node whose offset equals e.0
            Ok(mut i) => {
                while i + 1 < self.fwd_offsets.len() && self.fwd_offsets[i + 1] == e.0 {
                    i += 1;
                }
                NodeId(i as u32)
            }
            Err(i) => NodeId((i - 1) as u32),
        };
        Ok((u, v))
    }

    /// Find the edge id from `u` to `v`, if present.
    pub fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        self.check_node(u).ok()?;
        self.check_node(v).ok()?;
        let i = u.index();
        let lo = self.fwd_offsets[i] as usize;
        let hi = self.fwd_offsets[i + 1] as usize;
        // targets within a source are sorted by the builder.
        let slice = &self.fwd_targets[lo..hi];
        slice
            .binary_search(&v.0)
            .ok()
            .map(|off| EdgeId((lo + off) as u32))
    }

    /// Sparse topic probabilities of edge `e`: `(topic, pp^z)` pairs sorted
    /// by topic.
    #[inline]
    pub fn edge_topic_probs(&self, e: EdgeId) -> impl Iterator<Item = (TopicId, f32)> + '_ {
        let lo = self.prob_offsets[e.index()] as usize;
        let hi = self.prob_offsets[e.index() + 1] as usize;
        self.prob_topics[lo..hi]
            .iter()
            .zip(self.prob_values[lo..hi].iter())
            .map(|(&z, &p)| (TopicId(z), p))
    }

    /// Effective activation probability `pp_e(γ) = Σ_z pp^z_e γ_z`.
    ///
    /// `gamma` must have length [`Self::num_topics`]; this is *not* checked
    /// here (hot path) — use [`Self::check_gamma`] at query entry.
    #[inline]
    pub fn edge_prob(&self, e: EdgeId, gamma: &[f64]) -> f64 {
        debug_assert_eq!(gamma.len(), self.num_topics);
        let lo = self.prob_offsets[e.index()] as usize;
        let hi = self.prob_offsets[e.index() + 1] as usize;
        let mut acc = 0.0f64;
        for (z, p) in self.prob_topics[lo..hi]
            .iter()
            .zip(self.prob_values[lo..hi].iter())
        {
            acc += (*p as f64) * gamma[*z as usize];
        }
        // Guard against fp drift beyond 1.0 (convex combination can't exceed
        // the max entry, but accumulated f32→f64 noise can nudge past it).
        acc.min(1.0)
    }

    /// Effective activation probability of the edge `(u, v)` under `γ`.
    pub fn edge_prob_uv(&self, u: NodeId, v: NodeId, gamma: &[f64]) -> Result<f64> {
        self.check_gamma(gamma)?;
        let e = self
            .find_edge(u, v)
            .ok_or(GraphError::NoSuchEdge { from: u.0, to: v.0 })?;
        Ok(self.edge_prob(e, gamma))
    }

    /// Probability of `e` under the *pure* topic `z` (a corner of the
    /// simplex) — `pp^z_e`, or `0` if the edge has no mass on `z`.
    #[inline]
    pub fn edge_prob_topic(&self, e: EdgeId, z: TopicId) -> f32 {
        let lo = self.prob_offsets[e.index()] as usize;
        let hi = self.prob_offsets[e.index() + 1] as usize;
        match self.prob_topics[lo..hi].binary_search(&z.0) {
            Ok(i) => self.prob_values[lo + i],
            Err(_) => 0.0,
        }
    }

    /// Maximum per-topic probability of `e`: a query-independent upper bound
    /// on `pp_e(γ)` for any distribution `γ` (used by bound estimators and
    /// MIA pruning).
    #[inline]
    pub fn edge_prob_max(&self, e: EdgeId) -> f32 {
        let lo = self.prob_offsets[e.index()] as usize;
        let hi = self.prob_offsets[e.index() + 1] as usize;
        self.prob_values[lo..hi].iter().copied().fold(0.0, f32::max)
    }

    /// Number of non-zero topic entries on edge `e`.
    #[inline]
    pub fn edge_nnz(&self, e: EdgeId) -> usize {
        (self.prob_offsets[e.index() + 1] - self.prob_offsets[e.index()]) as usize
    }

    /// Materialize dense per-edge probabilities for a fixed `γ`.
    ///
    /// This is exactly the per-query work the paper calls "a naive solution
    /// \[that\] computes `pp_{u,v}` for each edge given the query" (§II-C); the
    /// result feeds the classical IM algorithms in `octopus-cascade`.
    pub fn materialize(&self, gamma: &[f64]) -> Result<EdgeProbs> {
        self.check_gamma(gamma)?;
        let mut probs = Vec::with_capacity(self.edge_count());
        for e in 0..self.edge_count() as u32 {
            probs.push(self.edge_prob(EdgeId(e), gamma) as f32);
        }
        Ok(EdgeProbs { probs })
    }

    /// Total number of stored (edge, topic) probability entries.
    pub fn prob_entries(&self) -> usize {
        self.prob_topics.len()
    }
}

/// Dense per-edge activation probabilities for one fixed topic distribution.
///
/// Indexed by [`EdgeId`]; produced by [`TopicGraph::materialize`].
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeProbs {
    pub(crate) probs: Vec<f32>,
}

impl EdgeProbs {
    /// Probability of edge `e`.
    #[inline(always)]
    pub fn get(&self, e: EdgeId) -> f32 {
        self.probs[e.index()]
    }

    /// Number of edges covered.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Raw slice, indexed by edge id.
    pub fn as_slice(&self) -> &[f32] {
        &self.probs
    }

    /// Build directly from a per-edge probability vector (for tests and
    /// synthetic single-topic workloads).
    pub fn from_vec(probs: Vec<f32>) -> Self {
        EdgeProbs { probs }
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;
    use crate::ids::{NodeId, TopicId};

    /// Small fixture: 0→1, 0→2, 1→2, 2→0 over 3 topics.
    fn diamond() -> crate::TopicGraph {
        let mut b = GraphBuilder::new(3);
        for i in 0..3 {
            b.add_node(format!("u{i}"));
        }
        b.add_edge(NodeId(0), NodeId(1), &[(0, 0.5), (1, 0.2)])
            .unwrap();
        b.add_edge(NodeId(0), NodeId(2), &[(2, 0.9)]).unwrap();
        b.add_edge(NodeId(1), NodeId(2), &[(0, 0.3)]).unwrap();
        b.add_edge(NodeId(2), NodeId(0), &[(1, 0.1), (2, 0.4)])
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn counts() {
        let g = diamond();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.num_topics(), 3);
        assert_eq!(g.prob_entries(), 6);
    }

    #[test]
    fn adjacency_forward() {
        let g = diamond();
        let out: Vec<_> = g.out_edges(NodeId(0)).map(|(v, _)| v.0).collect();
        assert_eq!(out, vec![1, 2]);
        assert_eq!(g.out_degree(NodeId(0)), 2);
        assert_eq!(g.out_degree(NodeId(1)), 1);
    }

    #[test]
    fn adjacency_reverse_matches_forward() {
        let g = diamond();
        for e in g.edges() {
            let (u, v) = g.edge_endpoints(e).unwrap();
            assert!(g.in_edges(v).any(|(s, ie)| s == u && ie == e));
        }
        assert_eq!(g.in_degree(NodeId(2)), 2);
    }

    #[test]
    fn find_edge_and_endpoints() {
        let g = diamond();
        let e = g.find_edge(NodeId(1), NodeId(2)).unwrap();
        assert_eq!(g.edge_endpoints(e).unwrap(), (NodeId(1), NodeId(2)));
        assert!(g.find_edge(NodeId(1), NodeId(0)).is_none());
    }

    #[test]
    fn edge_prob_mixes_topics() {
        let g = diamond();
        let e = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        let p = g.edge_prob(e, &[0.0, 1.0, 0.0]);
        assert!((p - 0.2).abs() < 1e-6);
        let p = g.edge_prob(e, &[0.5, 0.5, 0.0]);
        assert!((p - 0.35).abs() < 1e-6);
        // topic with no mass on this edge
        let p = g.edge_prob(e, &[0.0, 0.0, 1.0]);
        assert!(p.abs() < 1e-6);
    }

    #[test]
    fn pure_topic_and_max_prob() {
        let g = diamond();
        let e = g.find_edge(NodeId(2), NodeId(0)).unwrap();
        assert_eq!(g.edge_prob_topic(e, TopicId(1)), 0.1);
        assert_eq!(g.edge_prob_topic(e, TopicId(0)), 0.0);
        assert_eq!(g.edge_prob_max(e), 0.4);
        assert_eq!(g.edge_nnz(e), 2);
    }

    #[test]
    fn materialize_matches_edge_prob() {
        let g = diamond();
        let gamma = [0.2, 0.3, 0.5];
        let dense = g.materialize(&gamma).unwrap();
        assert_eq!(dense.len(), g.edge_count());
        for e in g.edges() {
            assert!((dense.get(e) as f64 - g.edge_prob(e, &gamma)).abs() < 1e-6);
        }
    }

    #[test]
    fn names_round_trip() {
        let g = diamond();
        assert_eq!(g.name(NodeId(1)), Some("u1"));
        assert_eq!(g.node_by_name("u2"), Some(NodeId(2)));
        assert_eq!(g.node_by_name("nobody"), None);
    }

    #[test]
    fn gamma_dimension_checked_at_entry() {
        let g = diamond();
        assert!(g.materialize(&[1.0]).is_err());
        assert!(g.edge_prob_uv(NodeId(0), NodeId(1), &[1.0, 0.0]).is_err());
    }

    #[test]
    fn out_edge_ids_are_contiguous() {
        let g = diamond();
        let ids: Vec<_> = g.out_edges(NodeId(0)).map(|(_, e)| e.0).collect();
        assert_eq!(ids, vec![0, 1]);
        let ids: Vec<_> = g.out_edges(NodeId(2)).map(|(_, e)| e.0).collect();
        assert_eq!(ids, vec![3]);
    }

    #[test]
    fn edge_prob_clamped_to_one() {
        let mut b = GraphBuilder::new(2);
        let u = b.add_node("a");
        let v = b.add_node("b");
        b.add_edge(u, v, &[(0, 1.0), (1, 1.0)]).unwrap();
        let g = b.build().unwrap();
        let e = g.find_edge(u, v).unwrap();
        assert!(g.edge_prob(e, &[0.6, 0.4]) <= 1.0);
    }
}
