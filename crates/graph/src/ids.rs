//! Strongly-typed identifiers for nodes, edges and topics.
//!
//! Using newtypes (rather than bare `usize`) prevents the classic
//! index-confusion bugs in graph code: a `NodeId` cannot be used where an
//! `EdgeId` is expected. Identifiers are 32-bit (16-bit for topics) to keep
//! hot structures compact, per the type-size guidance of the Rust
//! performance guide.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node (user) in a [`crate::TopicGraph`].
///
/// Stable across the graph's lifetime: it is the dense index assigned by the
/// [`crate::GraphBuilder`] in insertion order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifier of a directed edge. Equal to the edge's position in the
/// forward CSR arrays, so it can index per-edge side tables directly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

/// Identifier of a topic `z ∈ {0 … Z-1}`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TopicId(pub u16);

impl NodeId {
    /// The id as a `usize` index.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The id as a `usize` index.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl TopicId {
    /// The id as a `usize` index.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<usize> for NodeId {
    #[inline]
    fn from(v: usize) -> Self {
        debug_assert!(v <= u32::MAX as usize, "node id overflows u32");
        NodeId(v as u32)
    }
}

impl From<u32> for EdgeId {
    #[inline]
    fn from(v: u32) -> Self {
        EdgeId(v)
    }
}

impl From<usize> for EdgeId {
    #[inline]
    fn from(v: usize) -> Self {
        debug_assert!(v <= u32::MAX as usize, "edge id overflows u32");
        EdgeId(v as u32)
    }
}

impl From<u16> for TopicId {
    #[inline]
    fn from(v: u16) -> Self {
        TopicId(v)
    }
}

impl From<usize> for TopicId {
    #[inline]
    fn from(v: usize) -> Self {
        debug_assert!(v <= u16::MAX as usize, "topic id overflows u16");
        TopicId(v as u16)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for TopicId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "z{}", self.0)
    }
}

impl fmt::Display for TopicId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n = NodeId::from(42usize);
        assert_eq!(n.index(), 42);
        assert_eq!(format!("{n:?}"), "n42");
        assert_eq!(format!("{n}"), "42");
    }

    #[test]
    fn edge_id_roundtrip() {
        let e = EdgeId::from(7u32);
        assert_eq!(e.index(), 7);
        assert_eq!(format!("{e:?}"), "e7");
    }

    #[test]
    fn topic_id_roundtrip() {
        let z = TopicId::from(3usize);
        assert_eq!(z.index(), 3);
        assert_eq!(format!("{z:?}"), "z3");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(NodeId(1));
        s.insert(NodeId(1));
        s.insert(NodeId(2));
        assert_eq!(s.len(), 2);
        assert!(NodeId(1) < NodeId(2));
    }
}
