//! Low-level helpers shared by every OCTOPUS binary codec.
//!
//! Three codecs in the workspace follow the same magic/version/`need()`
//! discipline — the graph codec ([`crate::codec`]), the dataset store
//! (`octopus-data::store`), and the offline-artifact cache
//! (`octopus-core::offline::persist`). This module is their common
//! substrate: bounds-checked reads that turn truncation into a typed error
//! instead of a panic, length-prefixed strings, and a stable 64-bit hash
//! for content fingerprints and payload checksums.

use bytes::{Buf, BufMut, BytesMut};

/// A low-level codec failure: truncation, bad framing, or invalid UTF-8.
///
/// Each codec maps `WireError` into its own error enum (`GraphError::Codec`,
/// `StoreError::Corrupt`, `PersistError::Corrupt`) so callers keep their
/// crate-local error types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for WireError {}

/// Fail with a truncation error unless `buf` still holds `n` bytes.
pub fn need<B: Buf + ?Sized>(buf: &B, n: usize, what: &str) -> Result<(), WireError> {
    if buf.remaining() < n {
        Err(WireError(format!("truncated while reading {what}")))
    } else {
        Ok(())
    }
}

/// Append a `u32`-length-prefixed UTF-8 string.
pub fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

/// Read a `u32`-length-prefixed UTF-8 string written by [`put_string`].
pub fn read_string<B: Buf + ?Sized>(buf: &mut B, what: &str) -> Result<String, WireError> {
    need(buf, 4, what)?;
    let len = buf.get_u32_le() as usize;
    need(buf, len, what)?;
    let mut raw = vec![0u8; len];
    buf.copy_to_slice(&mut raw);
    String::from_utf8(raw).map_err(|_| WireError(format!("invalid utf8 in {what}")))
}

/// Read `count` little-endian `u32`s after a bounds check.
pub fn read_u32s<B: Buf + ?Sized>(
    buf: &mut B,
    count: usize,
    what: &str,
) -> Result<Vec<u32>, WireError> {
    need(buf, count.saturating_mul(4), what)?;
    let mut v = Vec::with_capacity(count);
    for _ in 0..count {
        v.push(buf.get_u32_le());
    }
    Ok(v)
}

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// An incremental FNV-1a 64-bit hasher with a **stable, documented**
/// algorithm — unlike `std::hash::DefaultHasher`, its output may be
/// persisted to disk (cache keys, payload checksums) and compared across
/// builds and platforms.
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Absorb a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// Absorb a `u32` in little-endian byte order.
    pub fn write_u32(&mut self, v: u32) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// Absorb a `u16` in little-endian byte order.
    pub fn write_u16(&mut self, v: u16) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// Absorb a single byte.
    pub fn write_u8(&mut self, v: u8) -> &mut Self {
        self.write(&[v])
    }

    /// Absorb an `f32` by its exact bit pattern.
    pub fn write_f32(&mut self, v: f32) -> &mut Self {
        self.write(&v.to_bits().to_le_bytes())
    }

    /// Absorb an `f64` by its exact bit pattern (distinguishes `-0.0` from
    /// `0.0` and every NaN payload — a fingerprint must not conflate values
    /// that could change downstream computation).
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write_u64(v.to_bits())
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot FNV-1a 64 over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn need_rejects_short_buffers() {
        let raw = [0u8; 3];
        assert!(need(&&raw[..], 4, "x").is_err());
        assert!(need(&&raw[..], 3, "x").is_ok());
    }

    #[test]
    fn strings_round_trip() {
        let mut buf = BytesMut::new();
        put_string(&mut buf, "jiawei han");
        put_string(&mut buf, "");
        let frozen = buf.freeze();
        let mut r = frozen.to_vec();
        let mut slice = &r[..];
        assert_eq!(read_string(&mut slice, "a").unwrap(), "jiawei han");
        assert_eq!(read_string(&mut slice, "b").unwrap(), "");
        // truncated string fails cleanly
        r.truncate(6);
        assert!(read_string(&mut &r[..], "t").is_err());
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // canonical FNV-1a 64 test vectors
        assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a(b"foobar"), 0x85944171F73967E8);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut h = Fnv64::new();
        h.write(b"foo").write(b"bar");
        assert_eq!(h.finish(), fnv1a(b"foobar"));
    }

    #[test]
    fn f64_hashing_uses_exact_bits() {
        let a = Fnv64::new().write_f64(0.0).finish();
        let b = Fnv64::new().write_f64(-0.0).finish();
        assert_ne!(a, b, "sign bit must participate in the fingerprint");
    }
}
