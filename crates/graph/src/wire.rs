//! Low-level helpers shared by every OCTOPUS binary codec.
//!
//! Three codecs in the workspace follow the same magic/version/`need()`
//! discipline — the graph codec ([`crate::codec`]), the dataset store
//! (`octopus-data::store`), and the offline-artifact cache
//! (`octopus-core::offline::persist`). This module is their common
//! substrate: bounds-checked reads that turn truncation into a typed error
//! instead of a panic, length-prefixed strings, and a stable 64-bit hash
//! for content fingerprints and payload checksums.

#![warn(missing_docs)]

use bytes::{Buf, BufMut, BytesMut};

/// A low-level codec failure: truncation, bad framing, or invalid UTF-8.
///
/// Each codec maps `WireError` into its own error enum (`GraphError::Codec`,
/// `StoreError::Corrupt`, `PersistError::Corrupt`) so callers keep their
/// crate-local error types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for WireError {}

/// Fail with a truncation error unless `buf` still holds `n` bytes.
pub fn need<B: Buf + ?Sized>(buf: &B, n: usize, what: &str) -> Result<(), WireError> {
    if buf.remaining() < n {
        Err(WireError(format!("truncated while reading {what}")))
    } else {
        Ok(())
    }
}

/// Append a `u32`-length-prefixed UTF-8 string.
pub fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

/// Read a `u32`-length-prefixed UTF-8 string written by [`put_string`].
pub fn read_string<B: Buf + ?Sized>(buf: &mut B, what: &str) -> Result<String, WireError> {
    need(buf, 4, what)?;
    let len = buf.get_u32_le() as usize;
    need(buf, len, what)?;
    let mut raw = vec![0u8; len];
    buf.copy_to_slice(&mut raw);
    String::from_utf8(raw).map_err(|_| WireError(format!("invalid utf8 in {what}")))
}

/// Read `count` little-endian `u32`s after a bounds check.
pub fn read_u32s<B: Buf + ?Sized>(
    buf: &mut B,
    count: usize,
    what: &str,
) -> Result<Vec<u32>, WireError> {
    need(buf, count.saturating_mul(4), what)?;
    let mut v = Vec::with_capacity(count);
    for _ in 0..count {
        v.push(buf.get_u32_le());
    }
    Ok(v)
}

/// The alignment every sectioned payload starts on (and the unit all
/// fixed-width record layouts are padded to): 8 bytes, so `u64`/`f64`
/// fields inside a section sit on natural boundaries of the mapped file.
pub const SECTION_ALIGN: usize = 8;

/// Round `n` up to the next multiple of [`SECTION_ALIGN`].
pub const fn align8(n: usize) -> usize {
    (n + (SECTION_ALIGN - 1)) & !(SECTION_ALIGN - 1)
}

/// Zero bytes needed after `n` to reach the next multiple of
/// [`SECTION_ALIGN`] (0 when already aligned).
pub const fn pad8(n: usize) -> usize {
    align8(n) - n
}

/// On-disk size of one [`SectionEntry`]:
/// tag + pad + key + offset + length + checksum.
pub const SECTION_ENTRY_LEN: usize = 4 + 4 + 8 + 8 + 8 + 8;

/// One row of a sectioned container's table of contents.
///
/// A *sectioned* codec (the OCTA artifact cache) frames its payload as
/// independently keyed, independently checksummed byte ranges so a reader
/// can salvage every intact section of a file whose other sections are
/// stale, truncated, or corrupt. The table row carries everything needed to
/// decide reuse *without* decoding the payload: the section `tag` (what it
/// is), its content `key` (a fingerprint of the inputs that produced it),
/// its absolute byte offset `off` (8-aligned, so a memory-mapped reader can
/// serve `u64`/`f64` fields in place), its byte `len`, and an FNV-1a
/// `checksum` of the payload bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionEntry {
    /// Section kind, codec-defined (decoders skip unknown tags).
    pub tag: u32,
    /// Fingerprint of the inputs this section's content was computed from.
    pub key: u64,
    /// Absolute byte offset of the payload from the start of the file;
    /// must be a multiple of [`SECTION_ALIGN`].
    pub off: u64,
    /// Payload length in bytes (padding between sections is not counted).
    pub len: u64,
    /// FNV-1a 64 over the payload bytes.
    pub checksum: u64,
}

/// Append a section-table row ([`SECTION_ENTRY_LEN`] bytes, little-endian):
/// `tag u32 | pad u32 = 0 | key u64 | off u64 | len u64 | checksum u64`.
pub fn put_section_entry(buf: &mut BytesMut, e: &SectionEntry) {
    buf.put_u32_le(e.tag);
    buf.put_u32_le(0);
    buf.put_u64_le(e.key);
    buf.put_u64_le(e.off);
    buf.put_u64_le(e.len);
    buf.put_u64_le(e.checksum);
}

/// Read a section-table row written by [`put_section_entry`]. The pad word
/// must be zero — a nonzero pad means the bytes are not a v4 table row.
pub fn read_section_entry<B: Buf + ?Sized>(
    buf: &mut B,
    what: &str,
) -> Result<SectionEntry, WireError> {
    need(buf, SECTION_ENTRY_LEN, what)?;
    let tag = buf.get_u32_le();
    let pad = buf.get_u32_le();
    if pad != 0 {
        return Err(WireError(format!(
            "nonzero pad word {pad:#x} in section-table row of {what}"
        )));
    }
    Ok(SectionEntry {
        tag,
        key: buf.get_u64_le(),
        off: buf.get_u64_le(),
        len: buf.get_u64_le(),
        checksum: buf.get_u64_le(),
    })
}

/// Bounds- and alignment-check one section's byte range against the whole
/// file, **without** touching the payload bytes (no checksum): this is the
/// open-time validation of a memory-mapped reader, which defers checksums
/// to first touch. Returns the `(start, end)` byte range.
pub fn section_range(file_len: usize, entry: &SectionEntry) -> Result<(usize, usize), WireError> {
    let off = entry.off as usize;
    if !off.is_multiple_of(SECTION_ALIGN) {
        return Err(WireError(format!(
            "section {} is misaligned (offset {} not a multiple of {})",
            entry.tag, off, SECTION_ALIGN
        )));
    }
    let end = off
        .checked_add(entry.len as usize)
        .ok_or_else(|| WireError(format!("section {} length overflows", entry.tag)))?;
    if end > file_len {
        return Err(WireError(format!(
            "section {} extends past end of file ({} > {})",
            entry.tag, end, file_len
        )));
    }
    Ok((off, end))
}

/// Slice one section's payload out of the file bytes and verify its
/// checksum. Fails on misaligned or out-of-bounds ranges (truncated file)
/// and checksum mismatches (in-place corruption), so a successful return
/// hands the caller exactly the bytes the writer checksummed.
pub fn section_payload<'a>(raw: &'a [u8], entry: &SectionEntry) -> Result<&'a [u8], WireError> {
    let (start, end) = section_range(raw.len(), entry)?;
    let payload = &raw[start..end];
    if fnv1a(payload) != entry.checksum {
        return Err(WireError(format!(
            "section {} checksum mismatch (corrupted in place)",
            entry.tag
        )));
    }
    Ok(payload)
}

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// An incremental FNV-1a 64-bit hasher with a **stable, documented**
/// algorithm — unlike `std::hash::DefaultHasher`, its output may be
/// persisted to disk (cache keys, payload checksums) and compared across
/// builds and platforms.
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Absorb a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// Absorb a `u32` in little-endian byte order.
    pub fn write_u32(&mut self, v: u32) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// Absorb a `u16` in little-endian byte order.
    pub fn write_u16(&mut self, v: u16) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// Absorb a single byte.
    pub fn write_u8(&mut self, v: u8) -> &mut Self {
        self.write(&[v])
    }

    /// Absorb an `f32` by its exact bit pattern.
    pub fn write_f32(&mut self, v: f32) -> &mut Self {
        self.write(&v.to_bits().to_le_bytes())
    }

    /// Absorb an `f64` by its exact bit pattern (distinguishes `-0.0` from
    /// `0.0` and every NaN payload — a fingerprint must not conflate values
    /// that could change downstream computation).
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write_u64(v.to_bits())
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot FNV-1a 64 over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn need_rejects_short_buffers() {
        let raw = [0u8; 3];
        assert!(need(&&raw[..], 4, "x").is_err());
        assert!(need(&&raw[..], 3, "x").is_ok());
    }

    #[test]
    fn strings_round_trip() {
        let mut buf = BytesMut::new();
        put_string(&mut buf, "jiawei han");
        put_string(&mut buf, "");
        let frozen = buf.freeze();
        let mut r = frozen.to_vec();
        let mut slice = &r[..];
        assert_eq!(read_string(&mut slice, "a").unwrap(), "jiawei han");
        assert_eq!(read_string(&mut slice, "b").unwrap(), "");
        // truncated string fails cleanly
        r.truncate(6);
        assert!(read_string(&mut &r[..], "t").is_err());
    }

    #[test]
    fn alignment_helpers() {
        assert_eq!(align8(0), 0);
        assert_eq!(align8(1), 8);
        assert_eq!(align8(8), 8);
        assert_eq!(align8(9), 16);
        assert_eq!(pad8(8), 0);
        assert_eq!(pad8(11), 5);
    }

    #[test]
    fn section_entries_round_trip_and_verify() {
        // two sections laid out 8-aligned with zero padding between them
        let payload_a = b"cap-section!".to_vec(); // 12 bytes -> padded to 16
        let payload_b = b"trie".to_vec();
        let a_off = 0usize;
        let b_off = align8(payload_a.len());
        let entries = [
            SectionEntry {
                tag: 1,
                key: 0xAB,
                off: a_off as u64,
                len: payload_a.len() as u64,
                checksum: fnv1a(&payload_a),
            },
            SectionEntry {
                tag: 6,
                key: 0xCD,
                off: b_off as u64,
                len: payload_b.len() as u64,
                checksum: fnv1a(&payload_b),
            },
        ];
        let mut buf = BytesMut::new();
        for e in &entries {
            put_section_entry(&mut buf, e);
        }
        assert_eq!(buf.len(), 2 * SECTION_ENTRY_LEN);
        let frozen = buf.freeze();
        let mut slice = &frozen[..];
        assert_eq!(read_section_entry(&mut slice, "a").unwrap(), entries[0]);
        assert_eq!(read_section_entry(&mut slice, "b").unwrap(), entries[1]);
        assert!(read_section_entry(&mut slice, "eof").is_err());
        // a nonzero pad word is rejected
        let mut bad = frozen.to_vec();
        bad[4] = 0xFF;
        assert!(read_section_entry(&mut &bad[..], "pad").is_err());

        let mut raw = payload_a.clone();
        raw.resize(b_off, 0); // alignment padding
        raw.extend_from_slice(&payload_b);
        assert_eq!(section_payload(&raw, &entries[0]).unwrap(), &payload_a[..]);
        assert_eq!(section_payload(&raw, &entries[1]).unwrap(), &payload_b[..]);
        assert_eq!(
            section_range(raw.len(), &entries[1]).unwrap(),
            (b_off, b_off + payload_b.len())
        );
        // truncated payload area: out-of-bounds, not a panic
        assert!(section_payload(&raw[..raw.len() - 1], &entries[1]).is_err());
        // a misaligned offset is rejected before any byte is read
        let misaligned = SectionEntry {
            off: 4,
            ..entries[1]
        };
        assert!(section_range(raw.len(), &misaligned).is_err());
        // a flipped byte fails the checksum
        let mut corrupt = raw.clone();
        corrupt[2] ^= 0x10;
        assert!(section_payload(&corrupt, &entries[0]).is_err());
        // but leaves the *other* section salvageable
        assert!(section_payload(&corrupt, &entries[1]).is_ok());
        // and section_range (the lazy-checksum open path) still accepts the
        // corrupted range — corruption is caught at first touch, by design
        assert!(section_range(corrupt.len(), &entries[0]).is_ok());
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // canonical FNV-1a 64 test vectors
        assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a(b"foobar"), 0x85944171F73967E8);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut h = Fnv64::new();
        h.write(b"foo").write(b"bar");
        assert_eq!(h.finish(), fnv1a(b"foobar"));
    }

    #[test]
    fn f64_hashing_uses_exact_bits() {
        let a = Fnv64::new().write_f64(0.0).finish();
        let b = Fnv64::new().write_f64(-0.0).finish();
        assert_ne!(a, b, "sign bit must participate in the fingerprint");
    }
}
