//! Descriptive statistics over a [`TopicGraph`] — used by the data
//! generators' validation tests and by the experiment harness to report
//! workload characteristics alongside results (as systems papers do).

use crate::csr::TopicGraph;
use crate::ids::NodeId;

/// Summary statistics of a topic graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Node count.
    pub nodes: usize,
    /// Edge count.
    pub edges: usize,
    /// Topic count.
    pub topics: usize,
    /// Mean out-degree.
    pub avg_out_degree: f64,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Mean number of non-zero topic entries per edge.
    pub avg_edge_nnz: f64,
    /// Mean of `max_z pp^z_e` over edges.
    pub avg_max_prob: f64,
    /// Fraction of edges whose mass sits on a single topic.
    pub single_topic_edge_frac: f64,
}

impl GraphStats {
    /// Compute statistics for `g`.
    pub fn compute(g: &TopicGraph) -> Self {
        let n = g.node_count();
        let m = g.edge_count();
        let mut max_out = 0usize;
        let mut max_in = 0usize;
        for u in g.nodes() {
            max_out = max_out.max(g.out_degree(u));
            max_in = max_in.max(g.in_degree(u));
        }
        let mut nnz_sum = 0usize;
        let mut max_prob_sum = 0.0f64;
        let mut single = 0usize;
        for e in g.edges() {
            let nnz = g.edge_nnz(e);
            nnz_sum += nnz;
            if nnz == 1 {
                single += 1;
            }
            max_prob_sum += g.edge_prob_max(e) as f64;
        }
        let md = |num: f64, den: usize| if den == 0 { 0.0 } else { num / den as f64 };
        GraphStats {
            nodes: n,
            edges: m,
            topics: g.num_topics(),
            avg_out_degree: md(m as f64, n),
            max_out_degree: max_out,
            max_in_degree: max_in,
            avg_edge_nnz: md(nnz_sum as f64, m),
            avg_max_prob: md(max_prob_sum, m),
            single_topic_edge_frac: md(single as f64, m),
        }
    }
}

/// Out-degree histogram with logarithmic buckets `[2^i, 2^{i+1})` — a quick
/// power-law sanity check for generated networks.
pub fn degree_histogram(g: &TopicGraph) -> Vec<(usize, usize)> {
    let mut buckets: Vec<usize> = Vec::new();
    for u in g.nodes() {
        let d = g.out_degree(u);
        let b = if d == 0 {
            0
        } else {
            (usize::BITS - d.leading_zeros()) as usize
        };
        if b >= buckets.len() {
            buckets.resize(b + 1, 0);
        }
        buckets[b] += 1;
    }
    buckets
        .into_iter()
        .enumerate()
        .map(|(i, c)| (if i == 0 { 0 } else { 1usize << (i - 1) }, c))
        .collect()
}

/// The `k` nodes with the largest out-degree (ties broken by id) — a cheap
/// structural baseline for influence ranking ("degree heuristic" in the IM
/// literature).
pub fn top_out_degree(g: &TopicGraph, k: usize) -> Vec<(NodeId, usize)> {
    let mut all: Vec<(NodeId, usize)> = g.nodes().map(|u| (u, g.out_degree(u))).collect();
    all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn star() -> TopicGraph {
        // hub 0 → 1..=4, plus 1 → 2 with two topics
        let mut b = GraphBuilder::new(2);
        let _ = b.add_nodes(5);
        for v in 1..5 {
            b.add_edge(NodeId(0), NodeId(v), &[(0, 0.4)]).unwrap();
        }
        b.add_edge(NodeId(1), NodeId(2), &[(0, 0.3), (1, 0.6)])
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn stats_basic() {
        let s = GraphStats::compute(&star());
        assert_eq!(s.nodes, 5);
        assert_eq!(s.edges, 5);
        assert_eq!(s.max_out_degree, 4);
        assert_eq!(s.max_in_degree, 2);
        assert!((s.avg_out_degree - 1.0).abs() < 1e-12);
        assert!((s.single_topic_edge_frac - 0.8).abs() < 1e-12);
        assert!((s.avg_edge_nnz - 1.2).abs() < 1e-12);
        assert!((s.avg_max_prob - (0.4 * 4.0 + 0.6) / 5.0).abs() < 1e-6);
    }

    #[test]
    fn stats_empty_graph() {
        let g = GraphBuilder::new(1).build().unwrap();
        let s = GraphStats::compute(&g);
        assert_eq!(s.nodes, 0);
        assert_eq!(s.avg_out_degree, 0.0);
    }

    #[test]
    fn histogram_buckets() {
        let h = degree_histogram(&star());
        // node 0 has degree 4 → bucket starting at 4; node 1 degree 1; rest 0
        let total: usize = h.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 5);
        assert_eq!(h[0], (0, 3));
    }

    #[test]
    fn top_degree_ranking() {
        let top = top_out_degree(&star(), 2);
        assert_eq!(top[0].0, NodeId(0));
        assert_eq!(top[0].1, 4);
        assert_eq!(top[1].0, NodeId(1));
    }
}
