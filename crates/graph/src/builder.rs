//! Incremental construction of [`TopicGraph`]s.

use crate::csr::TopicGraph;
use crate::error::GraphError;
use crate::ids::NodeId;
use crate::Result;
use std::collections::HashMap;

/// One staged edge record: `(source, target, sparse (topic, prob) pairs)`.
type EdgeRecord = (u32, u32, Vec<(u16, f32)>);

/// Builder for [`TopicGraph`].
///
/// Collects nodes and edges in any order, then [`GraphBuilder::build`] sorts
/// them into CSR form. Parallel edges are merged by **keeping the
/// maximum probability per topic** (the standard treatment when several
/// action-log estimates exist for one edge); self-loops are rejected because
/// they are meaningless under the IC model.
///
/// ```
/// use octopus_graph::GraphBuilder;
/// let mut b = GraphBuilder::new(1);
/// let u = b.add_node("u");
/// let v = b.add_node("v");
/// b.add_edge(u, v, &[(0, 0.25)]).unwrap();
/// let g = b.build().unwrap();
/// assert_eq!(g.edge_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_topics: usize,
    names: Vec<String>,
    named: bool,
    name_index: HashMap<String, NodeId>,
    /// (src, dst, sparse probs sorted by topic)
    edges: Vec<EdgeRecord>,
}

impl GraphBuilder {
    /// Create a builder for a graph over `num_topics` topics.
    ///
    /// # Panics
    /// Panics if `num_topics == 0` or exceeds `u16::MAX`.
    pub fn new(num_topics: usize) -> Self {
        assert!(num_topics > 0, "a topic graph needs at least one topic");
        assert!(
            num_topics <= u16::MAX as usize,
            "too many topics for u16 ids"
        );
        GraphBuilder {
            num_topics,
            names: Vec::new(),
            named: false,
            name_index: HashMap::new(),
            edges: Vec::new(),
        }
    }

    /// Pre-size internal buffers (builder-pattern hint, no semantic effect).
    pub fn with_capacity(mut self, nodes: usize, edges: usize) -> Self {
        self.names.reserve(nodes);
        self.edges.reserve(edges);
        self
    }

    /// Number of topics the builder was created with.
    pub fn num_topics(&self) -> usize {
        self.num_topics
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Number of edge records added so far (before dedup).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Add a named node; returns its dense id. Names must be unique — use
    /// [`GraphBuilder::add_anonymous_node`] (or empty names) otherwise.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let name = name.into();
        let id = NodeId(self.names.len() as u32);
        if !name.is_empty() {
            self.named = true;
            self.name_index.insert(name.clone(), id);
        }
        self.names.push(name);
        id
    }

    /// Add a node with a unique name, failing on duplicates.
    pub fn try_add_node(&mut self, name: impl Into<String>) -> Result<NodeId> {
        let name = name.into();
        if !name.is_empty() && self.name_index.contains_key(&name) {
            return Err(GraphError::DuplicateName(name));
        }
        Ok(self.add_node(name))
    }

    /// Add an unnamed node.
    pub fn add_anonymous_node(&mut self) -> NodeId {
        self.add_node(String::new())
    }

    /// Add `n` unnamed nodes, returning the id of the first.
    pub fn add_nodes(&mut self, n: usize) -> NodeId {
        let first = NodeId(self.names.len() as u32);
        for _ in 0..n {
            self.add_anonymous_node();
        }
        first
    }

    /// Add a directed edge `u → v` with sparse per-topic probabilities.
    ///
    /// `probs` is a list of `(topic, probability)` pairs; order does not
    /// matter, duplicates within one call keep the max. Zero-probability
    /// entries are dropped. An edge whose entries are all zero is dropped
    /// entirely at [`GraphBuilder::build`] time.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, probs: &[(usize, f64)]) -> Result<()> {
        if u.index() >= self.names.len() {
            return Err(GraphError::NodeOutOfBounds {
                node: u.0,
                len: self.names.len(),
            });
        }
        if v.index() >= self.names.len() {
            return Err(GraphError::NodeOutOfBounds {
                node: v.0,
                len: self.names.len(),
            });
        }
        if u == v {
            // Self-influence is a no-op under IC; reject loudly so data bugs
            // surface early.
            return Err(GraphError::NoSuchEdge { from: u.0, to: v.0 });
        }
        let mut sparse: Vec<(u16, f32)> = Vec::with_capacity(probs.len());
        for &(z, p) in probs {
            if z >= self.num_topics {
                return Err(GraphError::TopicOutOfBounds {
                    topic: z,
                    num_topics: self.num_topics,
                });
            }
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(GraphError::InvalidProbability(p));
            }
            if p > 0.0 {
                sparse.push((z as u16, p as f32));
            }
        }
        sparse.sort_unstable_by_key(|&(z, _)| z);
        sparse.dedup_by(|a, b| {
            if a.0 == b.0 {
                b.1 = b.1.max(a.1);
                true
            } else {
                false
            }
        });
        self.edges.push((u.0, v.0, sparse));
        Ok(())
    }

    /// Finalize into CSR form.
    pub fn build(mut self) -> Result<TopicGraph> {
        let n = self.names.len();
        // Sort edges by (src, dst) and merge parallels (max per topic).
        self.edges.sort_unstable_by_key(|e| (e.0, e.1));
        let mut merged: Vec<EdgeRecord> = Vec::with_capacity(self.edges.len());
        for (u, v, probs) in self.edges.drain(..) {
            match merged.last_mut() {
                Some((lu, lv, lp)) if *lu == u && *lv == v => {
                    // merge sparse vectors, keeping max per topic
                    let mut out = Vec::with_capacity(lp.len() + probs.len());
                    let (mut i, mut j) = (0usize, 0usize);
                    while i < lp.len() && j < probs.len() {
                        match lp[i].0.cmp(&probs[j].0) {
                            std::cmp::Ordering::Less => {
                                out.push(lp[i]);
                                i += 1;
                            }
                            std::cmp::Ordering::Greater => {
                                out.push(probs[j]);
                                j += 1;
                            }
                            std::cmp::Ordering::Equal => {
                                out.push((lp[i].0, lp[i].1.max(probs[j].1)));
                                i += 1;
                                j += 1;
                            }
                        }
                    }
                    out.extend_from_slice(&lp[i..]);
                    out.extend_from_slice(&probs[j..]);
                    *lp = out;
                }
                _ => merged.push((u, v, probs)),
            }
        }
        // Drop all-zero edges.
        merged.retain(|(_, _, p)| !p.is_empty());

        let m = merged.len();
        let mut fwd_offsets = vec![0u32; n + 1];
        let mut fwd_targets = Vec::with_capacity(m);
        let mut prob_offsets = Vec::with_capacity(m + 1);
        let mut prob_topics = Vec::new();
        let mut prob_values = Vec::new();
        prob_offsets.push(0u32);

        for (u, v, probs) in &merged {
            fwd_offsets[*u as usize + 1] += 1;
            fwd_targets.push(*v);
            for &(z, p) in probs {
                prob_topics.push(z);
                prob_values.push(p);
            }
            prob_offsets.push(prob_topics.len() as u32);
        }
        for i in 0..n {
            fwd_offsets[i + 1] += fwd_offsets[i];
        }

        // Reverse CSR.
        let mut rev_offsets = vec![0u32; n + 1];
        for (_, v, _) in &merged {
            rev_offsets[*v as usize + 1] += 1;
        }
        for i in 0..n {
            rev_offsets[i + 1] += rev_offsets[i];
        }
        let mut rev_sources = vec![0u32; m];
        let mut rev_edge_ids = vec![0u32; m];
        let mut cursor = rev_offsets.clone();
        for (e, (u, v, _)) in merged.iter().enumerate() {
            let slot = cursor[*v as usize] as usize;
            rev_sources[slot] = *u;
            rev_edge_ids[slot] = e as u32;
            cursor[*v as usize] += 1;
        }

        let names = if self.named {
            self.names
        } else {
            vec![String::new(); n]
        };
        Ok(TopicGraph {
            num_topics: self.num_topics,
            names,
            name_index: self.name_index,
            fwd_offsets,
            fwd_targets,
            rev_offsets,
            rev_sources,
            rev_edge_ids,
            prob_offsets,
            prob_topics,
            prob_values,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::TopicId;

    #[test]
    fn rejects_bad_inputs() {
        let mut b = GraphBuilder::new(2);
        let u = b.add_node("u");
        let v = b.add_node("v");
        assert!(b.add_edge(u, NodeId(9), &[(0, 0.5)]).is_err());
        assert!(b.add_edge(u, v, &[(5, 0.5)]).is_err());
        assert!(b.add_edge(u, v, &[(0, 1.5)]).is_err());
        assert!(b.add_edge(u, v, &[(0, f64::NAN)]).is_err());
        assert!(
            b.add_edge(u, u, &[(0, 0.2)]).is_err(),
            "self loops rejected"
        );
    }

    #[test]
    fn duplicate_names_detected_by_try_add() {
        let mut b = GraphBuilder::new(1);
        b.try_add_node("x").unwrap();
        assert!(matches!(
            b.try_add_node("x"),
            Err(GraphError::DuplicateName(_))
        ));
        // anonymous duplicates fine
        b.add_anonymous_node();
        b.add_anonymous_node();
        assert_eq!(b.node_count(), 3);
    }

    #[test]
    fn parallel_edges_merge_with_max() {
        let mut b = GraphBuilder::new(2);
        let u = b.add_node("u");
        let v = b.add_node("v");
        b.add_edge(u, v, &[(0, 0.3), (1, 0.1)]).unwrap();
        b.add_edge(u, v, &[(0, 0.6)]).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.edge_count(), 1);
        let e = g.find_edge(u, v).unwrap();
        assert_eq!(g.edge_prob_topic(e, TopicId(0)), 0.6);
        assert_eq!(g.edge_prob_topic(e, TopicId(1)), 0.1);
    }

    #[test]
    fn duplicate_topics_within_one_call_keep_max() {
        let mut b = GraphBuilder::new(2);
        let u = b.add_node("u");
        let v = b.add_node("v");
        b.add_edge(u, v, &[(1, 0.2), (1, 0.5), (0, 0.1)]).unwrap();
        let g = b.build().unwrap();
        let e = g.find_edge(u, v).unwrap();
        assert_eq!(g.edge_prob_topic(e, TopicId(1)), 0.5);
        assert_eq!(g.edge_nnz(e), 2);
    }

    #[test]
    fn zero_prob_entries_dropped_and_empty_edges_removed() {
        let mut b = GraphBuilder::new(2);
        let u = b.add_node("u");
        let v = b.add_node("v");
        b.add_edge(u, v, &[(0, 0.0), (1, 0.0)]).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn empty_graph_builds() {
        let g = GraphBuilder::new(4).build().unwrap();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.num_topics(), 4);
    }

    #[test]
    fn isolated_nodes_have_empty_adjacency() {
        let mut b = GraphBuilder::new(1);
        let _ = b.add_nodes(5);
        b.add_edge(NodeId(1), NodeId(3), &[(0, 0.9)]).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.out_degree(NodeId(0)), 0);
        assert_eq!(g.in_degree(NodeId(4)), 0);
        assert_eq!(g.out_degree(NodeId(1)), 1);
        assert_eq!(g.in_degree(NodeId(3)), 1);
    }

    #[test]
    #[should_panic(expected = "at least one topic")]
    fn zero_topics_panics() {
        let _ = GraphBuilder::new(0);
    }

    #[test]
    fn edge_ids_sorted_by_source_then_target() {
        let mut b = GraphBuilder::new(1);
        let _ = b.add_nodes(4);
        // inserted out of order on purpose
        b.add_edge(NodeId(2), NodeId(0), &[(0, 0.1)]).unwrap();
        b.add_edge(NodeId(0), NodeId(3), &[(0, 0.2)]).unwrap();
        b.add_edge(NodeId(0), NodeId(1), &[(0, 0.3)]).unwrap();
        let g = b.build().unwrap();
        assert_eq!(
            g.edge_endpoints(crate::EdgeId(0)).unwrap(),
            (NodeId(0), NodeId(1))
        );
        assert_eq!(
            g.edge_endpoints(crate::EdgeId(1)).unwrap(),
            (NodeId(0), NodeId(3))
        );
        assert_eq!(
            g.edge_endpoints(crate::EdgeId(2)).unwrap(),
            (NodeId(2), NodeId(0))
        );
    }
}
