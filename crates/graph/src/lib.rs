//! # octopus-graph
//!
//! Topic-weighted social graph substrate for the OCTOPUS influence-analysis
//! system (ICDE'18).
//!
//! The central type is [`TopicGraph`]: a directed graph in compressed
//! sparse-row (CSR) form where every edge `(u, v)` carries a *sparse* vector
//! of per-topic activation probabilities `⟨pp¹_{u,v} … pp^Z_{u,v}⟩`, exactly
//! as in the topic-aware independent-cascade (TIC) model of the paper
//! (§II-B). Given an item/query topic distribution `γ`, the effective
//! activation probability of an edge is
//!
//! ```text
//! pp_{u,v}(γ) = Σ_z  pp^z_{u,v} · γ_z
//! ```
//!
//! which [`TopicGraph::edge_prob`] evaluates in `O(nnz(e))`.
//!
//! The crate also provides:
//! * [`GraphBuilder`] — incremental construction with node naming,
//!   deduplication and validation;
//! * [`EdgeProbs`] — a dense per-edge probability materialization for a fixed
//!   `γ` (what the paper's naive baseline computes per query);
//! * [`algo`] — basic traversals and statistics used by the upper layers;
//! * [`codec`] — a compact, versioned binary (de)serialization.
//!
//! # Example
//!
//! ```
//! use octopus_graph::{GraphBuilder, NodeId};
//!
//! let mut b = GraphBuilder::new(2); // two topics
//! let u = b.add_node("ada");
//! let v = b.add_node("grace");
//! b.add_edge(u, v, &[(0, 0.8), (1, 0.1)]).unwrap();
//! let g = b.build().unwrap();
//!
//! // Item fully about topic 0:
//! assert!((g.edge_prob_uv(u, v, &[1.0, 0.0]).unwrap() - 0.8).abs() < 1e-6);
//! // Mixed item:
//! assert!((g.edge_prob_uv(u, v, &[0.5, 0.5]).unwrap() - 0.45).abs() < 1e-6);
//! ```

#![warn(missing_docs)]

pub mod algo;
pub mod builder;
pub mod codec;
pub mod csr;
pub mod delta;
pub mod error;
pub mod ids;
pub mod stats;
pub mod subgraph;
pub mod wire;

pub use builder::GraphBuilder;
pub use csr::{EdgeProbs, TopicGraph};
pub use error::GraphError;
pub use ids::{EdgeId, NodeId, TopicId};

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, GraphError>;
