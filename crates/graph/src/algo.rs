//! Basic graph traversals used by the analysis layers.

use crate::csr::TopicGraph;
use crate::ids::NodeId;
use std::collections::VecDeque;

/// Direction of a traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Follow out-edges (who does `u` influence).
    Forward,
    /// Follow in-edges (who influences `u`).
    Reverse,
}

/// Nodes reachable from `start` following edges in `dir`, including `start`.
///
/// Ignores probabilities — structural reachability only.
pub fn reachable(g: &TopicGraph, start: NodeId, dir: Direction) -> Vec<NodeId> {
    let mut seen = vec![false; g.node_count()];
    let mut queue = VecDeque::new();
    let mut out = Vec::new();
    seen[start.index()] = true;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        out.push(u);
        let next: Box<dyn Iterator<Item = NodeId>> = match dir {
            Direction::Forward => Box::new(g.out_edges(u).map(|(v, _)| v)),
            Direction::Reverse => Box::new(g.in_edges(u).map(|(v, _)| v)),
        };
        for v in next {
            if !seen[v.index()] {
                seen[v.index()] = true;
                queue.push_back(v);
            }
        }
    }
    out
}

/// BFS distances (hop counts) from `start`; `u32::MAX` marks unreachable.
pub fn bfs_distances(g: &TopicGraph, start: NodeId, dir: Direction) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.node_count()];
    let mut queue = VecDeque::new();
    dist[start.index()] = 0;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        let next: Box<dyn Iterator<Item = NodeId>> = match dir {
            Direction::Forward => Box::new(g.out_edges(u).map(|(v, _)| v)),
            Direction::Reverse => Box::new(g.in_edges(u).map(|(v, _)| v)),
        };
        for v in next {
            if dist[v.index()] == u32::MAX {
                dist[v.index()] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Nodes within `radius` hops of `start` (the "local graph" of the LG bound
/// estimator in `octopus-core`), including `start`.
pub fn ball(g: &TopicGraph, start: NodeId, radius: u32, dir: Direction) -> Vec<NodeId> {
    let mut dist = vec![u32::MAX; g.node_count()];
    let mut queue = VecDeque::new();
    let mut out = Vec::new();
    dist[start.index()] = 0;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        out.push(u);
        let du = dist[u.index()];
        if du == radius {
            continue;
        }
        let next: Box<dyn Iterator<Item = NodeId>> = match dir {
            Direction::Forward => Box::new(g.out_edges(u).map(|(v, _)| v)),
            Direction::Reverse => Box::new(g.in_edges(u).map(|(v, _)| v)),
        };
        for v in next {
            if dist[v.index()] == u32::MAX {
                dist[v.index()] = du + 1;
                queue.push_back(v);
            }
        }
    }
    out
}

/// Strongly connected components (iterative Tarjan). Returns a component id
/// per node (ids in reverse topological order of the condensation) and the
/// component count.
///
/// Used by workload reports and as an IM preprocessing aid: users in one SCC
/// of near-certain edges behave as a single influence unit.
pub fn strongly_connected_components(g: &TopicGraph) -> (Vec<u32>, usize) {
    let n = g.node_count();
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![UNSET; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut next_comp = 0u32;

    // explicit DFS frame: (node, out-edge cursor)
    let mut frames: Vec<(u32, usize)> = Vec::new();
    for start in 0..n as u32 {
        if index[start as usize] != UNSET {
            continue;
        }
        frames.push((start, 0));
        index[start as usize] = next_index;
        lowlink[start as usize] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start as usize] = true;

        while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
            let vi = v as usize;
            let lo = g.fwd_offsets[vi] as usize;
            let hi = g.fwd_offsets[vi + 1] as usize;
            if lo + *cursor < hi {
                let w = g.fwd_targets[lo + *cursor];
                *cursor += 1;
                let wi = w as usize;
                if index[wi] == UNSET {
                    index[wi] = next_index;
                    lowlink[wi] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[wi] = true;
                    frames.push((w, 0));
                } else if on_stack[wi] {
                    lowlink[vi] = lowlink[vi].min(index[wi]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    let pi = parent as usize;
                    lowlink[pi] = lowlink[pi].min(lowlink[vi]);
                }
                if lowlink[vi] == index[vi] {
                    // v roots an SCC
                    loop {
                        let w = stack.pop().expect("stack holds the component");
                        on_stack[w as usize] = false;
                        comp[w as usize] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
            }
        }
    }
    (comp, next_comp as usize)
}

/// Weakly connected components; returns a component id per node and the
/// number of components.
pub fn weakly_connected_components(g: &TopicGraph) -> (Vec<u32>, usize) {
    let n = g.node_count();
    let mut comp = vec![u32::MAX; n];
    let mut next_comp = 0u32;
    let mut queue = VecDeque::new();
    for s in 0..n {
        if comp[s] != u32::MAX {
            continue;
        }
        comp[s] = next_comp;
        queue.push_back(NodeId(s as u32));
        while let Some(u) = queue.pop_front() {
            for (v, _) in g.out_edges(u).chain(g.in_edges(u)) {
                if comp[v.index()] == u32::MAX {
                    comp[v.index()] = next_comp;
                    queue.push_back(v);
                }
            }
        }
        next_comp += 1;
    }
    (comp, next_comp as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    /// 0→1→2, 3→4 (two components), all prob 0.5 single topic.
    fn two_chains() -> TopicGraph {
        let mut b = GraphBuilder::new(1);
        let _ = b.add_nodes(5);
        for (u, v) in [(0, 1), (1, 2), (3, 4)] {
            b.add_edge(NodeId(u), NodeId(v), &[(0, 0.5)]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn forward_reachability() {
        let g = two_chains();
        let mut r = reachable(&g, NodeId(0), Direction::Forward);
        r.sort();
        assert_eq!(r, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn reverse_reachability() {
        let g = two_chains();
        let mut r = reachable(&g, NodeId(2), Direction::Reverse);
        r.sort();
        assert_eq!(r, vec![NodeId(0), NodeId(1), NodeId(2)]);
        let r = reachable(&g, NodeId(3), Direction::Reverse);
        assert_eq!(r, vec![NodeId(3)]);
    }

    #[test]
    fn distances() {
        let g = two_chains();
        let d = bfs_distances(&g, NodeId(0), Direction::Forward);
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], 2);
        assert_eq!(d[3], u32::MAX);
    }

    #[test]
    fn ball_respects_radius() {
        let g = two_chains();
        let mut r = ball(&g, NodeId(0), 1, Direction::Forward);
        r.sort();
        assert_eq!(r, vec![NodeId(0), NodeId(1)]);
        let r = ball(&g, NodeId(0), 0, Direction::Forward);
        assert_eq!(r, vec![NodeId(0)]);
    }

    #[test]
    fn scc_on_dag_is_all_singletons() {
        let g = two_chains();
        let (comp, k) = strongly_connected_components(&g);
        assert_eq!(k, 5, "a DAG has one SCC per node");
        let mut sorted = comp.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
    }

    #[test]
    fn scc_detects_cycles() {
        // 0→1→2→0 cycle plus a tail 2→3
        let mut b = GraphBuilder::new(1);
        let _ = b.add_nodes(4);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (2, 3)] {
            b.add_edge(NodeId(u), NodeId(v), &[(0, 0.5)]).unwrap();
        }
        let g = b.build().unwrap();
        let (comp, k) = strongly_connected_components(&g);
        assert_eq!(k, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_ne!(comp[3], comp[0]);
    }

    #[test]
    fn scc_two_separate_cycles() {
        let mut b = GraphBuilder::new(1);
        let _ = b.add_nodes(5);
        for (u, v) in [(0, 1), (1, 0), (2, 3), (3, 4), (4, 2)] {
            b.add_edge(NodeId(u), NodeId(v), &[(0, 0.5)]).unwrap();
        }
        let g = b.build().unwrap();
        let (comp, k) = strongly_connected_components(&g);
        assert_eq!(k, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[2]);
    }

    #[test]
    fn wcc_counts_components() {
        let g = two_chains();
        let (comp, k) = weakly_connected_components(&g);
        assert_eq!(k, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
    }
}
