//! Small-delta edits on an immutable [`TopicGraph`].
//!
//! OCTOPUS's online story assumes the network keeps changing under it — new
//! follows appear, influence-probability estimates drift as the action log
//! grows (`octopus-data::learn::fit_warm`), users rename themselves. The
//! CSR graph is deliberately immutable, so a delta produces a *new* graph
//! by rebuilding through [`GraphBuilder`]; these helpers express the three
//! delta shapes the incremental offline-rebuild machinery distinguishes
//! (weight nudge / edge insert / rename) in one call each.
//!
//! All helpers preserve node ids. Edge ids are preserved **except** by
//! [`insert_edge`] / [`remove_edge`], which shift the ids of every edge at
//! or after the change position (ids are dense in forward-CSR order) — a
//! consumer holding per-edge state must treat shifted edges as changed,
//! and the per-stage artifact fingerprints do exactly that.

use crate::builder::GraphBuilder;
use crate::csr::TopicGraph;
use crate::error::GraphError;
use crate::ids::{EdgeId, NodeId};
use crate::Result;
use std::collections::BTreeSet;

/// Copy `g` into a fresh [`GraphBuilder`] (same nodes, names, and edges).
///
/// The round trip is exact: `builder_from(&g).build() == g` — pinned by the
/// `rebuild_is_identity` test — so callers can apply an edit on top of the
/// copy and get a graph that differs from `g` in exactly that edit.
pub fn builder_from(g: &TopicGraph) -> GraphBuilder {
    let mut b = GraphBuilder::new(g.num_topics()).with_capacity(g.node_count(), g.edge_count());
    for u in g.nodes() {
        b.add_node(g.name(u).unwrap_or(""));
    }
    for e in g.edges() {
        let (u, v) = g.edge_endpoints(e).expect("iterated edge is valid");
        let probs: Vec<(usize, f64)> = g
            .edge_topic_probs(e)
            .map(|(z, p)| (z.index(), p as f64))
            .collect();
        b.add_edge(u, v, &probs).expect("copied edge is valid");
    }
    b
}

/// Rebuild `g` with the topic probabilities of each edge in `edges`
/// perturbed: every sparse entry `p` becomes `p + delta` (reflected off the
/// `(0, 1]` boundary so the value always actually moves). Node and edge ids
/// are unchanged; only the probability table differs.
pub fn nudge_weights(g: &TopicGraph, edges: &[EdgeId], delta: f64) -> Result<TopicGraph> {
    let pairs: Vec<(EdgeId, f64)> = edges.iter().map(|&e| (e, delta)).collect();
    nudge_weights_multi(g, &pairs)
}

/// Like [`nudge_weights`], but each edge carries its own perturbation —
/// the shape [`apply_all`] folds a run of same-topic nudges into. All
/// pairs apply simultaneously to `g`; listing an edge more than once does
/// not compound (the last pair for an edge wins, and listing the same
/// `(edge, delta)` twice equals listing it once, matching the
/// `edges.contains` semantics [`nudge_weights`] always had).
pub fn nudge_weights_multi(g: &TopicGraph, pairs: &[(EdgeId, f64)]) -> Result<TopicGraph> {
    for &(e, _) in pairs {
        g.check_edge(e)?;
    }
    let mut per_edge: Vec<Option<f64>> = vec![None; g.edge_count()];
    for &(e, d) in pairs {
        per_edge[e.index()] = Some(d);
    }
    let mut b = GraphBuilder::new(g.num_topics()).with_capacity(g.node_count(), g.edge_count());
    for u in g.nodes() {
        b.add_node(g.name(u).unwrap_or(""));
    }
    for e in g.edges() {
        let (u, v) = g.edge_endpoints(e).expect("iterated edge is valid");
        let nudge = per_edge[e.index()];
        let probs: Vec<(usize, f64)> = g
            .edge_topic_probs(e)
            .map(|(z, p)| {
                let p = p as f64;
                let p = match nudge {
                    Some(delta) => {
                        if p + delta <= 1.0 && p + delta > 0.0 {
                            p + delta
                        } else {
                            p - delta
                        }
                    }
                    None => p,
                };
                (z.index(), p)
            })
            .collect();
        b.add_edge(u, v, &probs)?;
    }
    b.build()
}

/// Rebuild `g` with edge `edge`'s sparse probability row replaced
/// wholesale by `probs` — exact values, support changes included. This is
/// the delta shape a warm EM refit's weight diff produces: the learner
/// emits complete per-topic rows, which a [`nudge_weights`] (one additive
/// delta over every *existing* entry) cannot express. Node and edge ids
/// are unchanged.
pub fn set_weights(g: &TopicGraph, edge: EdgeId, probs: &[(usize, f64)]) -> Result<TopicGraph> {
    set_weights_multi(g, &[(edge, probs.to_vec())])
}

/// Like [`set_weights`] over several edges at once — the shape
/// [`apply_all`] folds a run of row replacements into. Listing an edge
/// more than once keeps the *last* row (a later replacement overwrites an
/// earlier one completely, exactly the sequential semantics).
pub fn set_weights_multi(
    g: &TopicGraph,
    rows: &[(EdgeId, Vec<(usize, f64)>)],
) -> Result<TopicGraph> {
    for (e, _) in rows {
        g.check_edge(*e)?;
    }
    let mut per_edge: Vec<Option<&[(usize, f64)]>> = vec![None; g.edge_count()];
    for (e, probs) in rows {
        per_edge[e.index()] = Some(probs);
    }
    let mut b = GraphBuilder::new(g.num_topics()).with_capacity(g.node_count(), g.edge_count());
    for u in g.nodes() {
        b.add_node(g.name(u).unwrap_or(""));
    }
    for e in g.edges() {
        let (u, v) = g.edge_endpoints(e).expect("iterated edge is valid");
        match per_edge[e.index()] {
            Some(row) => b.add_edge(u, v, row)?,
            None => {
                let probs: Vec<(usize, f64)> = g
                    .edge_topic_probs(e)
                    .map(|(z, p)| (z.index(), p as f64))
                    .collect();
                b.add_edge(u, v, &probs)?
            }
        };
    }
    b.build()
}

/// Rebuild `g` with a single additional edge `u → v`.
///
/// Fails like [`GraphBuilder::add_edge`] (bad endpoints, self loop, invalid
/// probability); if the edge already exists the probabilities merge by
/// per-topic max, exactly as the builder does for parallel edges.
pub fn insert_edge(
    g: &TopicGraph,
    u: NodeId,
    v: NodeId,
    probs: &[(usize, f64)],
) -> Result<TopicGraph> {
    let mut b = builder_from(g);
    b.add_edge(u, v, probs)?;
    b.build()
}

/// Rebuild `g` without edge `e`. Every edge with a larger id shifts down by
/// one (ids stay dense in CSR order).
pub fn remove_edge(g: &TopicGraph, victim: EdgeId) -> Result<TopicGraph> {
    g.check_edge(victim)?;
    let mut b = GraphBuilder::new(g.num_topics()).with_capacity(g.node_count(), g.edge_count());
    for u in g.nodes() {
        b.add_node(g.name(u).unwrap_or(""));
    }
    for e in g.edges() {
        if e == victim {
            continue;
        }
        let (u, v) = g.edge_endpoints(e).expect("iterated edge is valid");
        let probs: Vec<(usize, f64)> = g
            .edge_topic_probs(e)
            .map(|(z, p)| (z.index(), p as f64))
            .collect();
        b.add_edge(u, v, &probs)?;
    }
    b.build()
}

/// One graph mutation as a first-class value — the submission format of the
/// serving layer (`octopus_core::serve`), which queues deltas from writer
/// threads and coalesces a pending batch into a single rebuild.
///
/// Each variant corresponds to one of the free helpers in this module and
/// applies with identical semantics; [`GraphDelta::apply`] is the bridge.
/// Id caveat: [`EdgeId`]s inside a delta refer to the graph the delta is
/// applied *to* — in a coalesced batch ([`apply_all`]) that is the output
/// of the previous delta, so a batch containing `InsertEdge`/`RemoveEdge`
/// must account for the id shifts those cause.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphDelta {
    /// Perturb the topic probabilities of `edges` by `delta` (reflected off
    /// the `(0, 1]` boundary) — a synthetic drift shape.
    NudgeWeights {
        /// Edges whose probability rows move.
        edges: Vec<EdgeId>,
        /// Additive perturbation per sparse entry.
        delta: f64,
    },
    /// Replace one edge's whole sparse probability row — the shape a warm
    /// EM refit's weight diff produces: exact learned values, support
    /// changes included (a [`GraphDelta::NudgeWeights`] can only shift
    /// every existing entry by one shared additive delta). Ids unchanged.
    SetWeights {
        /// The edge whose row is replaced.
        edge: EdgeId,
        /// The complete new sparse `(topic index, probability)` row.
        probs: Vec<(usize, f64)>,
    },
    /// Add one influence edge `src → dst` — a new follow.
    InsertEdge {
        /// Influencing endpoint.
        src: NodeId,
        /// Influenced endpoint.
        dst: NodeId,
        /// Sparse `(topic index, probability)` rows of the new edge.
        probs: Vec<(usize, f64)>,
    },
    /// Drop one influence edge — an unfollow.
    RemoveEdge {
        /// The edge to drop (later ids shift down by one).
        edge: EdgeId,
    },
    /// Rename one user. Topology, weights, and all ids are unchanged.
    RenameNode {
        /// The user to rename.
        node: NodeId,
        /// The new display name.
        name: String,
    },
}

impl GraphDelta {
    /// Apply this mutation to `g`, producing a new graph (see the matching
    /// free helper for each variant's exact semantics and failure modes).
    pub fn apply(&self, g: &TopicGraph) -> Result<TopicGraph> {
        match self {
            GraphDelta::NudgeWeights { edges, delta } => nudge_weights(g, edges, *delta),
            GraphDelta::SetWeights { edge, probs } => set_weights(g, *edge, probs),
            GraphDelta::InsertEdge { src, dst, probs } => insert_edge(g, *src, *dst, probs),
            GraphDelta::RemoveEdge { edge } => remove_edge(g, *edge),
            GraphDelta::RenameNode { node, name } => rename_node(g, *node, name),
        }
    }

    /// The set of topics whose per-topic weight slice this delta can move
    /// when applied to `g` — the footprint the per-topic offline stages
    /// (cap/PB/MIS sub-sections of the OCTA container) key invalidation on.
    ///
    /// `Some(set)` is exact: every topic outside `set` keeps a bit-identical
    /// [`crate::codec::hash_weights_topic`]. A rename touches no topic; a
    /// nudge touches the topics with sparse entries on its edges; a row
    /// replacement touches only the topics whose entry actually *changes* —
    /// appears, vanishes, or moves at the stored `f32` precision
    /// (re-stating an entry bitwise leaves that topic's slice alone, which
    /// is what keeps a thresholded learner's dense rows topic-sparse); an
    /// insert touches the topics in its probability payload (a merge with
    /// an existing edge maxes per topic, so other topics still hold); a
    /// remove touches the victim's entries. `None` means the footprint
    /// cannot be determined (an edge id in the delta is not valid on `g`)
    /// and callers must assume **all** topics — never that the delta is
    /// cheap.
    pub fn touched_topics(&self, g: &TopicGraph) -> Option<BTreeSet<usize>> {
        match self {
            GraphDelta::RenameNode { .. } => Some(BTreeSet::new()),
            GraphDelta::NudgeWeights { edges, .. } => {
                let mut out = BTreeSet::new();
                for &e in edges {
                    if g.check_edge(e).is_err() {
                        return None;
                    }
                    for (z, _) in g.edge_topic_probs(e) {
                        out.insert(z.index());
                    }
                }
                Some(out)
            }
            GraphDelta::SetWeights { edge, probs } => {
                if g.check_edge(*edge).is_err() {
                    return None;
                }
                let old: std::collections::BTreeMap<usize, f32> = g
                    .edge_topic_probs(*edge)
                    .map(|(z, p)| (z.index(), p))
                    .collect();
                let mut out = BTreeSet::new();
                for &(z, p) in probs {
                    match old.get(&z) {
                        Some(op) if op.to_bits() == (p as f32).to_bits() => {}
                        _ => {
                            out.insert(z);
                        }
                    }
                }
                for z in old.keys() {
                    if !probs.iter().any(|&(nz, _)| nz == *z) {
                        out.insert(*z);
                    }
                }
                Some(out)
            }
            GraphDelta::InsertEdge { probs, .. } => Some(probs.iter().map(|&(z, _)| z).collect()),
            GraphDelta::RemoveEdge { edge } => {
                if g.check_edge(*edge).is_err() {
                    return None;
                }
                Some(g.edge_topic_probs(*edge).map(|(z, _)| z.index()).collect())
            }
        }
    }
}

/// Apply `deltas` in order, each on the output of the previous one —
/// exactly what a coalesced serving batch does. Applying a batch in one
/// call is equivalent, graph-for-graph, to applying its deltas one at a
/// time (pinned by `coalesced_batch_matches_sequential_application`); an
/// empty batch returns a clone of `g`. The first failing delta aborts the
/// whole batch.
///
/// Each delta rebuilds the graph through a [`GraphBuilder`] pass, so a
/// naive fold is `O(k·|G|)` for a `k`-delta batch. The dominant batch
/// shapes under serving churn fold into a **single** rebuild instead:
///
/// * a run of weight nudges with the same perturbation over *distinct*
///   edges (the stream a warm EM refit emits), and
/// * a run of weight nudges over distinct edges whose sparse entries all
///   sit on the **same single topic** — perturbations may differ per
///   nudge; the fold goes through [`nudge_weights_multi`] and keeps the
///   run's topic footprint (`touched_topics`) at exactly that one topic,
///   so a topic-confined refit stream coalesces without widening the
///   per-topic cap/PB/MIS invalidation it triggers.
///
/// Both folds are equivalent to sequential application because nudges are
/// simultaneous over disjoint edges and leave every id stable. Runs
/// touching an edge twice (a double nudge must compound, and reflection
/// is not additive) are *not* merged and keep sequential semantics, as
/// are mixed-perturbation runs spanning more than one topic.
///
/// A run of [`GraphDelta::SetWeights`] row replacements (the ingestion
/// loop's learned-weight stream) *always* folds into one
/// [`set_weights_multi`] rebuild: replacements are absolute, so even a
/// repeated edge keeps sequential semantics (the last row wins).
pub fn apply_all(g: &TopicGraph, deltas: &[GraphDelta]) -> Result<TopicGraph> {
    let mut current: Option<TopicGraph> = None;
    let mut i = 0;
    while i < deltas.len() {
        let base = current.as_ref().unwrap_or(g);
        let mut end = i + 1;
        let next = if let GraphDelta::NudgeWeights { edges, delta } = &deltas[i] {
            let mut pairs: Vec<(EdgeId, f64)> = edges.iter().map(|&e| (e, *delta)).collect();
            let mut seen = edges.clone();
            // Footprints are read off `base`: later nudges in the run see
            // intermediate graphs, but nudging never adds or drops sparse
            // entries (probabilities stay in (0, 1]), so the footprint of
            // every edge is the same on `base` and on the intermediates.
            let run_topic = single_topic_footprint(base, edges);
            while let Some(GraphDelta::NudgeWeights {
                edges: more,
                delta: d,
            }) = deltas.get(end)
            {
                if more.iter().any(|e| seen.contains(e)) {
                    break;
                }
                let same_delta = d.to_bits() == delta.to_bits();
                let same_topic =
                    run_topic.is_some() && single_topic_footprint(base, more) == run_topic;
                if !same_delta && !same_topic {
                    break;
                }
                pairs.extend(more.iter().map(|&e| (e, *d)));
                seen.extend_from_slice(more);
                end += 1;
            }
            nudge_weights_multi(base, &pairs)?
        } else if let GraphDelta::SetWeights { edge, probs } = &deltas[i] {
            let mut rows: Vec<(EdgeId, Vec<(usize, f64)>)> = vec![(*edge, probs.clone())];
            while let Some(GraphDelta::SetWeights {
                edge: next_edge,
                probs: next_probs,
            }) = deltas.get(end)
            {
                // later rows overwrite earlier ones per edge inside
                // set_weights_multi — exactly the sequential semantics
                rows.push((*next_edge, next_probs.clone()));
                end += 1;
            }
            set_weights_multi(base, &rows)?
        } else {
            deltas[i].apply(base)?
        };
        current = Some(next);
        i = end;
    }
    Ok(current.unwrap_or_else(|| g.clone()))
}

/// `Some(z)` iff every sparse probability entry across `edges` sits on the
/// single topic `z` (and there is at least one entry). `None` for an empty
/// or multi-topic footprint, or for any invalid edge id — invalid ids
/// refuse the fold here and surface their error from the nudge itself.
fn single_topic_footprint(g: &TopicGraph, edges: &[EdgeId]) -> Option<usize> {
    let mut topic: Option<usize> = None;
    for &e in edges {
        g.check_edge(e).ok()?;
        for (z, _) in g.edge_topic_probs(e) {
            match topic {
                None => topic = Some(z.index()),
                Some(t) if t == z.index() => {}
                Some(_) => return None,
            }
        }
    }
    topic
}

/// Rebuild `g` with node `u` renamed to `name`. Topology, weights, and all
/// ids are unchanged; only the name slice differs.
pub fn rename_node(g: &TopicGraph, target: NodeId, name: &str) -> Result<TopicGraph> {
    g.check_node(target)?;
    if !name.is_empty()
        && g.node_by_name(name)
            .is_some_and(|existing| existing != target)
    {
        return Err(GraphError::DuplicateName(name.to_string()));
    }
    let mut b = GraphBuilder::new(g.num_topics()).with_capacity(g.node_count(), g.edge_count());
    for u in g.nodes() {
        if u == target {
            b.add_node(name);
        } else {
            b.add_node(g.name(u).unwrap_or(""));
        }
    }
    for e in g.edges() {
        let (u, v) = g.edge_endpoints(e).expect("iterated edge is valid");
        let probs: Vec<(usize, f64)> = g
            .edge_topic_probs(e)
            .map(|(z, p)| (z.index(), p as f64))
            .collect();
        b.add_edge(u, v, &probs)?;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec;
    use crate::ids::TopicId;

    fn fixture() -> TopicGraph {
        let mut b = GraphBuilder::new(2);
        b.add_node("ada");
        b.add_node("grace");
        b.add_node("edsger");
        b.add_node("barbara");
        b.add_edge(NodeId(0), NodeId(1), &[(0, 0.5), (1, 0.25)])
            .unwrap();
        b.add_edge(NodeId(1), NodeId(2), &[(1, 0.75)]).unwrap();
        b.add_edge(NodeId(2), NodeId(0), &[(0, 0.125)]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn rebuild_is_identity() {
        let g = fixture();
        assert_eq!(builder_from(&g).build().unwrap(), g);
        // anonymous graphs too
        let mut b = GraphBuilder::new(1);
        let _ = b.add_nodes(3);
        b.add_edge(NodeId(0), NodeId(2), &[(0, 0.5)]).unwrap();
        let anon = b.build().unwrap();
        assert_eq!(builder_from(&anon).build().unwrap(), anon);
    }

    #[test]
    fn nudge_changes_only_the_weight_slice() {
        let g = fixture();
        let e = g.find_edge(NodeId(1), NodeId(2)).unwrap();
        let nudged = nudge_weights(&g, &[e], 0.1).unwrap();
        assert_eq!(codec::hash_topology(&g), codec::hash_topology(&nudged));
        assert_eq!(codec::hash_names(&g), codec::hash_names(&nudged));
        assert_ne!(codec::hash_weights(&g), codec::hash_weights(&nudged));
        assert!((nudged.edge_prob_topic(e, TopicId(1)) - 0.85).abs() < 1e-6);
        // untouched edges keep bit-identical probabilities
        let other = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(
            g.edge_prob_topic(other, TopicId(0)),
            nudged.edge_prob_topic(other, TopicId(0))
        );
    }

    #[test]
    fn nudge_reflects_at_the_boundary() {
        let mut b = GraphBuilder::new(1);
        let _ = b.add_nodes(2);
        b.add_edge(NodeId(0), NodeId(1), &[(0, 0.98)]).unwrap();
        let g = b.build().unwrap();
        let e = EdgeId(0);
        let nudged = nudge_weights(&g, &[e], 0.1).unwrap();
        let p = nudged.edge_prob_topic(e, TopicId(0));
        assert!((p - 0.88).abs() < 1e-6, "0.98 + 0.1 reflects to 0.88");
        assert!(nudge_weights(&g, &[EdgeId(7)], 0.1).is_err());
    }

    #[test]
    fn insert_and_remove_shift_ids() {
        let g = fixture();
        let bigger = insert_edge(&g, NodeId(0), NodeId(3), &[(1, 0.4)]).unwrap();
        assert_eq!(bigger.edge_count(), g.edge_count() + 1);
        // inserted edge sorts between (0,1) and (1,2): later ids shift up
        assert_eq!(
            bigger.edge_endpoints(EdgeId(1)).unwrap(),
            (NodeId(0), NodeId(3))
        );
        assert_eq!(
            bigger.edge_endpoints(EdgeId(2)).unwrap(),
            (NodeId(1), NodeId(2))
        );
        let back = remove_edge(&bigger, EdgeId(1)).unwrap();
        assert_eq!(back, g, "insert then remove restores the original");
        assert!(insert_edge(&g, NodeId(0), NodeId(0), &[(0, 0.5)]).is_err());
    }

    #[test]
    fn graph_delta_variants_match_the_free_helpers() {
        let g = fixture();
        let e = g.find_edge(NodeId(1), NodeId(2)).unwrap();
        assert_eq!(
            GraphDelta::NudgeWeights {
                edges: vec![e],
                delta: 0.1
            }
            .apply(&g)
            .unwrap(),
            nudge_weights(&g, &[e], 0.1).unwrap()
        );
        assert_eq!(
            GraphDelta::InsertEdge {
                src: NodeId(0),
                dst: NodeId(3),
                probs: vec![(1, 0.4)]
            }
            .apply(&g)
            .unwrap(),
            insert_edge(&g, NodeId(0), NodeId(3), &[(1, 0.4)]).unwrap()
        );
        assert_eq!(
            GraphDelta::RemoveEdge { edge: e }.apply(&g).unwrap(),
            remove_edge(&g, e).unwrap()
        );
        assert_eq!(
            GraphDelta::RenameNode {
                node: NodeId(1),
                name: "grace hopper".into()
            }
            .apply(&g)
            .unwrap(),
            rename_node(&g, NodeId(1), "grace hopper").unwrap()
        );
        // failures propagate
        assert!(GraphDelta::RemoveEdge { edge: EdgeId(99) }
            .apply(&g)
            .is_err());
    }

    #[test]
    fn coalesced_batch_matches_sequential_application() {
        let g = fixture();
        let batch = vec![
            GraphDelta::NudgeWeights {
                edges: vec![EdgeId(0)],
                delta: 0.05,
            },
            GraphDelta::RenameNode {
                node: NodeId(2),
                name: "edsger dijkstra".into(),
            },
            GraphDelta::InsertEdge {
                src: NodeId(3),
                dst: NodeId(0),
                probs: vec![(0, 0.2)],
            },
        ];
        let coalesced = apply_all(&g, &batch).unwrap();
        let mut sequential = g.clone();
        for d in &batch {
            sequential = d.apply(&sequential).unwrap();
        }
        assert_eq!(coalesced, sequential);
        // empty batch is the identity
        assert_eq!(apply_all(&g, &[]).unwrap(), g);
        // a failing delta mid-batch aborts the whole batch
        let bad = vec![
            GraphDelta::RenameNode {
                node: NodeId(0),
                name: "renamed".into(),
            },
            GraphDelta::RemoveEdge { edge: EdgeId(99) },
        ];
        assert!(apply_all(&g, &bad).is_err());
    }

    #[test]
    fn nudge_runs_fold_without_changing_semantics() {
        let g = fixture();
        let nudge = |edges: Vec<u32>, delta: f64| GraphDelta::NudgeWeights {
            edges: edges.into_iter().map(EdgeId).collect(),
            delta,
        };
        let sequential = |batch: &[GraphDelta]| {
            let mut cur = g.clone();
            for d in batch {
                cur = d.apply(&cur).unwrap();
            }
            cur
        };
        // disjoint same-δ run (the serving-churn shape): folds into one
        // rebuild, same graph as one-at-a-time
        let run = vec![
            nudge(vec![0], 0.05),
            nudge(vec![1], 0.05),
            nudge(vec![2], 0.05),
        ];
        assert_eq!(apply_all(&g, &run).unwrap(), sequential(&run));
        // repeated edge: the second nudge must compound, not be absorbed
        let repeat = vec![nudge(vec![0], 0.05), nudge(vec![0], 0.05)];
        assert_eq!(apply_all(&g, &repeat).unwrap(), sequential(&repeat));
        assert_ne!(
            apply_all(&g, &repeat).unwrap(),
            apply_all(&g, &[nudge(vec![0], 0.05)]).unwrap()
        );
        // mixed perturbations: not merged, still equivalent
        let mixed = vec![nudge(vec![0], 0.05), nudge(vec![1], 0.07)];
        assert_eq!(apply_all(&g, &mixed).unwrap(), sequential(&mixed));
        // a run interrupted by another variant stays sequential around it
        let interrupted = vec![
            nudge(vec![0], 0.05),
            GraphDelta::RenameNode {
                node: NodeId(3),
                name: "barbara liskov".into(),
            },
            nudge(vec![1], 0.05),
        ];
        assert_eq!(
            apply_all(&g, &interrupted).unwrap(),
            sequential(&interrupted)
        );
        // an invalid edge anywhere in a foldable run still aborts
        assert!(apply_all(&g, &[nudge(vec![0], 0.05), nudge(vec![99], 0.05)]).is_err());
    }

    /// Two topic-1-only edges plus one topic-0-only edge, for exercising
    /// the same-topic mixed-δ fold.
    fn topic_confined_fixture() -> TopicGraph {
        let mut b = GraphBuilder::new(2);
        let _ = b.add_nodes(4);
        b.add_edge(NodeId(0), NodeId(1), &[(1, 0.5)]).unwrap();
        b.add_edge(NodeId(1), NodeId(2), &[(1, 0.25)]).unwrap();
        b.add_edge(NodeId(2), NodeId(3), &[(0, 0.75)]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn same_topic_mixed_delta_runs_fold_without_changing_semantics() {
        let g = topic_confined_fixture();
        let nudge = |edges: Vec<u32>, delta: f64| GraphDelta::NudgeWeights {
            edges: edges.into_iter().map(EdgeId).collect(),
            delta,
        };
        let sequential = |batch: &[GraphDelta]| {
            let mut cur = g.clone();
            for d in batch {
                cur = d.apply(&cur).unwrap();
            }
            cur
        };
        // disjoint edges, different δ, same single topic: folds into one
        // multi-δ rebuild, same graph as one-at-a-time — and the fold
        // keeps the run's topic footprint at exactly {1}
        let run = vec![nudge(vec![0], 0.05), nudge(vec![1], 0.07)];
        let folded = apply_all(&g, &run).unwrap();
        assert_eq!(folded, sequential(&run));
        assert_eq!(
            codec::hash_weights_topic(&g, 0),
            codec::hash_weights_topic(&folded, 0),
            "topic-1-confined fold must leave topic 0's weight slice alone"
        );
        assert_ne!(
            codec::hash_weights_topic(&g, 1),
            codec::hash_weights_topic(&folded, 1)
        );
        // different δ across *different* topics: not merged, still equivalent
        let cross = vec![nudge(vec![0], 0.05), nudge(vec![2], 0.07)];
        assert_eq!(apply_all(&g, &cross).unwrap(), sequential(&cross));
        // repeated edge inside a same-topic run must still compound
        let repeat = vec![nudge(vec![0], 0.05), nudge(vec![0], 0.07)];
        assert_eq!(apply_all(&g, &repeat).unwrap(), sequential(&repeat));
    }

    #[test]
    fn multi_nudge_matches_sequential_single_nudges() {
        let g = fixture();
        // edge 1's topic-1 entry (0.75 + 0.3 > 1) exercises the boundary
        // reflection; the others move plainly
        let pairs = vec![(EdgeId(0), 0.05), (EdgeId(1), 0.3), (EdgeId(2), 0.09)];
        let multi = nudge_weights_multi(&g, &pairs).unwrap();
        let mut seq = g.clone();
        for &(e, d) in &pairs {
            seq = nudge_weights(&seq, &[e], d).unwrap();
        }
        assert_eq!(multi, seq, "disjoint per-edge deltas apply simultaneously");
        // uniform pairs reproduce nudge_weights exactly
        assert_eq!(
            nudge_weights_multi(&g, &[(EdgeId(0), 0.05), (EdgeId(1), 0.05)]).unwrap(),
            nudge_weights(&g, &[EdgeId(0), EdgeId(1)], 0.05).unwrap()
        );
        // a repeated edge nudges once (last pair wins), like the
        // `contains`-based membership always did for duplicate ids
        assert_eq!(
            nudge_weights_multi(&g, &[(EdgeId(0), 0.05), (EdgeId(0), 0.05)]).unwrap(),
            nudge_weights(&g, &[EdgeId(0)], 0.05).unwrap()
        );
        assert!(nudge_weights_multi(&g, &[(EdgeId(99), 0.05)]).is_err());
    }

    #[test]
    fn touched_topics_matches_the_per_topic_weight_hashes() {
        let g = fixture();
        let set = |zs: &[usize]| zs.iter().copied().collect::<BTreeSet<usize>>();
        // rename: no topic moves
        let rename = GraphDelta::RenameNode {
            node: NodeId(1),
            name: "grace hopper".into(),
        };
        assert_eq!(rename.touched_topics(&g), Some(set(&[])));
        // nudge: union of sparse entries on the listed edges
        let nudge0 = GraphDelta::NudgeWeights {
            edges: vec![EdgeId(0)],
            delta: 0.05,
        };
        assert_eq!(nudge0.touched_topics(&g), Some(set(&[0, 1])));
        let nudge1 = GraphDelta::NudgeWeights {
            edges: vec![EdgeId(1)],
            delta: 0.05,
        };
        assert_eq!(nudge1.touched_topics(&g), Some(set(&[1])));
        // the footprint is exact: topics outside it keep their hash,
        // topics inside it move
        let nudged = nudge1.apply(&g).unwrap();
        assert_eq!(
            codec::hash_weights_topic(&g, 0),
            codec::hash_weights_topic(&nudged, 0)
        );
        assert_ne!(
            codec::hash_weights_topic(&g, 1),
            codec::hash_weights_topic(&nudged, 1)
        );
        // insert: the topics in the payload
        let insert = GraphDelta::InsertEdge {
            src: NodeId(0),
            dst: NodeId(3),
            probs: vec![(1, 0.4)],
        };
        assert_eq!(insert.touched_topics(&g), Some(set(&[1])));
        let inserted = insert.apply(&g).unwrap();
        assert_eq!(
            codec::hash_weights_topic(&g, 0),
            codec::hash_weights_topic(&inserted, 0)
        );
        // remove: the victim's sparse entries
        let remove = GraphDelta::RemoveEdge { edge: EdgeId(2) };
        assert_eq!(remove.touched_topics(&g), Some(set(&[0])));
        // invalid edge ids: footprint unknown → None (assume all topics)
        let bad_nudge = GraphDelta::NudgeWeights {
            edges: vec![EdgeId(99)],
            delta: 0.05,
        };
        assert_eq!(bad_nudge.touched_topics(&g), None);
        assert_eq!(
            GraphDelta::RemoveEdge { edge: EdgeId(99) }.touched_topics(&g),
            None
        );
    }

    #[test]
    fn set_weights_replaces_the_whole_row() {
        let g = fixture();
        let e = g.find_edge(NodeId(0), NodeId(1)).unwrap(); // row {0: 0.5, 1: 0.25}
                                                            // support change: topic 1 vanishes, topic 0 moves
        let set = set_weights(&g, e, &[(0, 0.9)]).unwrap();
        assert_eq!(codec::hash_topology(&g), codec::hash_topology(&set));
        assert_eq!(codec::hash_names(&g), codec::hash_names(&set));
        assert!((set.edge_prob_topic(e, TopicId(0)) - 0.9).abs() < 1e-6);
        assert_eq!(set.edge_prob_topic(e, TopicId(1)), 0.0, "entry dropped");
        // untouched edges keep bit-identical probabilities
        let other = g.find_edge(NodeId(1), NodeId(2)).unwrap();
        assert_eq!(
            g.edge_prob_topic(other, TopicId(1)),
            set.edge_prob_topic(other, TopicId(1))
        );
        // the delta variant matches the free helper
        assert_eq!(
            GraphDelta::SetWeights {
                edge: e,
                probs: vec![(0, 0.9)]
            }
            .apply(&g)
            .unwrap(),
            set
        );
        // setting a row to itself is the identity
        let row: Vec<(usize, f64)> = g
            .edge_topic_probs(e)
            .map(|(z, p)| (z.index(), p as f64))
            .collect();
        assert_eq!(set_weights(&g, e, &row).unwrap(), g);
        // invalid ids and invalid probabilities are rejected
        assert!(set_weights(&g, EdgeId(99), &[(0, 0.5)]).is_err());
        assert!(set_weights(&g, e, &[(0, 1.5)]).is_err());
    }

    #[test]
    fn set_weights_touched_topics_is_the_changed_entries() {
        let g = fixture();
        let set = |zs: &[usize]| zs.iter().copied().collect::<BTreeSet<usize>>();
        let e = g.find_edge(NodeId(1), NodeId(2)).unwrap(); // row {1: 0.75}
        let d = GraphDelta::SetWeights {
            edge: e,
            probs: vec![(0, 0.3)],
        };
        // old entry on topic 1 vanishes, a new one appears on topic 0
        assert_eq!(d.touched_topics(&g), Some(set(&[0, 1])));
        let applied = d.apply(&g).unwrap();
        assert_ne!(
            codec::hash_weights_topic(&g, 0),
            codec::hash_weights_topic(&applied, 0)
        );
        assert_ne!(
            codec::hash_weights_topic(&g, 1),
            codec::hash_weights_topic(&applied, 1)
        );
        // a same-topic replacement keeps the footprint confined
        let confined = GraphDelta::SetWeights {
            edge: e,
            probs: vec![(1, 0.6)],
        };
        assert_eq!(confined.touched_topics(&g), Some(set(&[1])));
        let applied = confined.apply(&g).unwrap();
        assert_eq!(
            codec::hash_weights_topic(&g, 0),
            codec::hash_weights_topic(&applied, 0),
            "topic-1-confined replacement must leave topic 0's slice alone"
        );
        // a dense row that re-states entries bitwise only touches the
        // entries that move — this is what keeps a thresholded learner's
        // row replacements topic-sparse for the ingest batcher
        let e01 = g.find_edge(NodeId(0), NodeId(1)).unwrap(); // row {0: 0.5, 1: 0.25}
        let partial = GraphDelta::SetWeights {
            edge: e01,
            probs: vec![(0, 0.5), (1, 0.9)],
        };
        assert_eq!(partial.touched_topics(&g), Some(set(&[1])));
        let applied = partial.apply(&g).unwrap();
        assert_eq!(
            codec::hash_weights_topic(&g, 0),
            codec::hash_weights_topic(&applied, 0),
            "the re-stated topic-0 entry is bitwise unchanged"
        );
        assert_ne!(
            codec::hash_weights_topic(&g, 1),
            codec::hash_weights_topic(&applied, 1)
        );
        // re-stating the whole row bitwise touches nothing at all
        let row: Vec<(usize, f64)> = g
            .edge_topic_probs(e01)
            .map(|(z, p)| (z.index(), p as f64))
            .collect();
        let identity = GraphDelta::SetWeights {
            edge: e01,
            probs: row,
        };
        assert_eq!(identity.touched_topics(&g), Some(set(&[])));
        // unknown edge: footprint unknown
        assert_eq!(
            GraphDelta::SetWeights {
                edge: EdgeId(99),
                probs: vec![(0, 0.5)]
            }
            .touched_topics(&g),
            None
        );
    }

    #[test]
    fn set_weights_runs_fold_without_changing_semantics() {
        let g = fixture();
        let set = |edge: u32, probs: Vec<(usize, f64)>| GraphDelta::SetWeights {
            edge: EdgeId(edge),
            probs,
        };
        let sequential = |batch: &[GraphDelta]| {
            let mut cur = g.clone();
            for d in batch {
                cur = d.apply(&cur).unwrap();
            }
            cur
        };
        // disjoint edges: one rebuild, same graph as one-at-a-time
        let run = vec![
            set(0, vec![(0, 0.6), (1, 0.3)]),
            set(1, vec![(0, 0.2)]),
            set(2, vec![(1, 0.45)]),
        ];
        assert_eq!(apply_all(&g, &run).unwrap(), sequential(&run));
        // repeated edge: the last row wins, exactly like sequential
        let repeat = vec![set(0, vec![(0, 0.6)]), set(0, vec![(1, 0.8)])];
        assert_eq!(apply_all(&g, &repeat).unwrap(), sequential(&repeat));
        assert_eq!(
            apply_all(&g, &repeat).unwrap(),
            apply_all(&g, &[set(0, vec![(1, 0.8)])]).unwrap()
        );
        // a run interrupted by another variant stays sequential around it
        let interrupted = vec![
            set(0, vec![(0, 0.6)]),
            GraphDelta::RenameNode {
                node: NodeId(3),
                name: "barbara liskov".into(),
            },
            set(1, vec![(1, 0.35)]),
        ];
        assert_eq!(
            apply_all(&g, &interrupted).unwrap(),
            sequential(&interrupted)
        );
        // an invalid edge anywhere in a foldable run still aborts
        assert!(apply_all(&g, &[set(0, vec![(0, 0.6)]), set(99, vec![(0, 0.5)])]).is_err());
    }

    #[test]
    fn rename_preserves_everything_else() {
        let g = fixture();
        let renamed = rename_node(&g, NodeId(1), "grace hopper").unwrap();
        assert_eq!(codec::hash_topology(&g), codec::hash_topology(&renamed));
        assert_eq!(codec::hash_weights(&g), codec::hash_weights(&renamed));
        assert_ne!(codec::hash_names(&g), codec::hash_names(&renamed));
        assert_eq!(renamed.node_by_name("grace hopper"), Some(NodeId(1)));
        assert_eq!(renamed.node_by_name("grace"), None);
        // renaming onto an existing other node is rejected
        assert!(rename_node(&g, NodeId(1), "ada").is_err());
        // renaming a node onto its own name is a no-op, not an error
        assert_eq!(rename_node(&g, NodeId(1), "grace").unwrap(), g);
    }
}
