//! Small-delta edits on an immutable [`TopicGraph`].
//!
//! OCTOPUS's online story assumes the network keeps changing under it — new
//! follows appear, influence-probability estimates drift as the action log
//! grows (`octopus-data::learn::fit_warm`), users rename themselves. The
//! CSR graph is deliberately immutable, so a delta produces a *new* graph
//! by rebuilding through [`GraphBuilder`]; these helpers express the three
//! delta shapes the incremental offline-rebuild machinery distinguishes
//! (weight nudge / edge insert / rename) in one call each.
//!
//! All helpers preserve node ids. Edge ids are preserved **except** by
//! [`insert_edge`] / [`remove_edge`], which shift the ids of every edge at
//! or after the change position (ids are dense in forward-CSR order) — a
//! consumer holding per-edge state must treat shifted edges as changed,
//! and the per-stage artifact fingerprints do exactly that.

use crate::builder::GraphBuilder;
use crate::csr::TopicGraph;
use crate::error::GraphError;
use crate::ids::{EdgeId, NodeId};
use crate::Result;

/// Copy `g` into a fresh [`GraphBuilder`] (same nodes, names, and edges).
///
/// The round trip is exact: `builder_from(&g).build() == g` — pinned by the
/// `rebuild_is_identity` test — so callers can apply an edit on top of the
/// copy and get a graph that differs from `g` in exactly that edit.
pub fn builder_from(g: &TopicGraph) -> GraphBuilder {
    let mut b = GraphBuilder::new(g.num_topics()).with_capacity(g.node_count(), g.edge_count());
    for u in g.nodes() {
        b.add_node(g.name(u).unwrap_or(""));
    }
    for e in g.edges() {
        let (u, v) = g.edge_endpoints(e).expect("iterated edge is valid");
        let probs: Vec<(usize, f64)> = g
            .edge_topic_probs(e)
            .map(|(z, p)| (z.index(), p as f64))
            .collect();
        b.add_edge(u, v, &probs).expect("copied edge is valid");
    }
    b
}

/// Rebuild `g` with the topic probabilities of each edge in `edges`
/// perturbed: every sparse entry `p` becomes `p + delta` (reflected off the
/// `(0, 1]` boundary so the value always actually moves). Node and edge ids
/// are unchanged; only the probability table differs.
pub fn nudge_weights(g: &TopicGraph, edges: &[EdgeId], delta: f64) -> Result<TopicGraph> {
    for &e in edges {
        g.check_edge(e)?;
    }
    let mut b = GraphBuilder::new(g.num_topics()).with_capacity(g.node_count(), g.edge_count());
    for u in g.nodes() {
        b.add_node(g.name(u).unwrap_or(""));
    }
    for e in g.edges() {
        let (u, v) = g.edge_endpoints(e).expect("iterated edge is valid");
        let nudge = edges.contains(&e);
        let probs: Vec<(usize, f64)> = g
            .edge_topic_probs(e)
            .map(|(z, p)| {
                let p = p as f64;
                let p = if nudge {
                    if p + delta <= 1.0 && p + delta > 0.0 {
                        p + delta
                    } else {
                        p - delta
                    }
                } else {
                    p
                };
                (z.index(), p)
            })
            .collect();
        b.add_edge(u, v, &probs)?;
    }
    b.build()
}

/// Rebuild `g` with a single additional edge `u → v`.
///
/// Fails like [`GraphBuilder::add_edge`] (bad endpoints, self loop, invalid
/// probability); if the edge already exists the probabilities merge by
/// per-topic max, exactly as the builder does for parallel edges.
pub fn insert_edge(
    g: &TopicGraph,
    u: NodeId,
    v: NodeId,
    probs: &[(usize, f64)],
) -> Result<TopicGraph> {
    let mut b = builder_from(g);
    b.add_edge(u, v, probs)?;
    b.build()
}

/// Rebuild `g` without edge `e`. Every edge with a larger id shifts down by
/// one (ids stay dense in CSR order).
pub fn remove_edge(g: &TopicGraph, victim: EdgeId) -> Result<TopicGraph> {
    g.check_edge(victim)?;
    let mut b = GraphBuilder::new(g.num_topics()).with_capacity(g.node_count(), g.edge_count());
    for u in g.nodes() {
        b.add_node(g.name(u).unwrap_or(""));
    }
    for e in g.edges() {
        if e == victim {
            continue;
        }
        let (u, v) = g.edge_endpoints(e).expect("iterated edge is valid");
        let probs: Vec<(usize, f64)> = g
            .edge_topic_probs(e)
            .map(|(z, p)| (z.index(), p as f64))
            .collect();
        b.add_edge(u, v, &probs)?;
    }
    b.build()
}

/// One graph mutation as a first-class value — the submission format of the
/// serving layer (`octopus_core::serve`), which queues deltas from writer
/// threads and coalesces a pending batch into a single rebuild.
///
/// Each variant corresponds to one of the free helpers in this module and
/// applies with identical semantics; [`GraphDelta::apply`] is the bridge.
/// Id caveat: [`EdgeId`]s inside a delta refer to the graph the delta is
/// applied *to* — in a coalesced batch ([`apply_all`]) that is the output
/// of the previous delta, so a batch containing `InsertEdge`/`RemoveEdge`
/// must account for the id shifts those cause.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphDelta {
    /// Perturb the topic probabilities of `edges` by `delta` (reflected off
    /// the `(0, 1]` boundary) — the shape a warm EM refit produces.
    NudgeWeights {
        /// Edges whose probability rows move.
        edges: Vec<EdgeId>,
        /// Additive perturbation per sparse entry.
        delta: f64,
    },
    /// Add one influence edge `src → dst` — a new follow.
    InsertEdge {
        /// Influencing endpoint.
        src: NodeId,
        /// Influenced endpoint.
        dst: NodeId,
        /// Sparse `(topic index, probability)` rows of the new edge.
        probs: Vec<(usize, f64)>,
    },
    /// Drop one influence edge — an unfollow.
    RemoveEdge {
        /// The edge to drop (later ids shift down by one).
        edge: EdgeId,
    },
    /// Rename one user. Topology, weights, and all ids are unchanged.
    RenameNode {
        /// The user to rename.
        node: NodeId,
        /// The new display name.
        name: String,
    },
}

impl GraphDelta {
    /// Apply this mutation to `g`, producing a new graph (see the matching
    /// free helper for each variant's exact semantics and failure modes).
    pub fn apply(&self, g: &TopicGraph) -> Result<TopicGraph> {
        match self {
            GraphDelta::NudgeWeights { edges, delta } => nudge_weights(g, edges, *delta),
            GraphDelta::InsertEdge { src, dst, probs } => insert_edge(g, *src, *dst, probs),
            GraphDelta::RemoveEdge { edge } => remove_edge(g, *edge),
            GraphDelta::RenameNode { node, name } => rename_node(g, *node, name),
        }
    }
}

/// Apply `deltas` in order, each on the output of the previous one —
/// exactly what a coalesced serving batch does. Applying a batch in one
/// call is equivalent, graph-for-graph, to applying its deltas one at a
/// time (pinned by `coalesced_batch_matches_sequential_application`); an
/// empty batch returns a clone of `g`. The first failing delta aborts the
/// whole batch.
///
/// Each delta rebuilds the graph through a [`GraphBuilder`] pass, so a
/// naive fold is `O(k·|G|)` for a `k`-delta batch. The dominant batch
/// shape under serving churn — a run of weight nudges with the same
/// perturbation over *distinct* edges (the stream a warm EM refit emits)
/// — folds into a **single** rebuild instead: equivalent because
/// [`nudge_weights`] is simultaneous over its edge list and nudges leave
/// every id stable. Runs touching an edge twice (a double nudge must
/// compound, and reflection is not additive) or changing the
/// perturbation are *not* merged and keep sequential semantics.
pub fn apply_all(g: &TopicGraph, deltas: &[GraphDelta]) -> Result<TopicGraph> {
    let mut current: Option<TopicGraph> = None;
    let mut i = 0;
    while i < deltas.len() {
        let base = current.as_ref().unwrap_or(g);
        let mut end = i + 1;
        let next = if let GraphDelta::NudgeWeights { edges, delta } = &deltas[i] {
            let mut merged = edges.clone();
            while let Some(GraphDelta::NudgeWeights {
                edges: more,
                delta: d,
            }) = deltas.get(end)
            {
                if d.to_bits() != delta.to_bits() || more.iter().any(|e| merged.contains(e)) {
                    break;
                }
                merged.extend_from_slice(more);
                end += 1;
            }
            nudge_weights(base, &merged, *delta)?
        } else {
            deltas[i].apply(base)?
        };
        current = Some(next);
        i = end;
    }
    Ok(current.unwrap_or_else(|| g.clone()))
}

/// Rebuild `g` with node `u` renamed to `name`. Topology, weights, and all
/// ids are unchanged; only the name slice differs.
pub fn rename_node(g: &TopicGraph, target: NodeId, name: &str) -> Result<TopicGraph> {
    g.check_node(target)?;
    if !name.is_empty()
        && g.node_by_name(name)
            .is_some_and(|existing| existing != target)
    {
        return Err(GraphError::DuplicateName(name.to_string()));
    }
    let mut b = GraphBuilder::new(g.num_topics()).with_capacity(g.node_count(), g.edge_count());
    for u in g.nodes() {
        if u == target {
            b.add_node(name);
        } else {
            b.add_node(g.name(u).unwrap_or(""));
        }
    }
    for e in g.edges() {
        let (u, v) = g.edge_endpoints(e).expect("iterated edge is valid");
        let probs: Vec<(usize, f64)> = g
            .edge_topic_probs(e)
            .map(|(z, p)| (z.index(), p as f64))
            .collect();
        b.add_edge(u, v, &probs)?;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec;
    use crate::ids::TopicId;

    fn fixture() -> TopicGraph {
        let mut b = GraphBuilder::new(2);
        b.add_node("ada");
        b.add_node("grace");
        b.add_node("edsger");
        b.add_node("barbara");
        b.add_edge(NodeId(0), NodeId(1), &[(0, 0.5), (1, 0.25)])
            .unwrap();
        b.add_edge(NodeId(1), NodeId(2), &[(1, 0.75)]).unwrap();
        b.add_edge(NodeId(2), NodeId(0), &[(0, 0.125)]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn rebuild_is_identity() {
        let g = fixture();
        assert_eq!(builder_from(&g).build().unwrap(), g);
        // anonymous graphs too
        let mut b = GraphBuilder::new(1);
        let _ = b.add_nodes(3);
        b.add_edge(NodeId(0), NodeId(2), &[(0, 0.5)]).unwrap();
        let anon = b.build().unwrap();
        assert_eq!(builder_from(&anon).build().unwrap(), anon);
    }

    #[test]
    fn nudge_changes_only_the_weight_slice() {
        let g = fixture();
        let e = g.find_edge(NodeId(1), NodeId(2)).unwrap();
        let nudged = nudge_weights(&g, &[e], 0.1).unwrap();
        assert_eq!(codec::hash_topology(&g), codec::hash_topology(&nudged));
        assert_eq!(codec::hash_names(&g), codec::hash_names(&nudged));
        assert_ne!(codec::hash_weights(&g), codec::hash_weights(&nudged));
        assert!((nudged.edge_prob_topic(e, TopicId(1)) - 0.85).abs() < 1e-6);
        // untouched edges keep bit-identical probabilities
        let other = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(
            g.edge_prob_topic(other, TopicId(0)),
            nudged.edge_prob_topic(other, TopicId(0))
        );
    }

    #[test]
    fn nudge_reflects_at_the_boundary() {
        let mut b = GraphBuilder::new(1);
        let _ = b.add_nodes(2);
        b.add_edge(NodeId(0), NodeId(1), &[(0, 0.98)]).unwrap();
        let g = b.build().unwrap();
        let e = EdgeId(0);
        let nudged = nudge_weights(&g, &[e], 0.1).unwrap();
        let p = nudged.edge_prob_topic(e, TopicId(0));
        assert!((p - 0.88).abs() < 1e-6, "0.98 + 0.1 reflects to 0.88");
        assert!(nudge_weights(&g, &[EdgeId(7)], 0.1).is_err());
    }

    #[test]
    fn insert_and_remove_shift_ids() {
        let g = fixture();
        let bigger = insert_edge(&g, NodeId(0), NodeId(3), &[(1, 0.4)]).unwrap();
        assert_eq!(bigger.edge_count(), g.edge_count() + 1);
        // inserted edge sorts between (0,1) and (1,2): later ids shift up
        assert_eq!(
            bigger.edge_endpoints(EdgeId(1)).unwrap(),
            (NodeId(0), NodeId(3))
        );
        assert_eq!(
            bigger.edge_endpoints(EdgeId(2)).unwrap(),
            (NodeId(1), NodeId(2))
        );
        let back = remove_edge(&bigger, EdgeId(1)).unwrap();
        assert_eq!(back, g, "insert then remove restores the original");
        assert!(insert_edge(&g, NodeId(0), NodeId(0), &[(0, 0.5)]).is_err());
    }

    #[test]
    fn graph_delta_variants_match_the_free_helpers() {
        let g = fixture();
        let e = g.find_edge(NodeId(1), NodeId(2)).unwrap();
        assert_eq!(
            GraphDelta::NudgeWeights {
                edges: vec![e],
                delta: 0.1
            }
            .apply(&g)
            .unwrap(),
            nudge_weights(&g, &[e], 0.1).unwrap()
        );
        assert_eq!(
            GraphDelta::InsertEdge {
                src: NodeId(0),
                dst: NodeId(3),
                probs: vec![(1, 0.4)]
            }
            .apply(&g)
            .unwrap(),
            insert_edge(&g, NodeId(0), NodeId(3), &[(1, 0.4)]).unwrap()
        );
        assert_eq!(
            GraphDelta::RemoveEdge { edge: e }.apply(&g).unwrap(),
            remove_edge(&g, e).unwrap()
        );
        assert_eq!(
            GraphDelta::RenameNode {
                node: NodeId(1),
                name: "grace hopper".into()
            }
            .apply(&g)
            .unwrap(),
            rename_node(&g, NodeId(1), "grace hopper").unwrap()
        );
        // failures propagate
        assert!(GraphDelta::RemoveEdge { edge: EdgeId(99) }
            .apply(&g)
            .is_err());
    }

    #[test]
    fn coalesced_batch_matches_sequential_application() {
        let g = fixture();
        let batch = vec![
            GraphDelta::NudgeWeights {
                edges: vec![EdgeId(0)],
                delta: 0.05,
            },
            GraphDelta::RenameNode {
                node: NodeId(2),
                name: "edsger dijkstra".into(),
            },
            GraphDelta::InsertEdge {
                src: NodeId(3),
                dst: NodeId(0),
                probs: vec![(0, 0.2)],
            },
        ];
        let coalesced = apply_all(&g, &batch).unwrap();
        let mut sequential = g.clone();
        for d in &batch {
            sequential = d.apply(&sequential).unwrap();
        }
        assert_eq!(coalesced, sequential);
        // empty batch is the identity
        assert_eq!(apply_all(&g, &[]).unwrap(), g);
        // a failing delta mid-batch aborts the whole batch
        let bad = vec![
            GraphDelta::RenameNode {
                node: NodeId(0),
                name: "renamed".into(),
            },
            GraphDelta::RemoveEdge { edge: EdgeId(99) },
        ];
        assert!(apply_all(&g, &bad).is_err());
    }

    #[test]
    fn nudge_runs_fold_without_changing_semantics() {
        let g = fixture();
        let nudge = |edges: Vec<u32>, delta: f64| GraphDelta::NudgeWeights {
            edges: edges.into_iter().map(EdgeId).collect(),
            delta,
        };
        let sequential = |batch: &[GraphDelta]| {
            let mut cur = g.clone();
            for d in batch {
                cur = d.apply(&cur).unwrap();
            }
            cur
        };
        // disjoint same-δ run (the serving-churn shape): folds into one
        // rebuild, same graph as one-at-a-time
        let run = vec![
            nudge(vec![0], 0.05),
            nudge(vec![1], 0.05),
            nudge(vec![2], 0.05),
        ];
        assert_eq!(apply_all(&g, &run).unwrap(), sequential(&run));
        // repeated edge: the second nudge must compound, not be absorbed
        let repeat = vec![nudge(vec![0], 0.05), nudge(vec![0], 0.05)];
        assert_eq!(apply_all(&g, &repeat).unwrap(), sequential(&repeat));
        assert_ne!(
            apply_all(&g, &repeat).unwrap(),
            apply_all(&g, &[nudge(vec![0], 0.05)]).unwrap()
        );
        // mixed perturbations: not merged, still equivalent
        let mixed = vec![nudge(vec![0], 0.05), nudge(vec![1], 0.07)];
        assert_eq!(apply_all(&g, &mixed).unwrap(), sequential(&mixed));
        // a run interrupted by another variant stays sequential around it
        let interrupted = vec![
            nudge(vec![0], 0.05),
            GraphDelta::RenameNode {
                node: NodeId(3),
                name: "barbara liskov".into(),
            },
            nudge(vec![1], 0.05),
        ];
        assert_eq!(
            apply_all(&g, &interrupted).unwrap(),
            sequential(&interrupted)
        );
        // an invalid edge anywhere in a foldable run still aborts
        assert!(apply_all(&g, &[nudge(vec![0], 0.05), nudge(vec![99], 0.05)]).is_err());
    }

    #[test]
    fn rename_preserves_everything_else() {
        let g = fixture();
        let renamed = rename_node(&g, NodeId(1), "grace hopper").unwrap();
        assert_eq!(codec::hash_topology(&g), codec::hash_topology(&renamed));
        assert_eq!(codec::hash_weights(&g), codec::hash_weights(&renamed));
        assert_ne!(codec::hash_names(&g), codec::hash_names(&renamed));
        assert_eq!(renamed.node_by_name("grace hopper"), Some(NodeId(1)));
        assert_eq!(renamed.node_by_name("grace"), None);
        // renaming onto an existing other node is rejected
        assert!(rename_node(&g, NodeId(1), "ada").is_err());
        // renaming a node onto its own name is a no-op, not an error
        assert_eq!(rename_node(&g, NodeId(1), "grace").unwrap(), g);
    }
}
