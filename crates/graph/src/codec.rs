//! Compact, versioned binary serialization for [`TopicGraph`].
//!
//! Layout (little-endian):
//!
//! ```text
//! magic "OCTG" | version u16 | num_topics u32 | n u32 | m u32
//! named u8
//! [named=1] n × (len u32, utf8 bytes)
//! (n+1) × u32 fwd_offsets
//! m × u32 fwd_targets
//! (m+1) × u32 prob_offsets
//! nnz × u16 prob_topics
//! nnz × f32 prob_values
//! ```
//!
//! The reverse CSR and the name index are *derived* data and are rebuilt on
//! load rather than stored, halving the on-disk footprint.

use crate::csr::TopicGraph;
use crate::error::GraphError;
use crate::ids::NodeId;
use crate::Result;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::collections::HashMap;

const MAGIC: &[u8; 4] = b"OCTG";
const VERSION: u16 = 1;

/// Serialize `g` into a binary buffer.
pub fn encode(g: &TopicGraph) -> Bytes {
    let n = g.node_count();
    let m = g.edge_count();
    let named = g.names.iter().any(|s| !s.is_empty());
    let name_bytes: usize = if named {
        g.names.iter().map(|s| 4 + s.len()).sum()
    } else {
        0
    };
    let cap = 4
        + 2
        + 4
        + 4
        + 4
        + 1
        + name_bytes
        + (n + 1) * 4
        + m * 4
        + (m + 1) * 4
        + g.prob_topics.len() * 2
        + g.prob_values.len() * 4;
    let mut buf = BytesMut::with_capacity(cap);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u32_le(g.num_topics() as u32);
    buf.put_u32_le(n as u32);
    buf.put_u32_le(m as u32);
    buf.put_u8(named as u8);
    if named {
        for s in &g.names {
            crate::wire::put_string(&mut buf, s);
        }
    }
    for &x in &g.fwd_offsets {
        buf.put_u32_le(x);
    }
    for &x in &g.fwd_targets {
        buf.put_u32_le(x);
    }
    for &x in &g.prob_offsets {
        buf.put_u32_le(x);
    }
    for &z in &g.prob_topics {
        buf.put_u16_le(z);
    }
    for &p in &g.prob_values {
        buf.put_f32_le(p);
    }
    buf.freeze()
}

/// FNV-1a over the canonical encoding, computed by streaming the same
/// fields through the hasher instead of materializing the byte buffer —
/// hashing a 10M-edge graph must not allocate a transient copy of it.
///
/// Invariant (pinned by `hash_equals_hash_of_encoding`): for every graph,
/// `hash(g) == wire::fnv1a(&encode(g))`. Any field added to [`encode`] must
/// be added here in the same order and width.
pub fn hash(g: &TopicGraph) -> u64 {
    let mut h = crate::wire::Fnv64::new();
    h.write(MAGIC);
    h.write_u16(VERSION);
    h.write_u32(g.num_topics() as u32);
    h.write_u32(g.node_count() as u32);
    h.write_u32(g.edge_count() as u32);
    let named = g.names.iter().any(|s| !s.is_empty());
    h.write_u8(named as u8);
    if named {
        for s in &g.names {
            h.write_u32(s.len() as u32);
            h.write(s.as_bytes());
        }
    }
    for &x in &g.fwd_offsets {
        h.write_u32(x);
    }
    for &x in &g.fwd_targets {
        h.write_u32(x);
    }
    for &x in &g.prob_offsets {
        h.write_u32(x);
    }
    for &z in &g.prob_topics {
        h.write_u16(z);
    }
    for &p in &g.prob_values {
        h.write_f32(p);
    }
    h.finish()
}

/// Domain-separation tags for the input-slice hashes: two different slices
/// of the same graph must never collide just because their field bytes
/// happen to agree.
const TOPOLOGY_TAG: &[u8] = b"octg:topology";
const WEIGHTS_TAG: &[u8] = b"octg:weights";
const WEIGHTS_TOPIC_TAG: &[u8] = b"octg:weights-topic";
const NAMES_TAG: &[u8] = b"octg:names";

/// FNV-1a over the graph's **topology slice**: node count, edge count, and
/// the forward CSR (offsets + targets). Ignores edge weights and names.
///
/// This is one of the three independent input slices the per-stage artifact
/// fingerprints (`octopus-core::offline::persist::StageKeys`) are built
/// from: a stage whose computation never reads names or probabilities can
/// key itself on this hash alone and survive renames and weight nudges.
pub fn hash_topology(g: &TopicGraph) -> u64 {
    let mut h = crate::wire::Fnv64::new();
    h.write(TOPOLOGY_TAG);
    h.write_u32(g.node_count() as u32);
    h.write_u32(g.edge_count() as u32);
    for &x in &g.fwd_offsets {
        h.write_u32(x);
    }
    for &x in &g.fwd_targets {
        h.write_u32(x);
    }
    h.finish()
}

/// FNV-1a over the graph's **probability slice**: topic count plus the
/// per-edge sparse topic-probability table (offsets, topics, values, each
/// value by exact bit pattern). Ignores names.
///
/// The table is indexed by [`crate::EdgeId`], so any change to the edge
/// *set* moves this hash too (the offsets shift) — which is correct: a
/// weight table for a different edge numbering is a different input.
pub fn hash_weights(g: &TopicGraph) -> u64 {
    let mut h = crate::wire::Fnv64::new();
    h.write(WEIGHTS_TAG);
    h.write_u32(g.num_topics() as u32);
    for &x in &g.prob_offsets {
        h.write_u32(x);
    }
    for &z in &g.prob_topics {
        h.write_u16(z);
    }
    for &p in &g.prob_values {
        h.write_f32(p);
    }
    h.finish()
}

/// FNV-1a over the graph's **topic-`z` probability slice**: the topic index,
/// topic count, node count, and — for every edge carrying a sparse topic-`z`
/// entry, in edge-id (hence `(src, dst)`-sorted) order — the edge endpoints
/// and the `z`-probability by exact bit pattern.
///
/// Unlike [`hash_weights`], edge ids and the offset table are **deliberately
/// excluded**, so the hash is a function of the topic-`z` edge *triples*
/// `(src, dst, p_z)` alone (plus the node universe). Consequences the
/// `slice_hashes_isolate_their_inputs` test pins:
///
/// * a nudge confined to topic `z` moves only topic `z`'s hash;
/// * a rename moves none of them;
/// * an **edge insert** moves exactly the topics carried by the new edge —
///   other topics' hashes survive even though every edge id shifted
///   (zero-probability edges are invisible to the per-topic offline stages:
///   MIA skips them before touching state and the RR sampler consumes no
///   randomness on them, so the surviving hash is sound, not just cheap);
/// * `hash_weights(a) == hash_weights(b)` on a shared topology implies
///   `hash_weights_topic(a, z) == hash_weights_topic(b, z)` for every `z`
///   (the per-topic slices are a refinement of the monolithic slice).
pub fn hash_weights_topic(g: &TopicGraph, z: usize) -> u64 {
    let mut h = crate::wire::Fnv64::new();
    h.write(WEIGHTS_TOPIC_TAG);
    h.write_u32(z as u32);
    h.write_u32(g.num_topics() as u32);
    h.write_u32(g.node_count() as u32);
    let zt = z as u16;
    for u in 0..g.node_count() {
        let lo_e = g.fwd_offsets[u] as usize;
        let hi_e = g.fwd_offsets[u + 1] as usize;
        for e in lo_e..hi_e {
            let plo = g.prob_offsets[e] as usize;
            let phi = g.prob_offsets[e + 1] as usize;
            if let Ok(i) = g.prob_topics[plo..phi].binary_search(&zt) {
                h.write_u32(u as u32);
                h.write_u32(g.fwd_targets[e]);
                h.write_f32(g.prob_values[plo + i]);
            }
        }
    }
    h.finish()
}

/// FNV-1a over the graph's **name slice**: the named flag and every node
/// display name in id order. Ignores topology and weights entirely, so a
/// pure edge or weight delta leaves it unchanged.
pub fn hash_names(g: &TopicGraph) -> u64 {
    let mut h = crate::wire::Fnv64::new();
    h.write(NAMES_TAG);
    let named = g.names.iter().any(|s| !s.is_empty());
    h.write_u8(named as u8);
    h.write_u32(g.names.len() as u32);
    if named {
        for s in &g.names {
            h.write_u32(s.len() as u32);
            h.write(s.as_bytes());
        }
    }
    h.finish()
}

/// Bounds check delegating to the shared [`crate::wire`] helpers.
fn need<B: Buf + ?Sized>(buf: &B, n: usize, what: &str) -> Result<()> {
    Ok(crate::wire::need(buf, n, what)?)
}

/// Deserialize a graph from a buffer produced by [`encode`].
pub fn decode(mut buf: impl Buf) -> Result<TopicGraph> {
    need(&buf, 4 + 2 + 12 + 1, "header")?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(GraphError::Codec("bad magic (not an OCTG payload)".into()));
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(GraphError::Codec(format!("unsupported version {version}")));
    }
    let num_topics = buf.get_u32_le() as usize;
    let n = buf.get_u32_le() as usize;
    let m = buf.get_u32_le() as usize;
    let named = buf.get_u8() != 0;

    let mut names = Vec::with_capacity(n);
    if named {
        for _ in 0..n {
            names.push(crate::wire::read_string(&mut buf, "node name")?);
        }
    } else {
        names = vec![String::new(); n];
    }

    let fwd_offsets = crate::wire::read_u32s(&mut buf, n + 1, "fwd_offsets")?;
    let fwd_targets = crate::wire::read_u32s(&mut buf, m, "fwd_targets")?;
    let prob_offsets = crate::wire::read_u32s(&mut buf, m + 1, "prob_offsets")?;
    if fwd_offsets.last().copied() != Some(m as u32) {
        return Err(GraphError::Codec(
            "fwd_offsets do not sum to edge count".into(),
        ));
    }
    let nnz = *prob_offsets.last().unwrap_or(&0) as usize;
    need(&buf, nnz * 2, "prob_topics")?;
    let mut prob_topics = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        let z = buf.get_u16_le();
        if (z as usize) >= num_topics {
            return Err(GraphError::Codec(format!(
                "topic {z} >= num_topics {num_topics}"
            )));
        }
        prob_topics.push(z);
    }
    need(&buf, nnz * 4, "prob_values")?;
    let mut prob_values = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        let p = buf.get_f32_le();
        if !(0.0..=1.0).contains(&p) {
            return Err(GraphError::Codec(format!("probability {p} out of range")));
        }
        prob_values.push(p);
    }
    for &t in &fwd_targets {
        if t as usize >= n {
            return Err(GraphError::Codec(format!("edge target {t} out of bounds")));
        }
    }

    // Rebuild reverse CSR.
    let mut rev_offsets = vec![0u32; n + 1];
    for &v in &fwd_targets {
        rev_offsets[v as usize + 1] += 1;
    }
    for i in 0..n {
        rev_offsets[i + 1] += rev_offsets[i];
    }
    let mut rev_sources = vec![0u32; m];
    let mut rev_edge_ids = vec![0u32; m];
    let mut cursor = rev_offsets.clone();
    for u in 0..n {
        let lo = fwd_offsets[u] as usize;
        let hi = fwd_offsets[u + 1] as usize;
        for (e, &target) in fwd_targets.iter().enumerate().take(hi).skip(lo) {
            let v = target as usize;
            let slot = cursor[v] as usize;
            rev_sources[slot] = u as u32;
            rev_edge_ids[slot] = e as u32;
            cursor[v] += 1;
        }
    }

    let mut name_index = HashMap::new();
    if named {
        for (i, s) in names.iter().enumerate() {
            if !s.is_empty() {
                name_index.insert(s.clone(), NodeId(i as u32));
            }
        }
    }

    Ok(TopicGraph {
        num_topics,
        names,
        name_index,
        fwd_offsets,
        fwd_targets,
        rev_offsets,
        rev_sources,
        rev_edge_ids,
        prob_offsets,
        prob_topics,
        prob_values,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn sample() -> TopicGraph {
        let mut b = GraphBuilder::new(3);
        let u = b.add_node("ada");
        let v = b.add_node("grace");
        let w = b.add_node("edsger");
        b.add_edge(u, v, &[(0, 0.5), (2, 0.25)]).unwrap();
        b.add_edge(v, w, &[(1, 0.75)]).unwrap();
        b.add_edge(w, u, &[(0, 0.125)]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn hash_equals_hash_of_encoding() {
        // the streaming hash must track the byte encoding exactly, for
        // named and anonymous graphs alike
        let named = sample();
        assert_eq!(hash(&named), crate::wire::fnv1a(&encode(&named)));
        let mut b = GraphBuilder::new(2);
        let _ = b.add_nodes(4);
        b.add_edge(NodeId(0), NodeId(3), &[(1, 0.5)]).unwrap();
        let anon = b.build().unwrap();
        assert_eq!(hash(&anon), crate::wire::fnv1a(&encode(&anon)));
        assert_ne!(hash(&named), hash(&anon));
    }

    #[test]
    fn slice_hashes_isolate_their_inputs() {
        let base = sample();
        // rename: only the name slice moves
        let renamed = {
            let mut b = GraphBuilder::new(3);
            b.add_node("ada");
            b.add_node("grace hopper"); // renamed
            b.add_node("edsger");
            b.add_edge(NodeId(0), NodeId(1), &[(0, 0.5), (2, 0.25)])
                .unwrap();
            b.add_edge(NodeId(1), NodeId(2), &[(1, 0.75)]).unwrap();
            b.add_edge(NodeId(2), NodeId(0), &[(0, 0.125)]).unwrap();
            b.build().unwrap()
        };
        assert_eq!(hash_topology(&base), hash_topology(&renamed));
        assert_eq!(hash_weights(&base), hash_weights(&renamed));
        assert_ne!(hash_names(&base), hash_names(&renamed));

        // weight nudge: only the probability slice moves
        let nudged = {
            let mut b = GraphBuilder::new(3);
            b.add_node("ada");
            b.add_node("grace");
            b.add_node("edsger");
            b.add_edge(NodeId(0), NodeId(1), &[(0, 0.5), (2, 0.25)])
                .unwrap();
            b.add_edge(NodeId(1), NodeId(2), &[(1, 0.8)]).unwrap(); // nudged
            b.add_edge(NodeId(2), NodeId(0), &[(0, 0.125)]).unwrap();
            b.build().unwrap()
        };
        assert_eq!(hash_topology(&base), hash_topology(&nudged));
        assert_ne!(hash_weights(&base), hash_weights(&nudged));
        assert_eq!(hash_names(&base), hash_names(&nudged));

        // edge insert: topology and weights move (the prob table is
        // edge-indexed), names stay
        let extended = {
            let mut b = GraphBuilder::new(3);
            b.add_node("ada");
            b.add_node("grace");
            b.add_node("edsger");
            b.add_edge(NodeId(0), NodeId(1), &[(0, 0.5), (2, 0.25)])
                .unwrap();
            b.add_edge(NodeId(1), NodeId(2), &[(1, 0.75)]).unwrap();
            b.add_edge(NodeId(2), NodeId(0), &[(0, 0.125)]).unwrap();
            b.add_edge(NodeId(0), NodeId(2), &[(1, 0.3)]).unwrap(); // new
            b.build().unwrap()
        };
        assert_ne!(hash_topology(&base), hash_topology(&extended));
        assert_ne!(hash_weights(&base), hash_weights(&extended));
        assert_eq!(hash_names(&base), hash_names(&extended));

        // the three slices of one graph never collide with each other
        assert_ne!(hash_topology(&base), hash_weights(&base));
        assert_ne!(hash_topology(&base), hash_names(&base));
        assert_ne!(hash_weights(&base), hash_names(&base));
    }

    #[test]
    fn per_topic_weight_hashes_isolate_their_topics() {
        let base = sample();
        let per_topic =
            |g: &TopicGraph| -> Vec<u64> { (0..3).map(|z| hash_weights_topic(g, z)).collect() };
        let h0 = per_topic(&base);
        // distinct topics hash to distinct values (domain separation by z)
        assert_ne!(h0[0], h0[1]);
        assert_ne!(h0[1], h0[2]);
        assert_ne!(h0[0], h0[2]);

        // rename: no per-topic hash moves (monolithic-equal ⟹ per-topic-equal)
        let renamed = {
            let mut b = GraphBuilder::new(3);
            b.add_node("ada");
            b.add_node("grace hopper");
            b.add_node("edsger");
            b.add_edge(NodeId(0), NodeId(1), &[(0, 0.5), (2, 0.25)])
                .unwrap();
            b.add_edge(NodeId(1), NodeId(2), &[(1, 0.75)]).unwrap();
            b.add_edge(NodeId(2), NodeId(0), &[(0, 0.125)]).unwrap();
            b.build().unwrap()
        };
        assert_eq!(hash_weights(&base), hash_weights(&renamed));
        assert_eq!(h0, per_topic(&renamed));

        // topic-1-confined nudge: only topic 1's hash moves
        let nudged = {
            let mut b = GraphBuilder::new(3);
            b.add_node("ada");
            b.add_node("grace");
            b.add_node("edsger");
            b.add_edge(NodeId(0), NodeId(1), &[(0, 0.5), (2, 0.25)])
                .unwrap();
            b.add_edge(NodeId(1), NodeId(2), &[(1, 0.8)]).unwrap(); // nudged
            b.add_edge(NodeId(2), NodeId(0), &[(0, 0.125)]).unwrap();
            b.build().unwrap()
        };
        let hn = per_topic(&nudged);
        assert_eq!(h0[0], hn[0]);
        assert_ne!(h0[1], hn[1]);
        assert_eq!(h0[2], hn[2]);

        // edge insert carrying only topic 1: topics 0 and 2 survive even
        // though every edge id after the insertion point shifted
        let extended = {
            let mut b = GraphBuilder::new(3);
            b.add_node("ada");
            b.add_node("grace");
            b.add_node("edsger");
            b.add_edge(NodeId(0), NodeId(1), &[(0, 0.5), (2, 0.25)])
                .unwrap();
            b.add_edge(NodeId(1), NodeId(2), &[(1, 0.75)]).unwrap();
            b.add_edge(NodeId(2), NodeId(0), &[(0, 0.125)]).unwrap();
            b.add_edge(NodeId(0), NodeId(2), &[(1, 0.3)]).unwrap(); // new
            b.build().unwrap()
        };
        let he = per_topic(&extended);
        assert_eq!(h0[0], he[0]);
        assert_ne!(h0[1], he[1]);
        assert_eq!(h0[2], he[2]);
    }

    #[test]
    fn round_trip_named() {
        let g = sample();
        let bytes = encode(&g);
        let g2 = decode(bytes).unwrap();
        assert_eq!(g, g2);
        assert_eq!(g2.node_by_name("grace"), Some(NodeId(1)));
    }

    #[test]
    fn round_trip_anonymous() {
        let mut b = GraphBuilder::new(1);
        let _ = b.add_nodes(3);
        b.add_edge(NodeId(0), NodeId(2), &[(0, 1.0)]).unwrap();
        let g = b.build().unwrap();
        let g2 = decode(encode(&g)).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut raw = encode(&sample()).to_vec();
        raw[..4].copy_from_slice(b"NOPE");
        let err = decode(&raw[..]).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let bytes = encode(&sample());
        // Chop the payload at several points; every prefix must fail cleanly,
        // never panic.
        for cut in [0, 3, 6, 10, 14, 15, 20, bytes.len() - 1] {
            let err = decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, GraphError::Codec(_)),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn rejects_wrong_version() {
        let bytes = encode(&sample());
        let mut raw = bytes.to_vec();
        raw[4] = 99;
        let err = decode(&raw[..]).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn rejects_corrupt_probability() {
        let g = sample();
        let bytes = encode(&g);
        let mut raw = bytes.to_vec();
        // corrupt the final f32 (a prob_value) to 7.0
        let len = raw.len();
        raw[len - 4..].copy_from_slice(&7.0f32.to_le_bytes());
        let err = decode(&raw[..]).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = GraphBuilder::new(2).build().unwrap();
        let g2 = decode(encode(&g)).unwrap();
        assert_eq!(g, g2);
    }
}
