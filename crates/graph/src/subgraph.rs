//! Induced subgraph extraction.
//!
//! Analysis services frequently work on a neighborhood rather than the whole
//! network: the LG bound estimator explores a ball, the path UI zooms into a
//! cluster, and offline jobs shard the graph. [`induced`] materializes the
//! subgraph spanned by a node set while preserving all per-topic edge
//! probabilities, returning the id mapping in both directions.

use crate::builder::GraphBuilder;
use crate::csr::TopicGraph;
use crate::ids::NodeId;
use crate::Result;
use std::collections::HashMap;

/// A materialized induced subgraph with id mappings.
#[derive(Debug, Clone)]
pub struct Subgraph {
    /// The subgraph itself (nodes renumbered densely, names preserved).
    pub graph: TopicGraph,
    /// `to_sub[original] = sub id` for members.
    pub to_sub: HashMap<NodeId, NodeId>,
    /// `to_original[sub.index()] = original id`.
    pub to_original: Vec<NodeId>,
}

impl Subgraph {
    /// Map an original node id into the subgraph, if it is a member.
    pub fn project(&self, u: NodeId) -> Option<NodeId> {
        self.to_sub.get(&u).copied()
    }

    /// Map a subgraph node id back to the original graph.
    pub fn lift(&self, u: NodeId) -> NodeId {
        self.to_original[u.index()]
    }
}

/// Build the subgraph induced by `members` (duplicates ignored; order
/// defines the new ids). Edges whose endpoints are both members are copied
/// with their full sparse topic-probability vectors.
pub fn induced(g: &TopicGraph, members: &[NodeId]) -> Result<Subgraph> {
    let mut to_sub: HashMap<NodeId, NodeId> = HashMap::with_capacity(members.len());
    let mut to_original: Vec<NodeId> = Vec::with_capacity(members.len());
    let mut b = GraphBuilder::new(g.num_topics()).with_capacity(members.len(), members.len() * 4);
    for &u in members {
        g.check_node(u)?;
        if to_sub.contains_key(&u) {
            continue;
        }
        let sub_id = b.add_node(g.name(u).unwrap_or("").to_string());
        to_sub.insert(u, sub_id);
        to_original.push(u);
    }
    for (&orig, &sub_u) in &to_sub {
        for (v, e) in g.out_edges(orig) {
            if let Some(&sub_v) = to_sub.get(&v) {
                let probs: Vec<(usize, f64)> = g
                    .edge_topic_probs(e)
                    .map(|(z, p)| (z.index(), p as f64))
                    .collect();
                b.add_edge(sub_u, sub_v, &probs)?;
            }
        }
    }
    Ok(Subgraph {
        graph: b.build()?,
        to_sub,
        to_original,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{ball, Direction};

    fn sample() -> TopicGraph {
        let mut b = GraphBuilder::new(2);
        for i in 0..6 {
            b.add_node(format!("u{i}"));
        }
        b.add_edge(NodeId(0), NodeId(1), &[(0, 0.5), (1, 0.2)])
            .unwrap();
        b.add_edge(NodeId(1), NodeId(2), &[(0, 0.4)]).unwrap();
        b.add_edge(NodeId(2), NodeId(3), &[(1, 0.3)]).unwrap();
        b.add_edge(NodeId(3), NodeId(4), &[(0, 0.9)]).unwrap();
        b.add_edge(NodeId(0), NodeId(5), &[(0, 0.1)]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn induced_keeps_internal_edges_only() {
        let g = sample();
        let sub = induced(&g, &[NodeId(0), NodeId(1), NodeId(2)]).unwrap();
        assert_eq!(sub.graph.node_count(), 3);
        assert_eq!(sub.graph.edge_count(), 2); // 0→1, 1→2; 2→3 and 0→5 cross the boundary
                                               // names preserved
        assert_eq!(sub.graph.name(sub.project(NodeId(1)).unwrap()), Some("u1"));
    }

    #[test]
    fn probabilities_survive_projection() {
        let g = sample();
        let sub = induced(&g, &[NodeId(0), NodeId(1)]).unwrap();
        let su = sub.project(NodeId(0)).unwrap();
        let sv = sub.project(NodeId(1)).unwrap();
        let e = sub.graph.find_edge(su, sv).unwrap();
        assert_eq!(sub.graph.edge_prob_topic(e, crate::TopicId(0)), 0.5);
        assert_eq!(sub.graph.edge_prob_topic(e, crate::TopicId(1)), 0.2);
    }

    #[test]
    fn mapping_round_trips() {
        let g = sample();
        let members = [NodeId(4), NodeId(2), NodeId(0)];
        let sub = induced(&g, &members).unwrap();
        for &m in &members {
            let s = sub.project(m).unwrap();
            assert_eq!(sub.lift(s), m);
        }
        assert_eq!(sub.project(NodeId(5)), None);
    }

    #[test]
    fn duplicates_are_ignored() {
        let g = sample();
        let sub = induced(&g, &[NodeId(1), NodeId(1), NodeId(2)]).unwrap();
        assert_eq!(sub.graph.node_count(), 2);
    }

    #[test]
    fn out_of_bounds_member_errors() {
        let g = sample();
        assert!(induced(&g, &[NodeId(99)]).is_err());
    }

    #[test]
    fn ball_subgraph_matches_local_structure() {
        // the LG-bound use case: subgraph of a radius-2 ball
        let g = sample();
        let members = ball(&g, NodeId(0), 2, Direction::Forward);
        let sub = induced(&g, &members).unwrap();
        assert!(sub.graph.node_count() >= 4); // 0,1,2,5 at least
                                              // every subgraph edge exists in the original with equal max prob
        for e in sub.graph.edges() {
            let (su, sv) = sub.graph.edge_endpoints(e).unwrap();
            let (u, v) = (sub.lift(su), sub.lift(sv));
            let orig = g.find_edge(u, v).expect("edge must exist in original");
            assert_eq!(g.edge_prob_max(orig), sub.graph.edge_prob_max(e));
        }
    }
}
