//! Induced subgraph extraction.
//!
//! Analysis services frequently work on a neighborhood rather than the whole
//! network: the LG bound estimator explores a ball, the path UI zooms into a
//! cluster, and offline jobs shard the graph. [`induced`] materializes the
//! subgraph spanned by a node set while preserving all per-topic edge
//! probabilities, returning the id mapping in both directions.

use crate::algo::weakly_connected_components;
use crate::builder::GraphBuilder;
use crate::csr::TopicGraph;
use crate::ids::NodeId;
use crate::Result;
use std::collections::HashMap;

/// A materialized induced subgraph with id mappings.
#[derive(Debug, Clone)]
pub struct Subgraph {
    /// The subgraph itself (nodes renumbered densely, names preserved).
    pub graph: TopicGraph,
    /// `to_sub[original] = sub id` for members.
    pub to_sub: HashMap<NodeId, NodeId>,
    /// `to_original[sub.index()] = original id`.
    pub to_original: Vec<NodeId>,
}

impl Subgraph {
    /// Map an original node id into the subgraph, if it is a member.
    pub fn project(&self, u: NodeId) -> Option<NodeId> {
        self.to_sub.get(&u).copied()
    }

    /// Map a subgraph node id back to the original graph.
    pub fn lift(&self, u: NodeId) -> NodeId {
        self.to_original[u.index()]
    }
}

/// Build the subgraph induced by `members` (duplicates ignored; order
/// defines the new ids). Edges whose endpoints are both members are copied
/// with their full sparse topic-probability vectors.
pub fn induced(g: &TopicGraph, members: &[NodeId]) -> Result<Subgraph> {
    let mut to_sub: HashMap<NodeId, NodeId> = HashMap::with_capacity(members.len());
    let mut to_original: Vec<NodeId> = Vec::with_capacity(members.len());
    let mut b = GraphBuilder::new(g.num_topics()).with_capacity(members.len(), members.len() * 4);
    for &u in members {
        g.check_node(u)?;
        if to_sub.contains_key(&u) {
            continue;
        }
        let sub_id = b.add_node(g.name(u).unwrap_or("").to_string());
        to_sub.insert(u, sub_id);
        to_original.push(u);
    }
    for (&orig, &sub_u) in &to_sub {
        for (v, e) in g.out_edges(orig) {
            if let Some(&sub_v) = to_sub.get(&v) {
                let probs: Vec<(usize, f64)> = g
                    .edge_topic_probs(e)
                    .map(|(z, p)| (z.index(), p as f64))
                    .collect();
                b.add_edge(sub_u, sub_v, &probs)?;
            }
        }
    }
    Ok(Subgraph {
        graph: b.build()?,
        to_sub,
        to_original,
    })
}

/// A locality-based K-way split of a graph into induced subgraphs.
///
/// Produced by [`partition`]. Every node belongs to exactly one shard;
/// `owner[u.index()]` names it. Shards never split a weakly connected
/// component, so influence computation (which cannot cross components)
/// is exact per shard.
#[derive(Debug, Clone)]
pub struct Partition {
    /// The shard subgraphs, each with its id mappings. May be fewer than
    /// the requested `k` when the graph has fewer components.
    pub shards: Vec<Subgraph>,
    /// `owner[original.index()] = shard index` into `shards`.
    pub owner: Vec<u32>,
}

impl Partition {
    /// Number of shards actually produced.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the partition holds no shards (empty input graph).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The shard owning original node `u`, if in range.
    pub fn owner_of(&self, u: NodeId) -> Option<usize> {
        self.owner.get(u.index()).map(|&s| s as usize)
    }
}

/// Partition `g` into at most `k` locality-based shards.
///
/// Whole weakly connected components are assigned to shards — influence
/// never crosses a component boundary, so per-shard analysis stays exact
/// and no edge is ever cut. Assignment is a deterministic greedy bin-pack:
/// components ordered by (size desc, min node id asc) go to the currently
/// lightest shard (ties broken by lowest shard index). Each shard's member
/// list is sorted ascending by original id, so subgraph ids preserve the
/// original relative order within a shard and renumbering-sensitive
/// tie-breaks (lowest-id-wins selections, summation order) agree with the
/// whole graph.
///
/// Returns fewer than `k` shards when the graph has fewer components than
/// `k`; empty shards are never produced. `k = 0` is treated as `k = 1`.
pub fn partition(g: &TopicGraph, k: usize) -> Result<Partition> {
    let k = k.max(1);
    let n = g.node_count();
    if n == 0 {
        return Ok(Partition {
            shards: Vec::new(),
            owner: Vec::new(),
        });
    }
    let (comp, num_comps) = weakly_connected_components(g);
    // component -> (size, min node id)
    let mut size = vec![0usize; num_comps];
    let mut min_id = vec![u32::MAX; num_comps];
    for (u, &c) in comp.iter().enumerate() {
        size[c as usize] += 1;
        min_id[c as usize] = min_id[c as usize].min(u as u32);
    }
    let mut order: Vec<u32> = (0..num_comps as u32).collect();
    order.sort_by(|&a, &b| {
        size[b as usize]
            .cmp(&size[a as usize])
            .then(min_id[a as usize].cmp(&min_id[b as usize]))
    });
    let num_shards = k.min(num_comps);
    let mut load = vec![0usize; num_shards];
    let mut comp_shard = vec![0u32; num_comps];
    for &c in &order {
        let lightest = (0..num_shards)
            .min_by_key(|&s| (load[s], s))
            .expect("at least one shard");
        comp_shard[c as usize] = lightest as u32;
        load[lightest] += size[c as usize];
    }
    // members per shard in ascending original-id order (single pass over
    // 0..n preserves it)
    let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); num_shards];
    let mut owner = vec![0u32; n];
    for (u, &c) in comp.iter().enumerate() {
        let s = comp_shard[c as usize];
        owner[u] = s;
        members[s as usize].push(NodeId(u as u32));
    }
    let shards = members
        .iter()
        .map(|m| induced(g, m))
        .collect::<Result<Vec<_>>>()?;
    Ok(Partition { shards, owner })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{ball, Direction};

    fn sample() -> TopicGraph {
        let mut b = GraphBuilder::new(2);
        for i in 0..6 {
            b.add_node(format!("u{i}"));
        }
        b.add_edge(NodeId(0), NodeId(1), &[(0, 0.5), (1, 0.2)])
            .unwrap();
        b.add_edge(NodeId(1), NodeId(2), &[(0, 0.4)]).unwrap();
        b.add_edge(NodeId(2), NodeId(3), &[(1, 0.3)]).unwrap();
        b.add_edge(NodeId(3), NodeId(4), &[(0, 0.9)]).unwrap();
        b.add_edge(NodeId(0), NodeId(5), &[(0, 0.1)]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn induced_keeps_internal_edges_only() {
        let g = sample();
        let sub = induced(&g, &[NodeId(0), NodeId(1), NodeId(2)]).unwrap();
        assert_eq!(sub.graph.node_count(), 3);
        assert_eq!(sub.graph.edge_count(), 2); // 0→1, 1→2; 2→3 and 0→5 cross the boundary
                                               // names preserved
        assert_eq!(sub.graph.name(sub.project(NodeId(1)).unwrap()), Some("u1"));
    }

    #[test]
    fn probabilities_survive_projection() {
        let g = sample();
        let sub = induced(&g, &[NodeId(0), NodeId(1)]).unwrap();
        let su = sub.project(NodeId(0)).unwrap();
        let sv = sub.project(NodeId(1)).unwrap();
        let e = sub.graph.find_edge(su, sv).unwrap();
        assert_eq!(sub.graph.edge_prob_topic(e, crate::TopicId(0)), 0.5);
        assert_eq!(sub.graph.edge_prob_topic(e, crate::TopicId(1)), 0.2);
    }

    #[test]
    fn mapping_round_trips() {
        let g = sample();
        let members = [NodeId(4), NodeId(2), NodeId(0)];
        let sub = induced(&g, &members).unwrap();
        for &m in &members {
            let s = sub.project(m).unwrap();
            assert_eq!(sub.lift(s), m);
        }
        assert_eq!(sub.project(NodeId(5)), None);
    }

    #[test]
    fn duplicates_are_ignored() {
        let g = sample();
        let sub = induced(&g, &[NodeId(1), NodeId(1), NodeId(2)]).unwrap();
        assert_eq!(sub.graph.node_count(), 2);
    }

    #[test]
    fn out_of_bounds_member_errors() {
        let g = sample();
        assert!(induced(&g, &[NodeId(99)]).is_err());
    }

    /// 0→1→2 (comp A, 3 nodes), 3→4 (comp B, 2 nodes), 5 isolated (comp C).
    fn three_components() -> TopicGraph {
        let mut b = GraphBuilder::new(1);
        for i in 0..6 {
            b.add_node(format!("u{i}"));
        }
        for (u, v) in [(0, 1), (1, 2), (3, 4)] {
            b.add_edge(NodeId(u), NodeId(v), &[(0, 0.5)]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn partition_never_splits_a_component() {
        let g = three_components();
        for k in 1..=4 {
            let p = partition(&g, k).unwrap();
            // endpoints of every original edge share a shard
            for e in g.edges() {
                let (u, v) = g.edge_endpoints(e).unwrap();
                assert_eq!(p.owner[u.index()], p.owner[v.index()]);
            }
            // every node appears in exactly one shard, total coverage
            let total: usize = p.shards.iter().map(|s| s.graph.node_count()).sum();
            assert_eq!(total, g.node_count());
            assert_eq!(g.edge_count(), {
                let edges: usize = p.shards.iter().map(|s| s.graph.edge_count()).sum();
                edges
            });
        }
    }

    #[test]
    fn partition_is_deterministic_and_balanced() {
        let g = three_components();
        let p = partition(&g, 2).unwrap();
        assert_eq!(p.len(), 2);
        // biggest component (0,1,2) to shard 0, then (3,4) to shard 1,
        // then singleton 5 to the lighter shard 1
        assert_eq!(p.owner, vec![0, 0, 0, 1, 1, 1]);
        let p2 = partition(&g, 2).unwrap();
        assert_eq!(p.owner, p2.owner);
    }

    #[test]
    fn partition_caps_at_component_count() {
        let g = three_components();
        let p = partition(&g, 8).unwrap();
        assert_eq!(p.len(), 3); // only 3 components; no empty shards
        assert!(p.shards.iter().all(|s| s.graph.node_count() > 0));
    }

    #[test]
    fn partition_members_keep_ascending_original_order() {
        let g = three_components();
        let p = partition(&g, 2).unwrap();
        for sub in &p.shards {
            let mut sorted = sub.to_original.clone();
            sorted.sort();
            assert_eq!(sub.to_original, sorted);
        }
        // lift/project round-trip through the owner map
        for u in 0..g.node_count() {
            let u = NodeId(u as u32);
            let s = p.owner_of(u).unwrap();
            let sub = &p.shards[s];
            assert_eq!(sub.lift(sub.project(u).unwrap()), u);
        }
    }

    #[test]
    fn partition_of_empty_graph_is_empty() {
        let g = GraphBuilder::new(1).build().unwrap();
        let p = partition(&g, 4).unwrap();
        assert!(p.is_empty());
        assert!(p.owner.is_empty());
    }

    #[test]
    fn ball_subgraph_matches_local_structure() {
        // the LG-bound use case: subgraph of a radius-2 ball
        let g = sample();
        let members = ball(&g, NodeId(0), 2, Direction::Forward);
        let sub = induced(&g, &members).unwrap();
        assert!(sub.graph.node_count() >= 4); // 0,1,2,5 at least
                                              // every subgraph edge exists in the original with equal max prob
        for e in sub.graph.edges() {
            let (su, sv) = sub.graph.edge_endpoints(e).unwrap();
            let (u, v) = (sub.lift(su), sub.lift(sv));
            let orig = g.find_edge(u, v).expect("edge must exist in original");
            assert_eq!(g.edge_prob_max(orig), sub.graph.edge_prob_max(e));
        }
    }
}
