//! Error type for graph construction, access and (de)serialization.

use std::fmt;

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A node id referenced a node that does not exist.
    NodeOutOfBounds {
        /// Offending node index.
        node: u32,
        /// Number of nodes in the graph.
        len: usize,
    },
    /// An edge id referenced an edge that does not exist.
    EdgeOutOfBounds {
        /// Offending edge index.
        edge: u32,
        /// Number of edges in the graph.
        len: usize,
    },
    /// A topic id `>= num_topics` was supplied.
    TopicOutOfBounds {
        /// Offending topic index.
        topic: usize,
        /// Number of topics in the graph.
        num_topics: usize,
    },
    /// A probability outside `[0, 1]` (or non-finite) was supplied.
    InvalidProbability(f64),
    /// The queried edge `(u, v)` is not present.
    NoSuchEdge {
        /// Source node.
        from: u32,
        /// Target node.
        to: u32,
    },
    /// A topic distribution had the wrong dimensionality.
    DimensionMismatch {
        /// Expected number of topics.
        expected: usize,
        /// Provided number of topics.
        got: usize,
    },
    /// Two nodes were registered under the same name.
    DuplicateName(String),
    /// Binary decoding failed (corrupt or incompatible payload).
    Codec(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { node, len } => {
                write!(f, "node id {node} out of bounds (graph has {len} nodes)")
            }
            GraphError::EdgeOutOfBounds { edge, len } => {
                write!(f, "edge id {edge} out of bounds (graph has {len} edges)")
            }
            GraphError::TopicOutOfBounds { topic, num_topics } => {
                write!(
                    f,
                    "topic {topic} out of bounds (graph has {num_topics} topics)"
                )
            }
            GraphError::InvalidProbability(p) => {
                write!(f, "probability {p} is not a finite value in [0, 1]")
            }
            GraphError::NoSuchEdge { from, to } => {
                write!(f, "no edge from node {from} to node {to}")
            }
            GraphError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "topic distribution has {got} entries, graph expects {expected}"
                )
            }
            GraphError::DuplicateName(name) => {
                write!(f, "duplicate node name {name:?}")
            }
            GraphError::Codec(msg) => write!(f, "codec error: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<crate::wire::WireError> for GraphError {
    fn from(e: crate::wire::WireError) -> Self {
        GraphError::Codec(e.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::NodeOutOfBounds { node: 9, len: 3 };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("3 nodes"));
        let e = GraphError::DimensionMismatch {
            expected: 4,
            got: 2,
        };
        assert!(e.to_string().contains("4"));
        let e = GraphError::Codec("bad magic".into());
        assert!(e.to_string().contains("bad magic"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&GraphError::InvalidProbability(1.5));
    }
}
