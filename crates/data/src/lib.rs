//! # octopus-data
//!
//! Workload substrate for OCTOPUS: synthetic social networks with ground
//! truth, action logs, a real-data loader, and the EM learner that turns
//! action logs into the topic-aware influence model of §II-B.
//!
//! The paper demonstrates on two datasets we cannot redistribute — the
//! AMiner ACM citation network and Tencent's QQ graph. Per the substitution
//! policy in `DESIGN.md`, this crate generates statistically analogous
//! networks **with known ground truth**:
//!
//! * [`gen::CitationConfig`] — an academic citation network: authors arrive
//!   over time, papers carry topic mixtures and title keywords, citations
//!   propagate influence (ACMCite-like);
//! * [`gen::MessengerConfig`] — a messenger/e-commerce network: power-law
//!   friendship graph, product-URL forwarding cascades (QQ-like);
//! * [`loader`] — a parser for the AMiner citation text format, so the real
//!   dump can be dropped in unchanged;
//! * [`learn::TicEm`] — the expectation–maximization learner of the
//!   topic-aware IC model (Barbieri et al., ICDM'12 \[2\]), jointly fitting
//!   `pp^z_{u,v}` and `p(w|z)` from an [`actions::ActionLog`];
//! * [`dist`] — Gamma/Dirichlet/Zipf/categorical samplers implemented from
//!   scratch (the approved dependency set excludes `rand_distr`), with
//!   statistical tests.
//!
//! Both generators *simulate the TIC model itself* to produce their action
//! logs, which makes parameter-recovery experiments well-posed: experiment
//! E7 measures how closely [`learn::TicEm`] recovers the planted model.

#![warn(missing_docs)]

pub mod actions;
pub mod dist;
pub mod gen;
pub mod learn;
pub mod loader;
pub mod store;
pub mod stream;

pub use actions::{ActionLog, Item, ItemId, Trial};
pub use gen::{CitationConfig, MessengerConfig, SyntheticNetwork};
pub use learn::{EmOptions, LearnedModel, TicEm};
pub use store::Dataset;
pub use stream::{
    Action, NewEdgePolicy, StreamConfig, StreamEvent, WindowOutcome, WindowedLearner,
};
