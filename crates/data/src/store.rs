//! Binary persistence for a complete OCTOPUS dataset: graph + topic model +
//! (optionally) the action log.
//!
//! Production deployments learn the model once (EM over months of action
//! logs) and then serve queries from it; this module is the boundary between
//! the two phases. The format is a versioned section container built on the
//! graph codec of `octopus-graph`:
//!
//! ```text
//! magic "OCTS" | version u16 | flags u8 (bit0: has log)
//! section graph    : u64 length + octopus_graph::codec payload
//! section vocab    : u32 count, then per word (u32 len, utf8)
//! section model    : u32 Z, u32 V, Z×V f64 p(w|z), Z f64 prior,
//!                    u8 has_labels, [Z × (u32 len, utf8)]
//! section log?     : u32 items { u32 origin, u32 kw_count, kw_count × u32 }
//!                    u64 trials { u32 item, u32 src, u32 dst, u8 activated }
//! ```

use crate::actions::{ActionLog, ItemId};
use octopus_graph::{codec as graph_codec, GraphError, NodeId, TopicGraph};
use octopus_topics::{KeywordId, TopicModel, Vocabulary};

use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"OCTS";
const VERSION: u16 = 1;

/// Errors from dataset (de)serialization.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// Payload is truncated or malformed.
    Corrupt(String),
    /// Graph section failed to decode.
    Graph(GraphError),
    /// Model reconstruction failed (shape/normalization).
    Model(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Corrupt(m) => write!(f, "corrupt dataset payload: {m}"),
            StoreError::Graph(e) => write!(f, "graph section: {e}"),
            StoreError::Model(m) => write!(f, "model section: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<GraphError> for StoreError {
    fn from(e: GraphError) -> Self {
        StoreError::Graph(e)
    }
}

impl From<octopus_graph::wire::WireError> for StoreError {
    fn from(e: octopus_graph::wire::WireError) -> Self {
        StoreError::Corrupt(e.0)
    }
}

/// A complete serializable dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// The influence graph.
    pub graph: TopicGraph,
    /// The keyword/topic model.
    pub model: TopicModel,
    /// The action log, if retained (not needed for serving).
    pub log: Option<ActionLog>,
}

/// Serialize a dataset.
pub fn encode(ds: &Dataset) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u8(ds.log.is_some() as u8);

    // graph section
    let g = graph_codec::encode(&ds.graph);
    buf.put_u64_le(g.len() as u64);
    buf.put_slice(&g);

    // vocab section
    let vocab = ds.model.vocab();
    buf.put_u32_le(vocab.len() as u32);
    for (_, w) in vocab.iter() {
        octopus_graph::wire::put_string(&mut buf, w);
    }

    // model section
    let z = ds.model.num_topics();
    let v = ds.model.vocab_size();
    buf.put_u32_le(z as u32);
    buf.put_u32_le(v as u32);
    for zi in 0..z {
        for wi in 0..v {
            buf.put_f64_le(ds.model.p_word_given_topic(KeywordId(wi as u32), zi));
        }
    }
    for zi in 0..z {
        buf.put_f64_le(ds.model.topic_prior(zi));
    }
    let has_labels = (0..z).any(|zi| ds.model.label(zi) != format!("topic-{zi}"));
    buf.put_u8(has_labels as u8);
    if has_labels {
        for zi in 0..z {
            octopus_graph::wire::put_string(&mut buf, &ds.model.label(zi));
        }
    }

    // log section
    if let Some(log) = &ds.log {
        buf.put_u32_le(log.item_count() as u32);
        for item in log.items() {
            buf.put_u32_le(item.origin.0);
            buf.put_u32_le(item.keywords.len() as u32);
            for w in &item.keywords {
                buf.put_u32_le(w.0);
            }
        }
        buf.put_u64_le(log.trial_count() as u64);
        for t in log.trials() {
            buf.put_u32_le(t.item.0);
            buf.put_u32_le(t.src.0);
            buf.put_u32_le(t.dst.0);
            buf.put_u8(t.activated as u8);
        }
    }
    buf.freeze()
}

/// Bounds check delegating to the shared [`octopus_graph::wire`] helpers.
fn need<B: Buf + ?Sized>(buf: &B, n: usize, what: &str) -> Result<(), StoreError> {
    Ok(octopus_graph::wire::need(buf, n, what)?)
}

/// Length-prefixed string read delegating to [`octopus_graph::wire`].
fn read_string<B: Buf + ?Sized>(buf: &mut B, what: &str) -> Result<String, StoreError> {
    Ok(octopus_graph::wire::read_string(buf, what)?)
}

/// Deserialize a dataset.
pub fn decode(mut buf: impl Buf) -> Result<Dataset, StoreError> {
    need(&buf, 4 + 2 + 1, "header")?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(StoreError::Corrupt(
            "bad magic (not an OCTS payload)".into(),
        ));
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(StoreError::Corrupt(format!(
            "unsupported version {version}"
        )));
    }
    let has_log = buf.get_u8() != 0;

    // graph
    need(&buf, 8, "graph length")?;
    let glen = buf.get_u64_le() as usize;
    need(&buf, glen, "graph payload")?;
    let mut graw = vec![0u8; glen];
    buf.copy_to_slice(&mut graw);
    let graph = graph_codec::decode(&graw[..])?;

    // vocab
    need(&buf, 4, "vocab count")?;
    let vcount = buf.get_u32_le() as usize;
    let mut vocab = Vocabulary::new();
    for i in 0..vcount {
        let w = read_string(&mut buf, "vocab word")?;
        let id = vocab.intern(&w);
        if id.index() != i {
            return Err(StoreError::Corrupt(format!("duplicate vocab word {w:?}")));
        }
    }

    // model
    need(&buf, 8, "model shape")?;
    let z = buf.get_u32_le() as usize;
    let v = buf.get_u32_le() as usize;
    if v != vcount {
        return Err(StoreError::Model(format!(
            "model width {v} != vocab size {vcount}"
        )));
    }
    need(&buf, z * v * 8 + z * 8 + 1, "model matrices")?;
    let mut rows = Vec::with_capacity(z);
    for _ in 0..z {
        let mut row = Vec::with_capacity(v);
        for _ in 0..v {
            row.push(buf.get_f64_le());
        }
        rows.push(row);
    }
    let mut prior = Vec::with_capacity(z);
    for _ in 0..z {
        prior.push(buf.get_f64_le());
    }
    let has_labels = buf.get_u8() != 0;
    let mut model =
        TopicModel::from_rows(vocab, rows, prior).map_err(|e| StoreError::Model(e.to_string()))?;
    if has_labels {
        let mut labels = Vec::with_capacity(z);
        for _ in 0..z {
            labels.push(read_string(&mut buf, "topic label")?);
        }
        model = model
            .with_labels(labels)
            .map_err(|e| StoreError::Model(e.to_string()))?;
    }

    // log
    let log = if has_log {
        need(&buf, 4, "item count")?;
        let items = buf.get_u32_le() as usize;
        let mut log = ActionLog::new();
        for _ in 0..items {
            need(&buf, 8, "item header")?;
            let origin = NodeId(buf.get_u32_le());
            let kw = buf.get_u32_le() as usize;
            need(&buf, kw * 4, "item keywords")?;
            let mut kws = Vec::with_capacity(kw);
            for _ in 0..kw {
                kws.push(KeywordId(buf.get_u32_le()));
            }
            log.push_item(origin, kws);
        }
        need(&buf, 8, "trial count")?;
        let trials = buf.get_u64_le() as usize;
        for _ in 0..trials {
            need(&buf, 13, "trial record")?;
            let item = ItemId(buf.get_u32_le());
            let src = NodeId(buf.get_u32_le());
            let dst = NodeId(buf.get_u32_le());
            let activated = buf.get_u8() != 0;
            if item.index() >= log.item_count() {
                return Err(StoreError::Corrupt(format!(
                    "trial references unknown item {}",
                    item.0
                )));
            }
            log.push_trial(item, src, dst, activated);
        }
        Some(log)
    } else {
        None
    };

    Ok(Dataset { graph, model, log })
}

/// Save a dataset to a file.
pub fn save(ds: &Dataset, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, encode(ds))
}

/// Load a dataset from a file.
pub fn load(path: &std::path::Path) -> Result<Dataset, StoreError> {
    let raw = std::fs::read(path).map_err(|e| StoreError::Corrupt(e.to_string()))?;
    decode(&raw[..])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::CitationConfig;

    fn tiny() -> Dataset {
        let net = CitationConfig {
            authors: 30,
            papers: 60,
            num_topics: 3,
            words_per_topic: 8,
            seed: 3,
            ..Default::default()
        }
        .generate();
        Dataset {
            graph: net.graph,
            model: net.model,
            log: Some(net.log),
        }
    }

    /// Models round-trip through one renormalization in `from_rows`, so
    /// probabilities may drift by an ULP — compare within 1e-14.
    fn assert_model_close(a: &TopicModel, b: &TopicModel) {
        assert_eq!(a.num_topics(), b.num_topics());
        assert_eq!(a.vocab(), b.vocab());
        for z in 0..a.num_topics() {
            assert_eq!(a.label(z), b.label(z));
            assert!((a.topic_prior(z) - b.topic_prior(z)).abs() < 1e-14);
            for w in 0..a.vocab_size() {
                let w = KeywordId(w as u32);
                let (x, y) = (a.p_word_given_topic(w, z), b.p_word_given_topic(w, z));
                assert!((x - y).abs() < 1e-14, "p(w|z) drifted: {x} vs {y}");
            }
        }
    }

    #[test]
    fn round_trip_with_log() {
        let ds = tiny();
        let back = decode(encode(&ds)).unwrap();
        assert_eq!(ds.graph, back.graph);
        assert_eq!(ds.log, back.log);
        assert_model_close(&ds.model, &back.model);
    }

    #[test]
    fn round_trip_without_log() {
        let mut ds = tiny();
        ds.log = None;
        let back = decode(encode(&ds)).unwrap();
        assert_eq!(back.log, None);
        assert_model_close(&ds.model, &back.model);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let ds = tiny();
        let mut raw = encode(&ds).to_vec();
        raw[0] = b'X';
        assert!(matches!(decode(&raw[..]), Err(StoreError::Corrupt(_))));
        let mut raw = encode(&ds).to_vec();
        raw[4] = 0xFF;
        assert!(decode(&raw[..]).is_err());
    }

    #[test]
    fn rejects_truncations_everywhere() {
        let ds = tiny();
        let raw = encode(&ds);
        for frac in [0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99] {
            let cut = (raw.len() as f64 * frac) as usize;
            assert!(decode(&raw[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn file_save_load() {
        let ds = tiny();
        let path = std::env::temp_dir().join("octopus_store_test.octs");
        save(&ds, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(ds.graph, back.graph);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn loaded_dataset_is_queryable() {
        let ds = tiny();
        let back = decode(encode(&ds)).unwrap();
        let gamma = back.model.infer_str("data mining").unwrap();
        assert_eq!(gamma.num_topics(), 3);
        assert!(back.graph.node_count() > 0);
    }
}
