//! Streaming replay of an action log plus the incremental learner that
//! turns it back into serving-layer graph deltas — the data half of the
//! paper's observe → learn → serve loop.
//!
//! A [`SyntheticNetwork`](crate::SyntheticNetwork)'s [`ActionLog`] is a
//! *batch* artifact: items
//! and trials in generation order, no clock. [`timeline`] stamps it into
//! a seeded, replayable stream of [`Action`]s (each item arrives at a
//! jittered gap after the previous one; its trials follow the cascade at
//! a fixed step), and [`spawn_replay`] plays that stream through a
//! **bounded** channel — a slow consumer applies backpressure to the
//! producer instead of buffering unboundedly, as a real firehose client
//! would.
//!
//! [`WindowedLearner`] is the consumer side: it appends replayed actions
//! to a growing log prefix and, once per window, refits with
//! [`TicEm::fit_warm`] from the previous model — the warm chain is
//! bit-for-bit deterministic for a given prefix + seed (pinned by
//! `tests/learn_determinism.rs`) — then **diffs** the learned weights
//! against its *shadow* graph (the graph exactly as the serving layer
//! has applied it) into [`GraphDelta`]s: changed rows become
//! [`GraphDelta::SetWeights`], never-seen edges become
//! [`GraphDelta::InsertEdge`] (or are deferred, see [`NewEdgePolicy`]).
//! Applying the window's deltas to the shadow reproduces the learned
//! weights bitwise (with `min_change = 0`), which is what lets the
//! end-to-end ingest test assert served answers are identical to a
//! fresh engine built from the final learned graph.

use crate::actions::{ActionLog, Item, Trial};
use crate::learn::{EmOptions, LearnedModel, TicEm};
use octopus_graph::delta::{self, GraphDelta};
use octopus_graph::TopicGraph;
use octopus_topics::Vocabulary;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::mpsc::{sync_channel, Receiver};

/// One propagation event, as the stream carries it.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamEvent {
    /// A new item entered the network (paper posted, ad launched).
    Item(Item),
    /// One influence trial on an edge for an already-streamed item.
    Trial(Trial),
}

/// One timestamped action of the replayable stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Action {
    /// Position in the stream (0-based, gap-free).
    pub seq: u64,
    /// Milliseconds since the stream epoch — the event's logical time
    /// and the ingestion watermark's unit.
    pub at_ms: u64,
    /// What happened.
    pub event: StreamEvent,
}

/// Knobs of [`timeline`]: how generation-ordered log entries spread out
/// on the stream clock.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Mean gap between consecutive item arrivals. Actual gaps jitter
    /// uniformly in `[mean/2, 3·mean/2)` under `seed`.
    pub mean_item_gap_ms: u64,
    /// Fixed step between an item's consecutive cascade trials.
    pub trial_step_ms: u64,
    /// Seed for the arrival jitter — same log + same seed ⇒ the same
    /// stream, byte for byte.
    pub seed: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            mean_item_gap_ms: 20,
            trial_step_ms: 1,
            seed: 0x57AE_A000,
        }
    }
}

/// Stamp `log` into a replayable stream: items in id order, each at a
/// seeded jittered gap after the previous, each item's trials following
/// it in cascade order at [`StreamConfig::trial_step_ms`] intervals.
/// Deterministic: the same log and config always produce the identical
/// action vector.
pub fn timeline(log: &ActionLog, cfg: &StreamConfig) -> Vec<Action> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let by_item = log.trials_by_item();
    let mut out = Vec::with_capacity(log.item_count() + log.trial_count());
    let mut clock: u64 = 0;
    let mut seq: u64 = 0;
    for item in log.items() {
        let half = cfg.mean_item_gap_ms / 2;
        clock += half + rng.random_range(0..cfg.mean_item_gap_ms.max(1));
        out.push(Action {
            seq,
            at_ms: clock,
            event: StreamEvent::Item(item.clone()),
        });
        seq += 1;
        for (j, trial) in by_item[item.id.index()].iter().enumerate() {
            out.push(Action {
                seq,
                at_ms: clock + (j as u64 + 1) * cfg.trial_step_ms,
                event: StreamEvent::Trial(**trial),
            });
            seq += 1;
        }
    }
    out
}

/// Replay `actions` through a bounded channel of `capacity` events. The
/// producer thread **blocks** once the consumer falls `capacity` events
/// behind — backpressure, not unbounded buffering — and exits when the
/// stream is drained or the receiver is dropped.
pub fn spawn_replay(actions: Vec<Action>, capacity: usize) -> Receiver<Action> {
    let (tx, rx) = sync_channel(capacity.max(1));
    std::thread::spawn(move || {
        for action in actions {
            if tx.send(action).is_err() {
                break; // consumer hung up; stop producing
            }
        }
    });
    rx
}

/// What the learner does with an edge the log has evidence for but the
/// serving graph does not contain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NewEdgePolicy {
    /// Emit [`GraphDelta::InsertEdge`] — the shadow (and the serving
    /// graph) grow the edge. Exact, but an insert crossing a shard
    /// boundary is rejected by the sharded router (`CrossShardDelta`).
    Insert,
    /// Keep the serving topology fixed at the warm-up universe and skip
    /// the edge (counted in [`WindowOutcome::edges_deferred`]). Every
    /// delta is then id-stable weight traffic, routable on any shard
    /// layout.
    Defer,
}

/// One window's worth of learner output.
#[derive(Debug)]
pub struct WindowOutcome {
    /// The deltas to feed the serving layer, in application order —
    /// all [`GraphDelta::SetWeights`] first (edge ids read against the
    /// pre-window shadow), then any [`GraphDelta::InsertEdge`]s.
    pub deltas: Vec<GraphDelta>,
    /// Rows replaced ([`GraphDelta::SetWeights`] count).
    pub weights_set: usize,
    /// Sparse `(edge, topic)` probability entries moved across all rows.
    pub entries_moved: usize,
    /// Edges newly inserted this window.
    pub edges_inserted: usize,
    /// Learned-only edges skipped under [`NewEdgePolicy::Defer`]
    /// (cumulative evidence will re-offer them every window).
    pub edges_deferred: usize,
    /// EM iterations the warm refit ran.
    pub iterations: usize,
}

/// Windowed incremental learner: accumulate replayed actions, refit
/// warm, diff into deltas (see the module docs).
pub struct WindowedLearner {
    learner: TicEm,
    vocab: Vocabulary,
    node_names: Vec<String>,
    policy: NewEdgePolicy,
    min_change: f32,
    log: ActionLog,
    prev: LearnedModel,
    shadow: TopicGraph,
}

impl WindowedLearner {
    /// Resume from a warm-up state: `warmup_log` is the prefix already
    /// fit into `warmup` (whose graph the serving engine was built
    /// from). `min_change` sparsifies the diff per *entry*: only entries
    /// that moved by at least that much (as `f32`, the precision the
    /// graph stores) take their learned value, the rest keep the served
    /// value bitwise — so each delta's topic footprint is the materially
    /// moving topics, not the whole dense row. `0.0` reproduces the
    /// learned weights bitwise.
    pub fn new(
        opts: EmOptions,
        vocab: Vocabulary,
        node_names: Vec<String>,
        warmup_log: ActionLog,
        warmup: LearnedModel,
        policy: NewEdgePolicy,
        min_change: f32,
    ) -> Self {
        let shadow = warmup.graph.clone();
        WindowedLearner {
            learner: TicEm::new(opts),
            vocab,
            node_names,
            policy,
            min_change,
            log: warmup_log,
            prev: warmup,
            shadow,
        }
    }

    /// The serving graph as this learner has evolved it — bitwise what
    /// the service holds once every emitted delta is applied.
    pub fn shadow(&self) -> &TopicGraph {
        &self.shadow
    }

    /// The latest fitted model.
    pub fn learned(&self) -> &LearnedModel {
        &self.prev
    }

    /// Actions observed so far (warm-up log included).
    pub fn log(&self) -> &ActionLog {
        &self.log
    }

    /// Append one replayed action to the growing log prefix. Item ids
    /// are positional, so the stream must be consumed in order — the
    /// assert catches a reordered or partially dropped stream.
    pub fn observe(&mut self, action: &Action) {
        match &action.event {
            StreamEvent::Item(item) => {
                let id = self.log.push_item(item.origin, item.keywords.clone());
                assert_eq!(
                    id, item.id,
                    "stream replayed out of order: item ids must stay positional"
                );
            }
            StreamEvent::Trial(t) => {
                self.log.push_trial(t.item, t.src, t.dst, t.activated);
            }
        }
    }

    /// Close the window: refit warm over the whole prefix, diff the
    /// learned weights against the shadow, and advance the shadow by
    /// the emitted deltas (so the next window diffs against exactly
    /// what the serving layer will hold).
    pub fn fit_window(&mut self) -> octopus_graph::Result<WindowOutcome> {
        let fitted = self.learner.fit_warm(
            &self.log,
            self.vocab.clone(),
            self.node_names.clone(),
            &self.prev,
        );
        let mut deltas: Vec<GraphDelta> = Vec::new();
        let mut inserts: Vec<GraphDelta> = Vec::new();
        let mut entries_moved = 0usize;
        let mut edges_deferred = 0usize;
        for e in fitted.graph.edges() {
            let (u, v) = fitted
                .graph
                .edge_endpoints(e)
                .expect("iterated edge is valid");
            let new_row: Vec<(usize, f64)> = fitted
                .graph
                .edge_topic_probs(e)
                .map(|(z, p)| (z.index(), p as f64))
                .collect();
            match self.shadow.find_edge(u, v) {
                Some(old) => {
                    let old_row: Vec<(usize, f32)> = self
                        .shadow
                        .edge_topic_probs(old)
                        .map(|(z, p)| (z.index(), p))
                        .collect();
                    if let Some((row, taken)) = blend_row(&old_row, &new_row, self.min_change) {
                        entries_moved += taken;
                        deltas.push(GraphDelta::SetWeights {
                            edge: old,
                            probs: row,
                        });
                    }
                }
                None => match self.policy {
                    NewEdgePolicy::Insert => {
                        entries_moved += new_row.len();
                        inserts.push(GraphDelta::InsertEdge {
                            src: u,
                            dst: v,
                            probs: new_row,
                        });
                    }
                    NewEdgePolicy::Defer => edges_deferred += 1,
                },
            }
        }
        let weights_set = deltas.len();
        let edges_inserted = inserts.len();
        deltas.extend(inserts);
        if !deltas.is_empty() {
            self.shadow = delta::apply_all(&self.shadow, &deltas)?;
        }
        let iterations = fitted.iterations;
        self.prev = fitted;
        Ok(WindowOutcome {
            deltas,
            weights_set,
            entries_moved,
            edges_inserted,
            edges_deferred,
            iterations,
        })
    }
}

/// Blend a learned row into the served row under the `min_change`
/// threshold: an entry that moved by at least `min_change` (at `f32`,
/// the stored precision) takes its learned value; a sub-threshold entry
/// keeps the served value **bitwise**, so its topic stays out of the
/// emitted delta's footprint ([`GraphDelta::touched_topics`] only counts
/// entries that change) and the per-topic serving artifacts backing it
/// stay valid. Sub-threshold residue is not lost — the next window diffs
/// against the served row again, so small moves accumulate until they
/// clear the threshold. Returns the row to emit plus the entries taken,
/// or `None` when nothing clears (no delta, or the blend would empty the
/// row). `min_change == 0.0` takes every bitwise difference — the
/// emitted row IS the learned row.
fn blend_row(
    old: &[(usize, f32)],
    new: &[(usize, f64)],
    min_change: f32,
) -> Option<(Vec<(usize, f64)>, usize)> {
    let mut row: Vec<(usize, f64)> = Vec::with_capacity(new.len());
    let mut taken = 0usize;
    // rows are topic-sorted on both sides
    let mut i = 0;
    let mut j = 0;
    while i < old.len() || j < new.len() {
        let (oz, op) = old.get(i).copied().unwrap_or((usize::MAX, 0.0));
        let (nz, np) = new.get(j).copied().unwrap_or((usize::MAX, 0.0));
        if oz == nz {
            let npf = np as f32;
            if op.to_bits() != npf.to_bits() && (op - npf).abs() >= min_change {
                row.push((nz, np));
                taken += 1;
            } else {
                // keep the served value, bitwise
                row.push((oz, op as f64));
            }
            i += 1;
            j += 1;
        } else if oz < nz {
            // the learned row dropped this entry
            if op.abs() >= min_change {
                taken += 1; // taking the drop = emitting no entry
            } else {
                row.push((oz, op as f64));
            }
            i += 1;
        } else {
            // the learned row grew this entry
            if (np as f32).abs() >= min_change {
                row.push((nz, np));
                taken += 1;
            }
            j += 1;
        }
    }
    (taken > 0 && !row.is_empty()).then_some((row, taken))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{CitationConfig, SyntheticNetwork};

    fn net() -> SyntheticNetwork {
        CitationConfig {
            authors: 60,
            papers: 150,
            seed: 0x0057_AEAA,
            ..Default::default()
        }
        .generate()
    }

    #[test]
    fn timeline_is_deterministic_ordered_and_complete() {
        let net = net();
        let cfg = StreamConfig::default();
        let a = timeline(&net.log, &cfg);
        let b = timeline(&net.log, &cfg);
        assert_eq!(a, b, "same log + same seed ⇒ same stream");
        assert_eq!(a.len(), net.log.item_count() + net.log.trial_count());
        // timestamps and seqs are monotone per construction; items appear
        // before their trials
        let mut seen_items = 0usize;
        for (i, action) in a.iter().enumerate() {
            assert_eq!(action.seq, i as u64);
            match &action.event {
                StreamEvent::Item(item) => {
                    assert_eq!(item.id.index(), seen_items, "items stream in id order");
                    seen_items += 1;
                }
                StreamEvent::Trial(t) => {
                    assert!(t.item.index() < seen_items, "trial before its item");
                }
            }
        }
        let different = timeline(
            &net.log,
            &StreamConfig {
                seed: 1,
                ..StreamConfig::default()
            },
        );
        assert_ne!(a, different, "the jitter is actually seeded");
        assert_eq!(
            a.iter().map(|x| x.event.clone()).collect::<Vec<_>>(),
            different
                .iter()
                .map(|x| x.event.clone())
                .collect::<Vec<_>>(),
            "the seed moves timestamps, never events or their order"
        );
    }

    #[test]
    fn bounded_replay_delivers_everything_in_order() {
        let net = net();
        let actions = timeline(&net.log, &StreamConfig::default());
        // a tiny capacity forces the producer to block on the consumer
        let rx = spawn_replay(actions.clone(), 4);
        let replayed: Vec<Action> = rx.iter().collect();
        assert_eq!(replayed, actions);
    }

    #[test]
    fn windowed_learner_reproduces_the_batch_fit_bitwise() {
        let net = net();
        let opts = EmOptions {
            max_iters: 4,
            ..Default::default()
        };
        let names: Vec<String> = net
            .graph
            .nodes()
            .map(|u| net.graph.name(u).unwrap_or("").to_string())
            .collect();
        let vocab = net.model.vocab().clone();

        // warm up on a prefix of the stream…
        let actions = timeline(&net.log, &StreamConfig::default());
        let split = actions.len() * 3 / 5;
        let mut warmup_log = ActionLog::new();
        for a in &actions[..split] {
            match &a.event {
                StreamEvent::Item(item) => {
                    warmup_log.push_item(item.origin, item.keywords.clone());
                }
                StreamEvent::Trial(t) => warmup_log.push_trial(t.item, t.src, t.dst, t.activated),
            }
        }
        let m0 = TicEm::new(opts.clone()).fit(&warmup_log, vocab.clone(), names.clone());
        let mut learner = WindowedLearner::new(
            opts.clone(),
            vocab.clone(),
            names.clone(),
            warmup_log,
            m0,
            NewEdgePolicy::Insert,
            0.0,
        );

        // …stream the rest in two windows
        let mid = split + (actions.len() - split) / 2;
        for a in &actions[split..mid] {
            learner.observe(a);
        }
        let w1 = learner.fit_window().unwrap();
        assert!(!w1.deltas.is_empty(), "new evidence must move weights");
        for a in &actions[mid..] {
            learner.observe(a);
        }
        let w2 = learner.fit_window().unwrap();
        // inserts ride after every SetWeights, so shard routing sees
        // id-stable batches first
        for w in [&w1, &w2] {
            let first_insert = w
                .deltas
                .iter()
                .position(|d| matches!(d, GraphDelta::InsertEdge { .. }));
            if let Some(i) = first_insert {
                assert!(w.deltas[i..]
                    .iter()
                    .all(|d| matches!(d, GraphDelta::InsertEdge { .. })));
            }
        }

        // with min_change = 0 and the Insert policy, the shadow IS the
        // learned graph — bit for bit
        assert_eq!(learner.shadow(), &learner.learned().graph);

        // …and replaying the identical window chain lands on the
        // identical graph (same prefixes + same seed ⇒ same fits,
        // same diffs, same shadow)
        let mut warmup_log = ActionLog::new();
        for a in &actions[..split] {
            match &a.event {
                StreamEvent::Item(item) => {
                    warmup_log.push_item(item.origin, item.keywords.clone());
                }
                StreamEvent::Trial(t) => warmup_log.push_trial(t.item, t.src, t.dst, t.activated),
            }
        }
        let m0 = TicEm::new(opts.clone()).fit(&warmup_log, vocab.clone(), names.clone());
        let mut replay = WindowedLearner::new(
            opts,
            vocab,
            names,
            warmup_log,
            m0,
            NewEdgePolicy::Insert,
            0.0,
        );
        for a in &actions[split..mid] {
            replay.observe(a);
        }
        let r1 = replay.fit_window().unwrap();
        for a in &actions[mid..] {
            replay.observe(a);
        }
        let r2 = replay.fit_window().unwrap();
        assert_eq!(w1.deltas, r1.deltas);
        assert_eq!(w2.deltas, r2.deltas);
        assert_eq!(learner.shadow(), replay.shadow());
    }

    #[test]
    fn defer_policy_keeps_the_topology_fixed() {
        let net = net();
        let opts = EmOptions {
            max_iters: 3,
            ..Default::default()
        };
        let names: Vec<String> = net
            .graph
            .nodes()
            .map(|u| net.graph.name(u).unwrap_or("").to_string())
            .collect();
        let actions = timeline(&net.log, &StreamConfig::default());
        let split = actions.len() / 2;
        let mut warmup_log = ActionLog::new();
        for a in &actions[..split] {
            match &a.event {
                StreamEvent::Item(item) => {
                    warmup_log.push_item(item.origin, item.keywords.clone());
                }
                StreamEvent::Trial(t) => warmup_log.push_trial(t.item, t.src, t.dst, t.activated),
            }
        }
        let m0 =
            TicEm::new(opts.clone()).fit(&warmup_log, net.model.vocab().clone(), names.clone());
        let warm_edges = m0.graph.edge_count();
        let mut learner = WindowedLearner::new(
            opts,
            net.model.vocab().clone(),
            names,
            warmup_log,
            m0,
            NewEdgePolicy::Defer,
            0.0,
        );
        for a in &actions[split..] {
            learner.observe(a);
        }
        let w = learner.fit_window().unwrap();
        assert_eq!(w.edges_inserted, 0);
        assert!(
            w.deltas
                .iter()
                .all(|d| matches!(d, GraphDelta::SetWeights { .. })),
            "deferred-topology windows are pure weight traffic"
        );
        assert_eq!(learner.shadow().edge_count(), warm_edges);
    }
}
