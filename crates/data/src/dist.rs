//! Probability distributions implemented from scratch on top of `rand`.
//!
//! The approved dependency set excludes `rand_distr`, so the samplers the
//! generators need — normal, gamma, Dirichlet, Zipf, and weighted
//! categorical — live here, each with statistical tests pinning their
//! moments.

use rand::Rng;

/// Standard normal via Box–Muller (the polar-free form; two uniforms → one
/// normal, the second is discarded for simplicity).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0,1] to avoid ln(0)
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Gamma(shape, scale=1) via Marsaglia–Tsang squeeze (2000), with the
/// standard boosting trick for `shape < 1`.
pub fn gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    assert!(
        shape > 0.0 && shape.is_finite(),
        "gamma shape must be positive"
    );
    if shape < 1.0 {
        // boost: G(a) = G(a+1) · U^{1/a}
        let g = gamma(rng, shape + 1.0);
        let u: f64 = 1.0 - rng.random::<f64>(); // (0,1]
        return g * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = 1.0 - rng.random::<f64>();
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// A Dirichlet(α) draw: a random point on the simplex. Symmetric when
/// `alpha` has equal entries; `alpha < 1` concentrates mass on few
/// coordinates (the topic-sparsity regime real networks exhibit).
pub fn dirichlet<R: Rng + ?Sized>(rng: &mut R, alpha: &[f64]) -> Vec<f64> {
    assert!(
        !alpha.is_empty(),
        "dirichlet needs at least one concentration"
    );
    let mut draws: Vec<f64> = alpha.iter().map(|&a| gamma(rng, a)).collect();
    let sum: f64 = draws.iter().sum();
    if sum <= 0.0 || !sum.is_finite() {
        // pathological underflow (all-tiny alphas): fall back to a corner
        let i = rng.random_range(0..alpha.len());
        draws.iter_mut().for_each(|d| *d = 0.0);
        draws[i] = 1.0;
        return draws;
    }
    draws.iter_mut().for_each(|d| *d /= sum);
    draws
}

/// Symmetric Dirichlet draw of dimension `k`.
pub fn dirichlet_sym<R: Rng + ?Sized>(rng: &mut R, k: usize, alpha: f64) -> Vec<f64> {
    dirichlet(rng, &vec![alpha; k])
}

/// Zipf probability table over ranks `1..=n` with exponent `s`:
/// `p(r) ∝ r^{-s}`. Returned normalized, rank 0 being the most likely.
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    assert!(n > 0, "zipf needs at least one rank");
    let mut w: Vec<f64> = (1..=n).map(|r| (r as f64).powf(-s)).collect();
    let sum: f64 = w.iter().sum();
    w.iter_mut().for_each(|x| *x /= sum);
    w
}

/// Weighted categorical sampler using the cumulative-distribution table
/// (binary search per draw: `O(log n)`).
#[derive(Debug, Clone)]
pub struct Categorical {
    cdf: Vec<f64>,
}

impl Categorical {
    /// Build from non-negative weights (need not be normalized).
    ///
    /// # Panics
    /// Panics when the weights are empty, contain negatives/NaN, or all sum
    /// to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "categorical needs at least one weight");
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0f64;
        for &w in weights {
            assert!(
                w >= 0.0 && w.is_finite(),
                "weights must be non-negative and finite"
            );
            acc += w;
            cdf.push(acc);
        }
        assert!(acc > 0.0, "weights must not all be zero");
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // force the last entry to exactly 1 so sampling can't fall off the end
        *cdf.last_mut().expect("non-empty") = 1.0;
        Categorical { cdf }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler has zero categories (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw a category index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random::<f64>();
        // first index with cdf[i] > u
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("no NaN in cdf"))
        {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i,
        }
    }

    /// Draw `k` *distinct* categories (rejection; `k` must not exceed the
    /// number of categories with positive mass).
    pub fn sample_distinct<R: Rng + ?Sized>(&self, rng: &mut R, k: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(k);
        let mut guard = 0usize;
        while out.len() < k {
            let c = self.sample(rng);
            if !out.contains(&c) {
                out.push(c);
            }
            guard += 1;
            assert!(
                guard < 10_000 * (k + 1),
                "sample_distinct failed to find {k} distinct categories"
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0xDECAF)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn gamma_moments_shape_above_one() {
        let mut r = rng();
        let shape = 3.5;
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| gamma(&mut r, shape)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - shape).abs() < 0.1, "mean {mean}");
        assert!((var - shape).abs() < 0.25, "var {var}");
    }

    #[test]
    fn gamma_moments_shape_below_one() {
        let mut r = rng();
        let shape = 0.3;
        let n = 80_000;
        let mean = (0..n).map(|_| gamma(&mut r, shape)).sum::<f64>() / n as f64;
        assert!((mean - shape).abs() < 0.02, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gamma_rejects_nonpositive_shape() {
        let _ = gamma(&mut rng(), 0.0);
    }

    #[test]
    fn dirichlet_is_simplex_and_mean_matches() {
        let mut r = rng();
        let alpha = [2.0, 1.0, 1.0];
        let n = 20_000;
        let mut mean = [0.0f64; 3];
        for _ in 0..n {
            let d = dirichlet(&mut r, &alpha);
            let s: f64 = d.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            for (m, x) in mean.iter_mut().zip(&d) {
                *m += x;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        // E[x_i] = α_i / Σα = [0.5, 0.25, 0.25]
        assert!((mean[0] - 0.5).abs() < 0.01, "{mean:?}");
        assert!((mean[1] - 0.25).abs() < 0.01, "{mean:?}");
    }

    #[test]
    fn sparse_dirichlet_concentrates() {
        let mut r = rng();
        // alpha << 1 → most draws have a dominant coordinate
        let mut dominated = 0;
        let n = 2000;
        for _ in 0..n {
            let d = dirichlet_sym(&mut r, 5, 0.1);
            if d.iter().any(|&x| x > 0.8) {
                dominated += 1;
            }
        }
        assert!(
            dominated as f64 / n as f64 > 0.5,
            "only {dominated}/{n} concentrated"
        );
    }

    #[test]
    fn zipf_is_normalized_and_decreasing() {
        let w = zipf_weights(100, 1.1);
        let s: f64 = w.iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
        for pair in w.windows(2) {
            assert!(pair[0] >= pair[1]);
        }
        assert!(
            w[0] / w[9] > 9.0,
            "head must dominate: {} vs {}",
            w[0],
            w[9]
        );
    }

    #[test]
    fn categorical_frequencies_match_weights() {
        let mut r = rng();
        let c = Categorical::new(&[1.0, 2.0, 7.0]);
        let n = 100_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[c.sample(&mut r)] += 1;
        }
        assert!((counts[0] as f64 / n as f64 - 0.1).abs() < 0.01);
        assert!((counts[1] as f64 / n as f64 - 0.2).abs() < 0.01);
        assert!((counts[2] as f64 / n as f64 - 0.7).abs() < 0.01);
    }

    #[test]
    fn categorical_zero_weight_never_sampled() {
        let mut r = rng();
        let c = Categorical::new(&[0.0, 1.0, 0.0]);
        for _ in 0..1000 {
            assert_eq!(c.sample(&mut r), 1);
        }
    }

    #[test]
    fn categorical_distinct_sampling() {
        let mut r = rng();
        let c = Categorical::new(&[1.0, 1.0, 1.0, 1.0]);
        let picks = c.sample_distinct(&mut r, 4);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn categorical_rejects_negative() {
        let _ = Categorical::new(&[0.5, -0.1]);
    }

    #[test]
    #[should_panic(expected = "zero")]
    fn categorical_rejects_all_zero() {
        let _ = Categorical::new(&[0.0, 0.0]);
    }
}
