//! The action-log data model (§II-A "a set of social actions (UGC) from the
//! users, such as reply/retweet in Twitter and citing actions in an academic
//! social network").
//!
//! An [`ActionLog`] records, per propagated *item* (a paper, an ad, a product
//! URL), the keywords describing it and the *trials* observed on edges: a
//! trial `(u → v, activated)` means `u` was active on the item and `v` was
//! exposed — `activated` tells whether the influence attempt succeeded
//! (v cited/forwarded) or not. Trials are exactly the sufficient statistics
//! the TIC EM learner consumes.

use octopus_graph::NodeId;
use octopus_topics::KeywordId;
use serde::{Deserialize, Serialize};

/// Identifier of an item in an action log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ItemId(pub u32);

impl ItemId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One propagated item: a paper, ad, or product.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Item {
    /// The item id (position in the log).
    pub id: ItemId,
    /// Keywords describing the item (deduplicated, order-irrelevant).
    pub keywords: Vec<KeywordId>,
    /// The user who originated the item (paper author, ad poster).
    pub origin: NodeId,
}

/// One influence trial on an edge for a specific item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trial {
    /// The item being propagated.
    pub item: ItemId,
    /// The already-active source user.
    pub src: NodeId,
    /// The exposed target user.
    pub dst: NodeId,
    /// Whether the target activated (cited / forwarded / bought).
    pub activated: bool,
}

/// A complete action log: items plus edge trials.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ActionLog {
    items: Vec<Item>,
    trials: Vec<Trial>,
}

impl ActionLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an item; returns its id.
    pub fn push_item(&mut self, origin: NodeId, mut keywords: Vec<KeywordId>) -> ItemId {
        keywords.sort_unstable();
        keywords.dedup();
        let id = ItemId(self.items.len() as u32);
        self.items.push(Item {
            id,
            keywords,
            origin,
        });
        id
    }

    /// Append a trial. `item` must already exist.
    pub fn push_trial(&mut self, item: ItemId, src: NodeId, dst: NodeId, activated: bool) {
        debug_assert!(
            item.index() < self.items.len(),
            "trial references unknown item"
        );
        self.trials.push(Trial {
            item,
            src,
            dst,
            activated,
        });
    }

    /// All items.
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// All trials, grouped by nothing in particular (use
    /// [`ActionLog::trials_by_item`] for EM).
    pub fn trials(&self) -> &[Trial] {
        &self.trials
    }

    /// Number of items.
    pub fn item_count(&self) -> usize {
        self.items.len()
    }

    /// Number of trials.
    pub fn trial_count(&self) -> usize {
        self.trials.len()
    }

    /// Trials bucketed per item (index = item id).
    pub fn trials_by_item(&self) -> Vec<Vec<&Trial>> {
        let mut out = vec![Vec::new(); self.items.len()];
        for t in &self.trials {
            out[t.item.index()].push(t);
        }
        out
    }

    /// Distinct `(src, dst)` pairs appearing in trials — the candidate edge
    /// set for the learned graph.
    pub fn edge_universe(&self) -> Vec<(NodeId, NodeId)> {
        let mut pairs: Vec<(NodeId, NodeId)> = self.trials.iter().map(|t| (t.src, t.dst)).collect();
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }

    /// Fraction of trials that activated (overall action success rate —
    /// a workload statistic reported by the harness).
    pub fn activation_rate(&self) -> f64 {
        if self.trials.is_empty() {
            return 0.0;
        }
        self.trials.iter().filter(|t| t.activated).count() as f64 / self.trials.len() as f64
    }

    /// Items originated by `u` (e.g., a researcher's papers) — the corpus
    /// from which personalized keyword suggestion draws its candidates.
    pub fn items_by_origin(&self, u: NodeId) -> Vec<&Item> {
        self.items.iter().filter(|i| i.origin == u).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kw(i: u32) -> KeywordId {
        KeywordId(i)
    }

    #[test]
    fn items_dedup_keywords() {
        let mut log = ActionLog::new();
        let id = log.push_item(NodeId(0), vec![kw(3), kw(1), kw(3)]);
        assert_eq!(log.items()[id.index()].keywords, vec![kw(1), kw(3)]);
    }

    #[test]
    fn trials_grouped_by_item() {
        let mut log = ActionLog::new();
        let a = log.push_item(NodeId(0), vec![kw(0)]);
        let b = log.push_item(NodeId(1), vec![kw(1)]);
        log.push_trial(a, NodeId(0), NodeId(1), true);
        log.push_trial(b, NodeId(1), NodeId(2), false);
        log.push_trial(a, NodeId(1), NodeId(2), true);
        let grouped = log.trials_by_item();
        assert_eq!(grouped[a.index()].len(), 2);
        assert_eq!(grouped[b.index()].len(), 1);
    }

    #[test]
    fn edge_universe_dedups() {
        let mut log = ActionLog::new();
        let a = log.push_item(NodeId(0), vec![kw(0)]);
        log.push_trial(a, NodeId(0), NodeId(1), true);
        log.push_trial(a, NodeId(0), NodeId(1), false);
        log.push_trial(a, NodeId(1), NodeId(0), false);
        assert_eq!(log.edge_universe().len(), 2);
    }

    #[test]
    fn activation_rate() {
        let mut log = ActionLog::new();
        let a = log.push_item(NodeId(0), vec![kw(0)]);
        assert_eq!(log.activation_rate(), 0.0);
        log.push_trial(a, NodeId(0), NodeId(1), true);
        log.push_trial(a, NodeId(0), NodeId(2), false);
        assert_eq!(log.activation_rate(), 0.5);
    }

    #[test]
    fn items_by_origin_filters() {
        let mut log = ActionLog::new();
        log.push_item(NodeId(5), vec![kw(0)]);
        log.push_item(NodeId(6), vec![kw(1)]);
        log.push_item(NodeId(5), vec![kw(2)]);
        assert_eq!(log.items_by_origin(NodeId(5)).len(), 2);
        assert_eq!(log.items_by_origin(NodeId(7)).len(), 0);
    }
}
