//! QQ-like messenger network generator (the paper's second demo dataset —
//! "the social graph consists of QQ users and their friendship. We focus on
//! the users' actions related to e-commerce products").
//!
//! Friendships grow by preferential attachment with configurable
//! reciprocity; users carry sparse product-category interests; the action
//! log contains product-URL posts ("user u posts an URL of iPhone X, and her
//! friend v forwards this URL") propagated by simulated TIC cascades.

use super::words::{themed_vocabulary, PRODUCT_TOPICS};
use super::{plant_edge_probs, sample_item_keywords, simulate_item_cascade, SyntheticNetwork};
use crate::actions::ActionLog;
use crate::dist::{dirichlet, zipf_weights, Categorical};
use octopus_graph::{GraphBuilder, NodeId};
use octopus_topics::{TopicDistribution, TopicModel, Vocabulary};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for the messenger-network generator.
#[derive(Debug, Clone)]
pub struct MessengerConfig {
    /// Number of users.
    pub users: usize,
    /// New friendship edges per arriving user (preferential attachment).
    pub links_per_user: usize,
    /// Probability a friendship is reciprocal (both directions influence).
    pub reciprocity: f64,
    /// Number of topics (product categories).
    pub num_topics: usize,
    /// Vocabulary size per topic.
    pub words_per_topic: usize,
    /// Number of product posts (items).
    pub items: usize,
    /// Min/max keywords per item.
    pub keywords_per_item: (usize, usize),
    /// Dirichlet concentration of user interests.
    pub interest_alpha: f64,
    /// Maximum topics with mass on one edge.
    pub max_edge_topics: usize,
    /// Cap on any single `pp^z_{u,v}`.
    pub edge_prob_cap: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MessengerConfig {
    fn default() -> Self {
        MessengerConfig {
            users: 3000,
            links_per_user: 4,
            reciprocity: 0.6,
            num_topics: 5,
            words_per_topic: 16,
            items: 2000,
            keywords_per_item: (1, 3),
            interest_alpha: 0.2,
            max_edge_topics: 2,
            edge_prob_cap: 0.5,
            seed: 0x9199,
        }
    }
}

const HANDLE_ADJ: &[&str] = &[
    "sunny", "swift", "lucky", "silver", "cosmic", "mellow", "neon", "breezy", "crimson", "jade",
    "amber", "frosty", "velvet", "electric", "quiet", "wild",
];
const HANDLE_NOUN: &[&str] = &[
    "otter", "falcon", "panda", "lynx", "koi", "sparrow", "tiger", "fox", "crane", "dolphin",
    "badger", "raven", "gecko", "wolf", "heron", "moth",
];

/// Deterministic user handle for index `i`.
pub fn user_handle(i: usize) -> String {
    let a = HANDLE_ADJ[i % HANDLE_ADJ.len()];
    let n = HANDLE_NOUN[(i / HANDLE_ADJ.len()) % HANDLE_NOUN.len()];
    format!("{a}_{n}_{i:05}")
}

impl MessengerConfig {
    /// Generate the network. Deterministic for a fixed config.
    pub fn generate(&self) -> SyntheticNetwork {
        assert!(self.users >= 2, "need at least two users");
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let z = self.num_topics;

        // Ground-truth product/topic model.
        let (labels, topic_words) = themed_vocabulary(PRODUCT_TOPICS, z, self.words_per_topic);
        let mut vocab = Vocabulary::new();
        let mut topic_word_ids: Vec<Vec<usize>> = Vec::with_capacity(z);
        for pool in &topic_words {
            topic_word_ids.push(pool.iter().map(|w| vocab.intern(w).index()).collect());
        }
        let v = vocab.len();
        let mut rows = vec![vec![0.0f64; v]; z];
        for (t, ids) in topic_word_ids.iter().enumerate() {
            let zipf = zipf_weights(ids.len(), 0.9);
            for (rank, &w) in ids.iter().enumerate() {
                rows[t][w] += 0.92 * zipf[rank];
            }
            for cell in rows[t].iter_mut() {
                *cell += 0.08 / v as f64;
            }
        }
        let prior = zipf_weights(z, 0.3);
        let model = TopicModel::from_rows(vocab, rows, prior)
            .expect("generator rows are valid")
            .with_labels(labels)
            .expect("label count matches");

        // User interests.
        let interests: Vec<Vec<f64>> = (0..self.users)
            .map(|_| dirichlet(&mut rng, &vec![self.interest_alpha; z]))
            .collect();

        // Preferential-attachment friendships.
        let mut edges: Vec<(u32, u32)> = Vec::new();
        let mut degree: Vec<f64> = vec![1.0; self.users]; // +1 smoothing
        for u in 1..self.users {
            let m = self.links_per_user.min(u);
            let cat = Categorical::new(&degree[..u]);
            let mut targets = Vec::with_capacity(m);
            let mut guard = 0;
            while targets.len() < m && guard < m * 60 {
                let t = cat.sample(&mut rng);
                if t != u && !targets.contains(&t) {
                    targets.push(t);
                }
                guard += 1;
            }
            for t in targets {
                edges.push((u as u32, t as u32));
                degree[u] += 1.0;
                degree[t] += 1.0;
                if rng.random::<f64>() < self.reciprocity {
                    edges.push((t as u32, u as u32));
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();

        let mut in_deg = vec![0usize; self.users];
        for &(_, t) in &edges {
            in_deg[t as usize] += 1;
        }
        let mut b = GraphBuilder::new(z).with_capacity(self.users, edges.len());
        for i in 0..self.users {
            b.add_node(user_handle(i));
        }
        for &(u, t) in &edges {
            let probs = plant_edge_probs(
                &mut rng,
                &interests[u as usize],
                &interests[t as usize],
                in_deg[t as usize],
                self.max_edge_topics,
                self.edge_prob_cap,
            );
            b.add_edge(NodeId(u), NodeId(t), &probs)
                .expect("generator edges valid");
        }
        let graph = b.build().expect("generator graph valid");

        // Product posts: heavy users post more; item topics track poster
        // interests loosely (people also share trending off-interest items).
        let poster = Categorical::new(&degree);
        let mut log = ActionLog::new();
        let mut visited = vec![false; graph.node_count()];
        for _ in 0..self.items {
            let u = poster.sample(&mut rng);
            let mut alpha: Vec<f64> = interests[u].iter().map(|&f| f * 8.0 + 0.05).collect();
            if rng.random::<f64>() < 0.15 {
                // trending item: off-profile topic
                alpha = vec![0.3; z];
            }
            let gamma = TopicDistribution::from_weights(dirichlet(&mut rng, &alpha))
                .expect("dirichlet draws are weights");
            let kw_count = rng.random_range(self.keywords_per_item.0..=self.keywords_per_item.1);
            let keywords = sample_item_keywords(&mut rng, &model, &gamma, kw_count.max(1));
            let item = log.push_item(NodeId(u as u32), keywords);
            simulate_item_cascade(
                &mut rng,
                &graph,
                &gamma,
                NodeId(u as u32),
                item,
                &mut log,
                &mut visited,
            );
        }

        SyntheticNetwork { graph, model, log }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_graph::stats::{degree_histogram, GraphStats};

    fn tiny() -> MessengerConfig {
        MessengerConfig {
            users: 80,
            links_per_user: 3,
            items: 120,
            num_topics: 3,
            words_per_topic: 8,
            seed: 11,
            ..Default::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny().generate();
        let b = tiny().generate();
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.log.trial_count(), b.log.trial_count());
    }

    #[test]
    fn graph_is_power_law_ish() {
        let net = MessengerConfig {
            users: 600,
            ..tiny()
        }
        .generate();
        let s = GraphStats::compute(&net.graph);
        assert_eq!(s.nodes, 600);
        assert!(
            s.max_out_degree > 3 * s.avg_out_degree as usize,
            "needs hubs"
        );
        let hist = degree_histogram(&net.graph);
        assert!(hist.len() >= 3, "degree spectrum too narrow: {hist:?}");
    }

    #[test]
    fn reciprocity_creates_back_edges() {
        let net = tiny().generate();
        let g = &net.graph;
        let mut reciprocal = 0usize;
        for e in g.edges() {
            let (u, v) = g.edge_endpoints(e).unwrap();
            if g.find_edge(v, u).is_some() {
                reciprocal += 1;
            }
        }
        assert!(
            reciprocal as f64 / g.edge_count() as f64 > 0.3,
            "reciprocal fraction too low: {reciprocal}/{}",
            g.edge_count()
        );
    }

    #[test]
    fn items_have_product_keywords() {
        let net = tiny().generate();
        assert_eq!(net.log.item_count(), 120);
        let kw = net.model.vocab().get("gum");
        assert!(kw.is_some(), "food stems must be interned");
    }

    #[test]
    fn game_query_maps_to_games_topic() {
        let net = tiny().generate();
        let gamma = net.infer("game").unwrap();
        assert_eq!(
            gamma.dominant_topic(),
            0,
            "'game' belongs to the games theme"
        );
    }

    #[test]
    fn handles_unique() {
        let net = tiny().generate();
        let mut names = net.graph.names().to_vec();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 80);
    }
}
