//! Themed vocabularies for the synthetic generators.
//!
//! Each topic gets a pool of domain stems (so demo output reads like the
//! paper's screenshots: "data mining", "neural network", "xylitol"…),
//! extended with derived variants when a larger vocabulary is requested.

/// Academic topic themes for the citation generator (label, stem pool).
pub const ACADEMIC_TOPICS: &[(&str, &[&str])] = &[
    (
        "databases",
        &[
            "query optimization",
            "indexing",
            "transaction",
            "data mining",
            "association rule",
            "sql",
            "schema design",
            "join processing",
            "column store",
            "data cleaning",
            "olap",
            "stream processing",
        ],
    ),
    (
        "machine learning",
        &[
            "neural network",
            "em algorithm",
            "clustering",
            "classification",
            "bayesian inference",
            "regression",
            "deep learning",
            "embedding",
            "reinforcement learning",
            "feature selection",
            "kernel method",
            "boosting",
        ],
    ),
    (
        "social networks",
        &[
            "influence maximization",
            "link prediction",
            "network evolution",
            "small-world phenomenon",
            "community detection",
            "viral marketing",
            "graph mining",
            "random walk",
            "centrality",
            "information diffusion",
            "social recommendation",
            "cascade model",
        ],
    ),
    (
        "systems",
        &[
            "distributed system",
            "consensus",
            "replication",
            "file system",
            "scheduling",
            "virtualization",
            "fault tolerance",
            "caching",
            "memory management",
            "concurrency control",
            "storage engine",
            "rpc",
        ],
    ),
    (
        "theory",
        &[
            "approximation algorithm",
            "complexity",
            "np-hardness",
            "randomized algorithm",
            "submodular optimization",
            "graph theory",
            "lower bound",
            "online algorithm",
            "combinatorics",
            "linear programming",
            "hashing theory",
            "sampling theory",
        ],
    ),
    (
        "information retrieval",
        &[
            "ranking",
            "topic model",
            "keyword search",
            "relevance feedback",
            "inverted index",
            "query expansion",
            "text summarization",
            "entity linking",
            "question answering",
            "web search",
            "crawling",
            "latent semantics",
        ],
    ),
    (
        "hci",
        &[
            "user study",
            "visualization",
            "interaction design",
            "crowdsourcing",
            "usability",
            "interface",
            "eye tracking",
            "accessibility",
            "mixed reality",
            "gesture recognition",
            "user modeling",
            "dashboard",
        ],
    ),
    (
        "security",
        &[
            "encryption",
            "authentication",
            "differential privacy",
            "intrusion detection",
            "access control",
            "malware analysis",
            "secure computation",
            "key exchange",
            "anonymity",
            "blockchain",
            "side channel",
            "threat model",
        ],
    ),
];

/// Consumer-product themes for the messenger generator (label, stem pool).
pub const PRODUCT_TOPICS: &[(&str, &[&str])] = &[
    (
        "games",
        &[
            "game",
            "mmorpg",
            "esports",
            "console",
            "strategy game",
            "mobile game",
            "game skin",
            "battle pass",
            "arcade",
            "puzzle game",
            "racing game",
            "gamepad",
        ],
    ),
    (
        "food",
        &[
            "gum",
            "strawberry",
            "xylitol",
            "chocolate",
            "bubble tea",
            "instant noodle",
            "snack box",
            "coffee",
            "hotpot",
            "candy",
            "mooncake",
            "energy drink",
        ],
    ),
    (
        "electronics",
        &[
            "smartphone",
            "earbuds",
            "laptop",
            "smart watch",
            "tablet",
            "power bank",
            "camera",
            "drone",
            "monitor",
            "mechanical keyboard",
            "router",
            "charger",
        ],
    ),
    (
        "fashion",
        &[
            "sneaker",
            "handbag",
            "lipstick",
            "sunglasses",
            "hoodie",
            "perfume",
            "skincare",
            "watch strap",
            "dress",
            "backpack",
            "jacket",
            "jewelry",
        ],
    ),
    (
        "travel",
        &[
            "flight deal",
            "hotel",
            "theme park",
            "road trip",
            "camping gear",
            "train pass",
            "cruise",
            "city tour",
            "luggage",
            "resort",
            "visa service",
            "travel insurance",
        ],
    ),
];

/// Build a vocabulary of at least `per_topic` words for each theme: the raw
/// stems first, then numbered variants ("query optimization ii", …) when the
/// pool runs dry. Returns `(labels, per-topic word lists)`.
pub fn themed_vocabulary(
    themes: &[(&str, &[&str])],
    num_topics: usize,
    per_topic: usize,
) -> (Vec<String>, Vec<Vec<String>>) {
    assert!(num_topics > 0, "need at least one topic");
    let mut labels = Vec::with_capacity(num_topics);
    let mut words = Vec::with_capacity(num_topics);
    for z in 0..num_topics {
        let (label, stems) = themes[z % themes.len()];
        // When num_topics exceeds the theme pool, disambiguate the label.
        let label = if z < themes.len() {
            label.to_string()
        } else {
            format!("{label} {}", z / themes.len() + 1)
        };
        let mut pool: Vec<String> = Vec::with_capacity(per_topic);
        let mut round = 0usize;
        while pool.len() < per_topic {
            for stem in stems {
                if pool.len() >= per_topic {
                    break;
                }
                let w = if round == 0 {
                    (*stem).to_string()
                } else {
                    format!("{stem} {}", roman(round + 1))
                };
                // Cross-topic duplicates are allowed (the topic model handles
                // shared words); within-topic must be unique.
                if z >= themes.len() {
                    pool.push(format!("{w} v{}", z / themes.len() + 1));
                } else {
                    pool.push(w);
                }
            }
            round += 1;
        }
        labels.push(label);
        words.push(pool);
    }
    (labels, words)
}

/// Tiny roman-numeral helper for word variants (1 ≤ n ≤ 20 is plenty).
fn roman(n: usize) -> String {
    const TABLE: &[(usize, &str)] = &[(10, "x"), (9, "ix"), (5, "v"), (4, "iv"), (1, "i")];
    let mut n = n;
    let mut out = String::new();
    for &(v, s) in TABLE {
        while n >= v {
            out.push_str(s);
            n -= v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabulary_sizes_and_labels() {
        let (labels, words) = themed_vocabulary(ACADEMIC_TOPICS, 4, 20);
        assert_eq!(labels.len(), 4);
        assert_eq!(words.len(), 4);
        assert_eq!(labels[0], "databases");
        for pool in &words {
            assert_eq!(pool.len(), 20);
            let mut d = pool.clone();
            d.sort();
            d.dedup();
            assert_eq!(d.len(), 20, "within-topic words must be unique");
        }
    }

    #[test]
    fn more_topics_than_themes_wraps_with_distinct_labels() {
        let (labels, words) = themed_vocabulary(PRODUCT_TOPICS, 7, 5);
        assert_eq!(labels.len(), 7);
        assert_ne!(labels[0], labels[5]);
        // wrapped topics get suffixed words so vocab entries stay distinct
        assert!(words[5].iter().all(|w| w.contains("v2")));
    }

    #[test]
    fn variants_kick_in_beyond_stem_pool() {
        let (_, words) = themed_vocabulary(ACADEMIC_TOPICS, 1, 30);
        assert_eq!(words[0].len(), 30);
        assert!(words[0].iter().any(|w| w.ends_with(" ii")));
    }

    #[test]
    fn roman_numerals() {
        assert_eq!(roman(2), "ii");
        assert_eq!(roman(4), "iv");
        assert_eq!(roman(9), "ix");
        assert_eq!(roman(14), "xiv");
    }
}
