//! ACMCite-like citation network generator (the paper's first demo dataset).
//!
//! Researchers arrive with sparse topic interests; papers carry topic
//! mixtures anchored to their author's interests and title keywords drawn
//! from the ground-truth `p(w|z)`; references follow preferential attachment
//! biased toward topically similar papers. The researcher influence graph
//! has an edge `u → v` whenever `v` cited `u` ("we regard a v's paper citing
//! a u's paper as an item propagated from u to v", §II-B).

use super::words::{themed_vocabulary, ACADEMIC_TOPICS};
use super::{plant_edge_probs, sample_item_keywords, simulate_item_cascade, SyntheticNetwork};
use crate::actions::ActionLog;
use crate::dist::{dirichlet, zipf_weights, Categorical};
use octopus_graph::{GraphBuilder, NodeId};
use octopus_topics::{TopicDistribution, TopicModel, Vocabulary};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Configuration for the citation-network generator.
#[derive(Debug, Clone)]
pub struct CitationConfig {
    /// Number of researchers.
    pub authors: usize,
    /// Number of papers (items in the action log).
    pub papers: usize,
    /// Number of topics `Z`.
    pub num_topics: usize,
    /// Vocabulary size per topic.
    pub words_per_topic: usize,
    /// Min/max title keywords per paper.
    pub keywords_per_paper: (usize, usize),
    /// Min/max references per paper.
    pub refs_per_paper: (usize, usize),
    /// Dirichlet concentration of author interests (`< 1` → focused).
    pub author_focus_alpha: f64,
    /// How tightly a paper's topic mixture tracks its author's interests.
    pub item_concentration: f64,
    /// Maximum topics with mass on one edge.
    pub max_edge_topics: usize,
    /// Cap on any single `pp^z_{u,v}`.
    pub edge_prob_cap: f64,
    /// RNG seed — generation is fully deterministic given the config.
    pub seed: u64,
}

impl Default for CitationConfig {
    fn default() -> Self {
        CitationConfig {
            authors: 1500,
            papers: 3000,
            num_topics: 8,
            words_per_topic: 24,
            keywords_per_paper: (4, 8),
            refs_per_paper: (2, 8),
            author_focus_alpha: 0.15,
            item_concentration: 25.0,
            max_edge_topics: 2,
            edge_prob_cap: 0.4,
            seed: 0xACAD,
        }
    }
}

const FIRST_NAMES: &[&str] = &[
    "wei", "mei", "jun", "yan", "ana", "ivan", "noor", "emma", "liam", "sofia", "omar", "priya",
    "hana", "kenji", "lucas", "nina", "tariq", "elena", "david", "laura", "mateo", "zoe", "arun",
    "ingrid", "pavel", "amara", "felix", "rosa", "dmitri", "leila",
];
const LAST_NAMES: &[&str] = &[
    "chen",
    "garcia",
    "kim",
    "nguyen",
    "patel",
    "mueller",
    "rossi",
    "tanaka",
    "kowalski",
    "silva",
    "haddad",
    "johansson",
    "okafor",
    "petrov",
    "yamamoto",
    "fernandez",
    "novak",
    "larsen",
    "rao",
    "moreau",
    "santos",
    "weber",
    "ito",
    "dubois",
    "hansen",
    "ali",
    "costa",
    "vasquez",
    "popescu",
    "zhou",
    "lindgren",
    "farouk",
    "oconnor",
    "bauer",
    "sato",
    "ramos",
    "keller",
    "dimitrov",
    "nakamura",
    "fischer",
];

/// Deterministic researcher name for index `i` (unique via numeric suffix
/// when the pool wraps).
pub fn researcher_name(i: usize) -> String {
    let f = FIRST_NAMES[i % FIRST_NAMES.len()];
    let l = LAST_NAMES[(i / FIRST_NAMES.len()) % LAST_NAMES.len()];
    let wrap = i / (FIRST_NAMES.len() * LAST_NAMES.len());
    if wrap == 0 {
        format!("{f} {l}")
    } else {
        format!("{f} {l} {}", wrap + 1)
    }
}

impl CitationConfig {
    /// Generate the network. Deterministic for a fixed config.
    pub fn generate(&self) -> SyntheticNetwork {
        assert!(self.authors >= 2, "need at least two authors");
        assert!(self.num_topics >= 1);
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let z = self.num_topics;

        // 1. Ground-truth topic model over a themed vocabulary.
        let (labels, topic_words) = themed_vocabulary(ACADEMIC_TOPICS, z, self.words_per_topic);
        let mut vocab = Vocabulary::new();
        let mut topic_word_ids: Vec<Vec<usize>> = Vec::with_capacity(z);
        for pool in &topic_words {
            topic_word_ids.push(pool.iter().map(|w| vocab.intern(w).index()).collect());
        }
        let v = vocab.len();
        let mut rows = vec![vec![0.0f64; v]; z];
        for (t, ids) in topic_word_ids.iter().enumerate() {
            // 90% of a topic's mass: Zipf over its own pool; 10%: uniform
            // background over the whole vocabulary (shared-word overlap).
            let zipf = zipf_weights(ids.len(), 1.05);
            for (rank, &w) in ids.iter().enumerate() {
                rows[t][w] += 0.9 * zipf[rank];
            }
            for cell in rows[t].iter_mut() {
                *cell += 0.1 / v as f64;
            }
        }
        let prior = zipf_weights(z, 0.4); // mildly skewed topic popularity
        let model = TopicModel::from_rows(vocab, rows, prior)
            .expect("generator rows are valid")
            .with_labels(labels)
            .expect("label count matches");

        // 2. Researchers: sparse interests + power-law productivity.
        let interests: Vec<Vec<f64>> = (0..self.authors)
            .map(|_| dirichlet(&mut rng, &vec![self.author_focus_alpha; z]))
            .collect();
        let productivity = Categorical::new(&zipf_weights(self.authors, 0.9));

        // 3. Papers with topically-biased preferential-attachment references.
        let mut paper_author: Vec<usize> = Vec::with_capacity(self.papers);
        let mut paper_gamma: Vec<TopicDistribution> = Vec::with_capacity(self.papers);
        let mut paper_cites: Vec<usize> = Vec::with_capacity(self.papers); // times cited
        let mut citation_pairs: HashMap<(u32, u32), u32> = HashMap::new();
        let mut log = ActionLog::new();

        for _ in 0..self.papers {
            let a = productivity.sample(&mut rng);
            let alpha_item: Vec<f64> = interests[a]
                .iter()
                .map(|&f| f * self.item_concentration + 0.02)
                .collect();
            let gamma = TopicDistribution::from_weights(dirichlet(&mut rng, &alpha_item))
                .expect("dirichlet draws are weights");
            let kw_count = rng.random_range(self.keywords_per_paper.0..=self.keywords_per_paper.1);
            let keywords = sample_item_keywords(&mut rng, &model, &gamma, kw_count.max(1));
            let item = log.push_item(NodeId(a as u32), keywords);
            debug_assert_eq!(item.index(), paper_author.len());

            // References to earlier papers: preferential attachment ×
            // topical similarity.
            let prev = paper_author.len();
            if prev > 0 {
                let want = rng
                    .random_range(self.refs_per_paper.0..=self.refs_per_paper.1)
                    .min(prev);
                let weights: Vec<f64> = (0..prev)
                    .map(|j| {
                        let sim: f64 = gamma
                            .iter()
                            .zip(paper_gamma[j].iter())
                            .map(|(x, y)| x * y)
                            .sum();
                        (paper_cites[j] as f64 + 1.0) * (sim + 0.02)
                    })
                    .collect();
                let cat = Categorical::new(&weights);
                let mut refs = Vec::with_capacity(want);
                let mut guard = 0;
                while refs.len() < want && guard < want * 50 {
                    let j = cat.sample(&mut rng);
                    if !refs.contains(&j) {
                        refs.push(j);
                    }
                    guard += 1;
                }
                for j in refs {
                    paper_cites[j] += 1;
                    let cited_author = paper_author[j] as u32;
                    let citing_author = a as u32;
                    if cited_author != citing_author {
                        *citation_pairs
                            .entry((cited_author, citing_author))
                            .or_insert(0) += 1;
                    }
                }
            }
            paper_author.push(a);
            paper_gamma.push(gamma);
            paper_cites.push(0);
        }

        // 4. Influence graph: cited → citing, WC-calibrated sparse topic probs.
        let mut in_deg: Vec<usize> = vec![0; self.authors];
        for &(_, v_) in citation_pairs.keys() {
            in_deg[v_ as usize] += 1;
        }
        let mut b = GraphBuilder::new(z).with_capacity(self.authors, citation_pairs.len());
        for i in 0..self.authors {
            b.add_node(researcher_name(i));
        }
        let mut pairs: Vec<(&(u32, u32), &u32)> = citation_pairs.iter().collect();
        pairs.sort(); // determinism independent of HashMap order
        for (&(u, v_), &count) in pairs {
            let mut probs = plant_edge_probs(
                &mut rng,
                &interests[u as usize],
                &interests[v_ as usize],
                in_deg[v_ as usize],
                self.max_edge_topics,
                self.edge_prob_cap,
            );
            // repeated citation strengthens the tie (log-saturating boost)
            let boost = 1.0 + (count as f64).ln() / 2.0;
            for (_, p) in probs.iter_mut() {
                *p = (*p * boost).min(self.edge_prob_cap);
            }
            b.add_edge(NodeId(u), NodeId(v_), &probs)
                .expect("generator edges valid");
        }
        let graph = b.build().expect("generator graph valid");

        // 5. Action log trials: simulate the TIC model per paper.
        let mut visited = vec![false; graph.node_count()];
        for item in 0..log.item_count() {
            let origin = NodeId(paper_author[item] as u32);
            let gamma = paper_gamma[item].clone();
            simulate_item_cascade(
                &mut rng,
                &graph,
                &gamma,
                origin,
                crate::actions::ItemId(item as u32),
                &mut log,
                &mut visited,
            );
        }

        SyntheticNetwork { graph, model, log }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_graph::stats::GraphStats;

    fn tiny() -> CitationConfig {
        CitationConfig {
            authors: 60,
            papers: 150,
            num_topics: 4,
            words_per_topic: 12,
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny().generate();
        let b = tiny().generate();
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.log.trial_count(), b.log.trial_count());
    }

    #[test]
    fn graph_shape_is_sane() {
        let net = tiny().generate();
        let s = GraphStats::compute(&net.graph);
        assert_eq!(s.nodes, 60);
        assert!(s.edges > 60, "citation graph too sparse: {} edges", s.edges);
        assert!(s.topics == 4);
        assert!(s.avg_edge_nnz <= 2.0 + 1e-9, "edges must be topic-sparse");
        assert!(s.avg_max_prob <= 0.4 + 1e-6);
    }

    #[test]
    fn names_are_unique_and_resolvable() {
        let net = tiny().generate();
        let mut names: Vec<String> = net.graph.names().to_vec();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 60);
        let n0 = researcher_name(0);
        assert_eq!(net.graph.node_by_name(&n0), Some(NodeId(0)));
    }

    #[test]
    fn action_log_has_items_and_trials() {
        let net = tiny().generate();
        assert_eq!(net.log.item_count(), 150);
        assert!(net.log.trial_count() > 0, "cascades must produce trials");
        let rate = net.log.activation_rate();
        assert!(
            rate > 0.0 && rate < 1.0,
            "activation rate {rate} should be interior"
        );
    }

    #[test]
    fn paper_keywords_align_with_topics() {
        let net = tiny().generate();
        // items exist and have keywords within vocab
        for item in net.log.items().iter().take(20) {
            assert!(!item.keywords.is_empty());
            for &w in &item.keywords {
                assert!(net.model.vocab().word(w).is_ok());
            }
        }
    }

    #[test]
    fn keyword_query_resolves_on_ground_truth_model() {
        let net = tiny().generate();
        let gamma = net.infer("data mining").unwrap();
        // "data mining" belongs to the databases theme = topic 0
        assert_eq!(gamma.dominant_topic(), 0);
    }

    #[test]
    fn wrapped_names_stay_unique() {
        assert_ne!(
            researcher_name(0),
            researcher_name(FIRST_NAMES.len() * LAST_NAMES.len())
        );
    }
}
