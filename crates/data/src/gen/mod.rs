//! Synthetic network generators with planted ground truth.
//!
//! Both generators follow the same recipe:
//!
//! 1. build a **ground-truth topic model** (`p(w|z)`, topic priors) over a
//!    themed vocabulary;
//! 2. grow a **social graph** whose structure matches the target network
//!    class (citation DAG collapsed to researchers; power-law messenger
//!    friendships) and plant sparse per-edge, per-topic probabilities
//!    aligned with the endpoints' interests (the topic-sparsity observed on
//!    real networks);
//! 3. **simulate the TIC model itself** to emit an action log of items and
//!    edge trials.
//!
//! Because the log is generated *by* the model the EM learner assumes,
//! parameter-recovery experiments (E7) are well-posed, and every analysis
//! can be validated against the planted truth.

mod citation;
mod messenger;
pub mod words;

pub use citation::CitationConfig;
pub use messenger::MessengerConfig;

use crate::actions::ActionLog;
use crate::dist::Categorical;
use octopus_graph::{NodeId, TopicGraph};
use octopus_topics::{KeywordId, TopicDistribution, TopicModel};
use rand::rngs::SmallRng;
use rand::Rng;

/// A generated network: ground-truth graph + topic model + action log.
#[derive(Debug, Clone)]
pub struct SyntheticNetwork {
    /// Ground-truth topic-aware influence graph (named nodes).
    pub graph: TopicGraph,
    /// Ground-truth keyword/topic model (with topic labels).
    pub model: TopicModel,
    /// Simulated action log (items + trials).
    pub log: ActionLog,
}

impl SyntheticNetwork {
    /// Convenience: resolve a keyword query against the ground-truth model.
    pub fn infer(&self, query: &str) -> octopus_topics::Result<TopicDistribution> {
        self.model.infer_str(query)
    }
}

/// Sample `count` distinct keywords for an item with topic mixture `gamma`:
/// keyword `w` is drawn with probability `Σ_z γ_z · p(w|z)`.
pub(crate) fn sample_item_keywords(
    rng: &mut SmallRng,
    model: &TopicModel,
    gamma: &TopicDistribution,
    count: usize,
) -> Vec<KeywordId> {
    let v = model.vocab_size();
    let mut weights = vec![0.0f64; v];
    for z in 0..model.num_topics() {
        let gz = gamma[z];
        if gz <= 0.0 {
            continue;
        }
        for (w, weight) in weights.iter_mut().enumerate() {
            *weight += gz * model.p_word_given_topic(KeywordId(w as u32), z);
        }
    }
    let cat = Categorical::new(&weights);
    cat.sample_distinct(rng, count.min(v))
        .into_iter()
        .map(|w| KeywordId(w as u32))
        .collect()
}

/// Simulate one TIC cascade for an item and append its trials to the log.
///
/// Standard IC semantics: each newly activated user gets one chance per
/// out-edge; *every* attempt (success or failure) is recorded as a trial —
/// the sufficient statistics EM needs.
pub(crate) fn simulate_item_cascade(
    rng: &mut SmallRng,
    graph: &TopicGraph,
    gamma: &TopicDistribution,
    origin: NodeId,
    item: crate::actions::ItemId,
    log: &mut ActionLog,
    visited: &mut [bool],
) -> usize {
    debug_assert_eq!(visited.len(), graph.node_count());
    let mut queue = vec![origin];
    visited[origin.index()] = true;
    let mut head = 0usize;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        for (v, e) in graph.out_edges(u) {
            if visited[v.index()] {
                continue;
            }
            let p = graph.edge_prob(e, gamma.as_slice());
            let activated = p > 0.0 && rng.random::<f64>() < p;
            log.push_trial(item, u, v, activated);
            if activated {
                visited[v.index()] = true;
                queue.push(v);
            }
        }
    }
    let activated = queue.len();
    for u in queue {
        visited[u.index()] = false;
    }
    activated
}

/// Plant sparse per-edge topic probabilities for an edge `(u, v)` given the
/// endpoints' interest vectors, under weighted-cascade-style normalization.
///
/// The edge's topic support is the element-wise product of the endpoint
/// interests (top-`max_topics` entries), so edges end up topic-sparse; the
/// total mass is `scale / in_degree(v)` (the classic WC calibration that
/// keeps cascades sub-exponential), capped at `cap`.
pub(crate) fn plant_edge_probs(
    rng: &mut SmallRng,
    interests_u: &[f64],
    interests_v: &[f64],
    in_degree_v: usize,
    max_topics: usize,
    cap: f64,
) -> Vec<(usize, f64)> {
    let z = interests_u.len();
    let mut weights: Vec<(usize, f64)> = (0..z)
        .map(|t| (t, interests_u[t] * interests_v[t]))
        .filter(|&(_, w)| w > 1e-12)
        .collect();
    if weights.is_empty() {
        // disjoint interests: fall back to u's dominant topic with tiny mass
        let t = interests_u
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .unwrap_or(0);
        weights.push((t, 1.0));
    }
    weights.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    weights.truncate(max_topics.max(1));
    let total_w: f64 = weights.iter().map(|&(_, w)| w).sum();
    let scale: f64 = 0.5 + rng.random::<f64>(); // U(0.5, 1.5)
    let budget = (scale / (in_degree_v.max(1) as f64)).min(cap);
    weights
        .into_iter()
        .map(|(t, w)| (t, (budget * w / total_w).clamp(1e-4, cap)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn planted_probs_are_sparse_and_bounded() {
        let mut rng = SmallRng::seed_from_u64(1);
        let u = [0.7, 0.3, 0.0, 0.0];
        let v = [0.5, 0.5, 0.0, 0.0];
        let probs = plant_edge_probs(&mut rng, &u, &v, 5, 2, 0.9);
        assert!(!probs.is_empty() && probs.len() <= 2);
        for &(t, p) in &probs {
            assert!(t < 4);
            assert!((1e-4..=0.9).contains(&p), "p={p}");
        }
        // the shared-interest topics must be the support
        assert!(probs.iter().all(|&(t, _)| t < 2));
    }

    #[test]
    fn disjoint_interests_still_yield_an_edge() {
        let mut rng = SmallRng::seed_from_u64(2);
        let u = [1.0, 0.0];
        let v = [0.0, 1.0];
        let probs = plant_edge_probs(&mut rng, &u, &v, 3, 2, 0.9);
        assert_eq!(probs.len(), 1);
        assert_eq!(probs[0].0, 0, "falls back to u's dominant topic");
    }

    #[test]
    fn higher_in_degree_means_weaker_edges() {
        let mut rng = SmallRng::seed_from_u64(3);
        let u = [1.0, 0.0];
        let v = [1.0, 0.0];
        let lo: f64 = (0..200)
            .map(|_| plant_edge_probs(&mut rng, &u, &v, 2, 1, 0.9)[0].1)
            .sum::<f64>()
            / 200.0;
        let hi: f64 = (0..200)
            .map(|_| plant_edge_probs(&mut rng, &u, &v, 50, 1, 0.9)[0].1)
            .sum::<f64>()
            / 200.0;
        assert!(lo > hi * 5.0, "lo={lo} hi={hi}");
    }
}
