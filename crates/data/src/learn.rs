//! Expectation–maximization learning of the topic-aware IC model
//! (Barbieri, Bonchi, Manco — "Topic-aware social influence propagation
//! models", ICDM 2012 \[2\]; the learner OCTOPUS §II-B invokes).
//!
//! ## Model
//!
//! Each log item `i` carries a latent topic `z_i` drawn from prior `π`. Given
//! `z_i = z`, the item's keywords are i.i.d. draws from `p(w|z)` and each
//! edge trial `(u→v)` succeeds with probability `pp^z_{u,v}`. The complete
//! per-item likelihood is therefore
//!
//! ```text
//! P(i | z) = Π_{w∈W_i} p(w|z) · Π_{(u,v,+)∈i} pp^z_{u,v} · Π_{(u,v,−)∈i} (1 − pp^z_{u,v})
//! ```
//!
//! EM alternates soft topic responsibilities `q_i(z) ∝ π_z·P(i|z)` (E-step)
//! with closed-form smoothed updates of `π`, `p(w|z)` and `pp^z` (M-step).
//! Laplace/Beta smoothing makes every update well-defined on sparse logs and
//! acts as a MAP prior.
//!
//! The learner outputs a ready-to-query [`octopus_graph::TopicGraph`] +
//! [`octopus_topics::TopicModel`] pair, and the per-iteration observed-data
//! log-likelihood for convergence monitoring. [`align_topics`] resolves the
//! label-switching ambiguity when comparing a learned model with a planted
//! one (experiment E7).

use crate::actions::ActionLog;
use octopus_graph::{GraphBuilder, NodeId, TopicGraph};
use octopus_topics::{KeywordId, TopicModel, Vocabulary};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// EM hyper-parameters.
#[derive(Debug, Clone)]
pub struct EmOptions {
    /// Number of topics `Z` to fit.
    pub num_topics: usize,
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Relative log-likelihood improvement below which EM stops.
    pub tol: f64,
    /// Laplace smoothing `η` for `p(w|z)`.
    pub word_smoothing: f64,
    /// Beta prior pseudo-counts `(α, β)` for edge probabilities.
    pub edge_smoothing: (f64, f64),
    /// Floor below which a learned per-topic edge probability is dropped
    /// from the sparse graph (keeps edges topic-sparse like the real data).
    pub prob_floor: f64,
    /// RNG seed for the random initialization.
    pub seed: u64,
}

impl Default for EmOptions {
    fn default() -> Self {
        EmOptions {
            num_topics: 8,
            max_iters: 40,
            tol: 1e-5,
            word_smoothing: 0.1,
            edge_smoothing: (0.25, 1.0),
            prob_floor: 2e-3,
            seed: 0xE11,
        }
    }
}

/// A fitted topic-aware influence model.
#[derive(Debug, Clone)]
pub struct LearnedModel {
    /// Learned influence graph with per-edge per-topic probabilities.
    pub graph: TopicGraph,
    /// Learned keyword model (`p(w|z)` + priors).
    pub model: TopicModel,
    /// Observed-data log-likelihood after each iteration.
    pub log_likelihood: Vec<f64>,
    /// Iterations actually run.
    pub iterations: usize,
}

/// The EM learner. Construct with options, call [`TicEm::fit`].
#[derive(Debug, Clone)]
pub struct TicEm {
    opts: EmOptions,
}

impl TicEm {
    /// Create a learner.
    pub fn new(opts: EmOptions) -> Self {
        TicEm { opts }
    }

    /// Fit the model to `log`. `vocab` is the keyword universe the items
    /// reference; `node_names` determines the node count (and display names)
    /// of the learned graph — pass the social graph's member list.
    ///
    /// # Panics
    /// Panics when the log is empty or references nodes/keywords outside the
    /// provided universes (a data-preparation bug worth failing loudly on).
    pub fn fit(&self, log: &ActionLog, vocab: Vocabulary, node_names: Vec<String>) -> LearnedModel {
        self.fit_with_init(log, vocab, node_names, None)
    }

    /// Incremental refit: initialize from a previously learned model (warm
    /// start). This is the update path for evolving action logs — the
    /// dynamic-stream setting of the paper's reference \[9\]: rather than
    /// relearning from a random initialization every time new actions
    /// arrive, EM resumes from the old parameters and typically converges
    /// in a fraction of the iterations (tested below).
    ///
    /// The previous model's vocabulary must be a prefix of `vocab` (new
    /// keywords may be appended); edges absent from the previous graph get
    /// the default initialization.
    pub fn fit_warm(
        &self,
        log: &ActionLog,
        vocab: Vocabulary,
        node_names: Vec<String>,
        previous: &LearnedModel,
    ) -> LearnedModel {
        self.fit_with_init(log, vocab, node_names, Some(previous))
    }

    fn fit_with_init(
        &self,
        log: &ActionLog,
        vocab: Vocabulary,
        node_names: Vec<String>,
        warm: Option<&LearnedModel>,
    ) -> LearnedModel {
        let z_count = self.opts.num_topics;
        let v_count = vocab.len();
        let n_items = log.item_count();
        assert!(z_count > 0, "need at least one topic");
        assert!(n_items > 0, "cannot fit an empty action log");
        assert!(v_count > 0, "cannot fit with an empty vocabulary");

        // --- index the log ---
        let edges: Vec<(NodeId, NodeId)> = log.edge_universe();
        let edge_idx: HashMap<(NodeId, NodeId), usize> = edges
            .iter()
            .copied()
            .enumerate()
            .map(|(i, e)| (e, i))
            .collect();
        let n_edges = edges.len();
        // per item: (keyword ids, [(edge idx, activated)])
        let mut item_words: Vec<&[KeywordId]> = Vec::with_capacity(n_items);
        for item in log.items() {
            for &w in &item.keywords {
                assert!(w.index() < v_count, "item references unknown keyword {w:?}");
            }
            item_words.push(&item.keywords);
        }
        let mut item_trials: Vec<Vec<(u32, bool)>> = vec![Vec::new(); n_items];
        for t in log.trials() {
            let e = edge_idx[&(t.src, t.dst)] as u32;
            item_trials[t.item.index()].push((e, t.activated));
        }

        // --- initialization: warm start from a previous fit, or smoothed
        // uniform + jitter ---
        let mut rng = SmallRng::seed_from_u64(self.opts.seed);
        let base_rate = log.activation_rate().clamp(0.05, 0.6);
        let mut pi = vec![1.0 / z_count as f64; z_count];
        let mut pwz = vec![0.0f64; z_count * v_count];
        let mut ppz = vec![0.0f64; z_count * n_edges];
        match warm {
            Some(prev) => {
                assert_eq!(
                    prev.model.num_topics(),
                    z_count,
                    "warm start requires the same topic count"
                );
                assert!(
                    prev.model.vocab_size() <= v_count,
                    "previous vocabulary must be a prefix of the new one"
                );
                for z in 0..z_count {
                    pi[z] = prev.model.topic_prior(z);
                    for w in 0..v_count {
                        pwz[z * v_count + w] = if w < prev.model.vocab_size() {
                            prev.model.p_word_given_topic(KeywordId(w as u32), z)
                        } else {
                            1.0 / v_count as f64 // unseen keyword: uniform mass
                        };
                    }
                }
                normalize_rows(&mut pwz, z_count, v_count);
                for (ei, &(u, v)) in edges.iter().enumerate() {
                    let prev_edge = prev.graph.find_edge(u, v);
                    for z in 0..z_count {
                        ppz[z * n_edges + ei] = match prev_edge {
                            Some(pe) => (prev
                                .graph
                                .edge_prob_topic(pe, octopus_graph::TopicId(z as u16))
                                as f64)
                                .clamp(1e-3, 0.99),
                            None => (base_rate * (0.5 + rng.random::<f64>())).clamp(1e-3, 0.99),
                        };
                    }
                }
            }
            None => {
                for p in pwz.iter_mut() {
                    *p = 1.0 / v_count as f64 * (0.5 + rng.random::<f64>());
                }
                normalize_rows(&mut pwz, z_count, v_count);
                for p in ppz.iter_mut() {
                    *p = (base_rate * (0.5 + rng.random::<f64>())).clamp(1e-3, 0.99);
                }
            }
        }

        // --- EM loop ---
        let (alpha, beta) = self.opts.edge_smoothing;
        let eta = self.opts.word_smoothing;
        let mut resp = vec![0.0f64; n_items * z_count];
        let mut loglik_trace = Vec::with_capacity(self.opts.max_iters);
        let mut iterations = 0usize;

        for iter in 0..self.opts.max_iters {
            // E-step
            let mut loglik = 0.0f64;
            for i in 0..n_items {
                let mut logp = vec![0.0f64; z_count];
                for (z, lp) in logp.iter_mut().enumerate() {
                    let mut acc = pi[z].max(1e-300).ln();
                    for &w in item_words[i] {
                        acc += pwz[z * v_count + w.index()].max(1e-300).ln();
                    }
                    for &(e, act) in &item_trials[i] {
                        let p = ppz[z * n_edges + e as usize];
                        acc += if act {
                            p.max(1e-300).ln()
                        } else {
                            (1.0 - p).max(1e-300).ln()
                        };
                    }
                    *lp = acc;
                }
                let max = logp.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let mut sum = 0.0;
                for (z, &lp) in logp.iter().enumerate() {
                    let e = (lp - max).exp();
                    resp[i * z_count + z] = e;
                    sum += e;
                }
                for z in 0..z_count {
                    resp[i * z_count + z] /= sum;
                }
                loglik += max + sum.ln();
            }
            loglik_trace.push(loglik);
            iterations = iter + 1;

            // convergence check on relative improvement
            if iter > 0 {
                let prev = loglik_trace[iter - 1];
                let rel = (loglik - prev).abs() / prev.abs().max(1.0);
                if rel < self.opts.tol {
                    break;
                }
            }

            // M-step
            // π
            let mut z_mass = vec![0.0f64; z_count];
            for i in 0..n_items {
                for z in 0..z_count {
                    z_mass[z] += resp[i * z_count + z];
                }
            }
            for z in 0..z_count {
                pi[z] = (z_mass[z] + 0.5) / (n_items as f64 + 0.5 * z_count as f64);
            }
            // p(w|z)
            pwz.iter_mut().for_each(|p| *p = 0.0);
            let mut row_mass = vec![0.0f64; z_count];
            for i in 0..n_items {
                for &w in item_words[i] {
                    for z in 0..z_count {
                        pwz[z * v_count + w.index()] += resp[i * z_count + z];
                    }
                }
                for z in 0..z_count {
                    row_mass[z] += resp[i * z_count + z] * item_words[i].len() as f64;
                }
            }
            for z in 0..z_count {
                let denom = row_mass[z] + eta * v_count as f64;
                for w in 0..v_count {
                    pwz[z * v_count + w] = (pwz[z * v_count + w] + eta) / denom;
                }
            }
            // pp^z per edge
            let mut succ = vec![0.0f64; z_count * n_edges];
            let mut tot = vec![0.0f64; z_count * n_edges];
            for i in 0..n_items {
                for &(e, act) in &item_trials[i] {
                    for z in 0..z_count {
                        let q = resp[i * z_count + z];
                        tot[z * n_edges + e as usize] += q;
                        if act {
                            succ[z * n_edges + e as usize] += q;
                        }
                    }
                }
            }
            for j in 0..z_count * n_edges {
                ppz[j] = ((succ[j] + alpha) / (tot[j] + alpha + beta)).clamp(1e-4, 0.995);
            }
        }

        // --- package the result ---
        let mut builder = GraphBuilder::new(z_count).with_capacity(node_names.len(), n_edges);
        for name in &node_names {
            builder.add_node(name.clone());
        }
        for (ei, &(u, v)) in edges.iter().enumerate() {
            let mut sparse: Vec<(usize, f64)> = (0..z_count)
                .map(|z| (z, ppz[z * n_edges + ei]))
                .filter(|&(_, p)| p >= self.opts.prob_floor)
                .collect();
            if sparse.is_empty() {
                // keep the strongest topic so the edge survives
                let best = (0..z_count)
                    .max_by(|&a, &b| {
                        ppz[a * n_edges + ei]
                            .partial_cmp(&ppz[b * n_edges + ei])
                            .expect("finite")
                    })
                    .expect("z_count > 0");
                sparse.push((best, ppz[best * n_edges + ei]));
            }
            builder
                .add_edge(u, v, &sparse)
                .expect("log nodes within universe");
        }
        let graph = builder.build().expect("learned graph is valid");

        let rows: Vec<Vec<f64>> = (0..z_count)
            .map(|z| pwz[z * v_count..(z + 1) * v_count].to_vec())
            .collect();
        let model =
            TopicModel::from_rows(vocab, rows, pi.clone()).expect("learned rows are normalized");

        LearnedModel {
            graph,
            model,
            log_likelihood: loglik_trace,
            iterations,
        }
    }
}

fn normalize_rows(m: &mut [f64], rows: usize, cols: usize) {
    for r in 0..rows {
        let s: f64 = m[r * cols..(r + 1) * cols].iter().sum();
        if s > 0.0 {
            for x in &mut m[r * cols..(r + 1) * cols] {
                *x /= s;
            }
        }
    }
}

/// Resolve topic label-switching: greedily match each learned topic to the
/// planted topic whose `p(w|z)` row it correlates with best (cosine).
/// Returns `perm` with `perm[learned_z] = true_z`.
pub fn align_topics(learned: &TopicModel, truth: &TopicModel) -> Vec<usize> {
    assert_eq!(
        learned.vocab_size(),
        truth.vocab_size(),
        "vocabularies must match"
    );
    let zl = learned.num_topics();
    let zt = truth.num_topics();
    let v = learned.vocab_size();
    let mut sims = vec![0.0f64; zl * zt];
    for a in 0..zl {
        for b in 0..zt {
            let mut dot = 0.0;
            let mut na = 0.0;
            let mut nb = 0.0;
            for w in 0..v {
                let x = learned.p_word_given_topic(KeywordId(w as u32), a);
                let y = truth.p_word_given_topic(KeywordId(w as u32), b);
                dot += x * y;
                na += x * x;
                nb += y * y;
            }
            sims[a * zt + b] = dot / (na.sqrt() * nb.sqrt()).max(1e-300);
        }
    }
    // greedy max assignment
    let mut perm = vec![usize::MAX; zl];
    let mut used = vec![false; zt];
    let mut order: Vec<(usize, usize, f64)> = (0..zl)
        .flat_map(|a| (0..zt).map(move |b| (a, b, 0.0)))
        .collect();
    for entry in order.iter_mut() {
        entry.2 = sims[entry.0 * zt + entry.1];
    }
    order.sort_by(|x, y| y.2.partial_cmp(&x.2).expect("finite sims"));
    for (a, b, _) in order {
        if perm[a] == usize::MAX && !used[b] {
            perm[a] = b;
            used[b] = true;
        }
    }
    // leftovers (zl > zt): map to best row regardless of use
    for a in 0..zl {
        if perm[a] == usize::MAX {
            perm[a] = (0..zt)
                .max_by(|&x, &y| {
                    sims[a * zt + x]
                        .partial_cmp(&sims[a * zt + y])
                        .expect("finite")
                })
                .expect("zt > 0");
        }
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actions::ActionLog;
    use crate::gen::CitationConfig;

    /// Hand-built two-topic log with a strong planted signal.
    fn planted_log() -> (ActionLog, Vocabulary) {
        let mut vocab = Vocabulary::new();
        let wa = vocab.intern("alpha-word");
        let wb = vocab.intern("beta-word");
        let mut log = ActionLog::new();
        // Topic A items: keyword alpha, edge (0→1) almost always activates,
        // edge (0→2) almost never.
        // Topic B items: keyword beta, the reverse.
        for i in 0..60 {
            let a_item = log.push_item(NodeId(0), vec![wa]);
            log.push_trial(a_item, NodeId(0), NodeId(1), i % 10 != 0); // ~90%
            log.push_trial(a_item, NodeId(0), NodeId(2), i % 10 == 0); // ~10%
            let b_item = log.push_item(NodeId(0), vec![wb]);
            log.push_trial(b_item, NodeId(0), NodeId(1), i % 10 == 0);
            log.push_trial(b_item, NodeId(0), NodeId(2), i % 10 != 0);
        }
        (log, vocab)
    }

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("n{i}")).collect()
    }

    #[test]
    fn loglik_is_monotone_non_decreasing() {
        let (log, vocab) = planted_log();
        let em = TicEm::new(EmOptions {
            num_topics: 2,
            max_iters: 25,
            ..Default::default()
        });
        let fit = em.fit(&log, vocab, names(3));
        for w in fit.log_likelihood.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-6,
                "loglik decreased: {:?}",
                fit.log_likelihood
            );
        }
        assert!(fit.iterations >= 2);
    }

    #[test]
    fn planted_two_topic_structure_is_recovered() {
        let (log, vocab) = planted_log();
        let em = TicEm::new(EmOptions {
            num_topics: 2,
            max_iters: 50,
            ..Default::default()
        });
        let fit = em.fit(&log, vocab, names(3));
        let g = &fit.graph;
        let m = &fit.model;
        let wa = m.vocab().get("alpha-word").unwrap();
        // Which learned topic does alpha-word map to?
        let za = m.keyword_topics(wa).unwrap().dominant_topic();
        let zb = 1 - za;
        let e01 = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        let e02 = g.find_edge(NodeId(0), NodeId(2)).unwrap();
        let p01_a = g.edge_prob_topic(e01, octopus_graph::TopicId(za as u16));
        let p02_a = g.edge_prob_topic(e02, octopus_graph::TopicId(za as u16));
        let p01_b = g.edge_prob_topic(e01, octopus_graph::TopicId(zb as u16));
        let p02_b = g.edge_prob_topic(e02, octopus_graph::TopicId(zb as u16));
        assert!(
            p01_a > 0.7,
            "edge 0→1 under topic A should be strong: {p01_a}"
        );
        assert!(
            p02_a < 0.3,
            "edge 0→2 under topic A should be weak: {p02_a}"
        );
        assert!(
            p01_b < 0.3,
            "edge 0→1 under topic B should be weak: {p01_b}"
        );
        assert!(
            p02_b > 0.7,
            "edge 0→2 under topic B should be strong: {p02_b}"
        );
    }

    #[test]
    fn learned_graph_has_all_log_edges() {
        let (log, vocab) = planted_log();
        let em = TicEm::new(EmOptions {
            num_topics: 2,
            ..Default::default()
        });
        let fit = em.fit(&log, vocab, names(3));
        assert_eq!(fit.graph.edge_count(), 2);
        assert_eq!(fit.graph.node_count(), 3);
        assert_eq!(fit.graph.name(NodeId(1)), Some("n1"));
    }

    #[test]
    fn recovery_on_generated_network() {
        // End-to-end: generate → learn → align → compare edge probabilities.
        let net = CitationConfig {
            authors: 40,
            papers: 600,
            num_topics: 3,
            words_per_topic: 10,
            seed: 5,
            ..Default::default()
        }
        .generate();
        let em = TicEm::new(EmOptions {
            num_topics: 3,
            max_iters: 40,
            seed: 9,
            ..Default::default()
        });
        let fit = em.fit(
            &net.log,
            net.model.vocab().clone(),
            net.graph.names().to_vec(),
        );
        let perm = align_topics(&fit.model, &net.model);

        // Compare planted vs learned probability on edges with enough trials.
        let mut err_sum = 0.0f64;
        let mut count = 0usize;
        let mut trials_per_edge: HashMap<(NodeId, NodeId), usize> = HashMap::new();
        for t in net.log.trials() {
            *trials_per_edge.entry((t.src, t.dst)).or_insert(0) += 1;
        }
        for e in fit.graph.edges() {
            let (u, v) = fit.graph.edge_endpoints(e).unwrap();
            if trials_per_edge.get(&(u, v)).copied().unwrap_or(0) < 20 {
                continue;
            }
            let Some(te) = net.graph.find_edge(u, v) else {
                continue;
            };
            for (zl, &pz) in perm.iter().enumerate().take(3) {
                let learned = fit
                    .graph
                    .edge_prob_topic(e, octopus_graph::TopicId(zl as u16));
                let truth = net
                    .graph
                    .edge_prob_topic(te, octopus_graph::TopicId(pz as u16));
                err_sum += (learned as f64 - truth as f64).abs();
                count += 1;
            }
        }
        assert!(count > 0, "no well-observed edges to compare");
        let mae = err_sum / count as f64;
        assert!(mae < 0.2, "edge-probability MAE too high: {mae}");
    }

    #[test]
    fn align_topics_is_identity_for_same_model() {
        let net = CitationConfig {
            authors: 20,
            papers: 60,
            num_topics: 4,
            words_per_topic: 8,
            seed: 3,
            ..Default::default()
        }
        .generate();
        let perm = align_topics(&net.model, &net.model);
        assert_eq!(perm, vec![0, 1, 2, 3]);
    }

    #[test]
    fn warm_start_converges_faster_on_extended_log() {
        // learn on a prefix, extend the log, compare cold vs warm refits
        let net = CitationConfig {
            authors: 40,
            papers: 400,
            num_topics: 3,
            words_per_topic: 10,
            seed: 8,
            ..Default::default()
        }
        .generate();
        let em = TicEm::new(EmOptions {
            num_topics: 3,
            max_iters: 60,
            tol: 1e-6,
            ..Default::default()
        });
        let first = em.fit(
            &net.log,
            net.model.vocab().clone(),
            net.graph.names().to_vec(),
        );

        // "new actions arrive": refit the same log (worst case for cold,
        // best case for warm — the point is the iteration-count gap)
        let cold = em.fit(
            &net.log,
            net.model.vocab().clone(),
            net.graph.names().to_vec(),
        );
        let warm = em.fit_warm(
            &net.log,
            net.model.vocab().clone(),
            net.graph.names().to_vec(),
            &first,
        );
        assert!(
            warm.iterations < cold.iterations,
            "warm {} should beat cold {} iterations",
            warm.iterations,
            cold.iterations
        );
        // and reach at least the same likelihood
        let lw = warm.log_likelihood.last().unwrap();
        let lc = cold.log_likelihood.last().unwrap();
        assert!(
            lw >= &(lc - lc.abs() * 1e-3),
            "warm loglik {lw} vs cold {lc}"
        );
    }

    #[test]
    #[should_panic(expected = "same topic count")]
    fn warm_start_topic_mismatch_panics() {
        let (log, vocab) = planted_log();
        let em2 = TicEm::new(EmOptions {
            num_topics: 2,
            max_iters: 5,
            ..Default::default()
        });
        let em3 = TicEm::new(EmOptions {
            num_topics: 3,
            max_iters: 5,
            ..Default::default()
        });
        let prev = em2.fit(&log, vocab.clone(), names(3));
        let _ = em3.fit_warm(&log, vocab, names(3), &prev);
    }

    #[test]
    #[should_panic(expected = "empty action log")]
    fn empty_log_panics() {
        let mut vocab = Vocabulary::new();
        vocab.intern("x");
        let em = TicEm::new(EmOptions::default());
        let _ = em.fit(&ActionLog::new(), vocab, names(1));
    }
}
