//! Loader for the AMiner citation text format (the ACM-Citation-network-V8
//! dump OCTOPUS demos on: <https://aminer.org/citation>).
//!
//! Record grammar (one paper per blank-line-separated block):
//!
//! ```text
//! #* title
//! #@ author1;author2;…
//! #t year
//! #c venue
//! #index id
//! #% referenced-paper-id     (repeated)
//! #! abstract                (ignored)
//! ```
//!
//! [`build_action_log`] reproduces the §II-B data pipeline: "we extract
//! distinct keywords from paper titles … we regard a v's paper citing a u's
//! paper as an item propagated from u to v". Each paper is an item owned by
//! its first author; a citation of paper `P` (by `u`) from a paper by `v`
//! is a successful trial `u → v`; followers of `u` (authors who cited `u`
//! before) who did *not* cite `P` contribute failed trials — the negative
//! evidence EM needs.

use crate::actions::ActionLog;
use octopus_graph::NodeId;
use octopus_topics::Vocabulary;
use std::collections::HashMap;
use std::io::BufRead;

/// One parsed paper record.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PaperRecord {
    /// Paper title.
    pub title: String,
    /// Author names, in order.
    pub authors: Vec<String>,
    /// Publication year (0 when absent).
    pub year: u32,
    /// Venue string.
    pub venue: String,
    /// Dataset-assigned id.
    pub index: String,
    /// Ids of referenced papers.
    pub references: Vec<String>,
}

/// Parsing errors.
#[derive(Debug, Clone, PartialEq)]
pub enum LoaderError {
    /// A record had no `#index` line.
    MissingIndex {
        /// Title of the offending record (may be empty).
        title: String,
    },
    /// Two records shared the same `#index`.
    DuplicateIndex(String),
    /// Underlying I/O failure, stringified.
    Io(String),
}

impl std::fmt::Display for LoaderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoaderError::MissingIndex { title } => {
                write!(f, "record {title:?} has no #index line")
            }
            LoaderError::DuplicateIndex(id) => write!(f, "duplicate paper index {id:?}"),
            LoaderError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for LoaderError {}

/// Parse an AMiner-format stream into paper records.
pub fn parse_aminer<R: BufRead>(reader: R) -> Result<Vec<PaperRecord>, LoaderError> {
    let mut records = Vec::new();
    let mut cur = PaperRecord::default();
    let mut started = false;
    let mut seen: HashMap<String, ()> = HashMap::new();

    let mut flush = |cur: &mut PaperRecord,
                     started: &mut bool,
                     seen: &mut HashMap<String, ()>|
     -> Result<(), LoaderError> {
        if !*started {
            return Ok(());
        }
        if cur.index.is_empty() {
            return Err(LoaderError::MissingIndex {
                title: cur.title.clone(),
            });
        }
        if seen.insert(cur.index.clone(), ()).is_some() {
            return Err(LoaderError::DuplicateIndex(cur.index.clone()));
        }
        records.push(std::mem::take(cur));
        *started = false;
        Ok(())
    };

    for line in reader.lines() {
        let line = line.map_err(|e| LoaderError::Io(e.to_string()))?;
        let line = line.trim_end();
        if line.is_empty() {
            flush(&mut cur, &mut started, &mut seen)?;
            continue;
        }
        started = true;
        if let Some(rest) = line.strip_prefix("#*") {
            cur.title = rest.trim().to_string();
        } else if let Some(rest) = line.strip_prefix("#@") {
            cur.authors = rest
                .split(';')
                .map(|a| a.trim().to_string())
                .filter(|a| !a.is_empty())
                .collect();
        } else if let Some(rest) = line.strip_prefix("#t") {
            cur.year = rest.trim().parse().unwrap_or(0);
        } else if let Some(rest) = line.strip_prefix("#c") {
            cur.venue = rest.trim().to_string();
        } else if let Some(rest) = line.strip_prefix("#index") {
            cur.index = rest.trim().to_string();
        } else if let Some(rest) = line.strip_prefix("#%") {
            let id = rest.trim();
            if !id.is_empty() {
                cur.references.push(id.to_string());
            }
        }
        // unknown markers (#!, #c variants) are skipped
    }
    flush(&mut cur, &mut started, &mut seen)?;
    Ok(records)
}

/// Title-keyword stoplist (articles, connectives, and words so generic they
/// carry no topical signal).
const STOPWORDS: &[&str] = &[
    "a", "an", "the", "of", "for", "and", "or", "in", "on", "with", "to", "by", "from", "at",
    "via", "using", "toward", "towards", "is", "are", "be", "its", "their", "as", "into", "based",
    "approach", "method", "methods", "system", "systems", "new", "novel", "study",
];

/// Extract normalized title keywords: lowercase alphanumeric tokens, minus
/// stopwords and single characters.
pub fn title_keywords(title: &str) -> Vec<String> {
    let mut out = Vec::new();
    for raw in title.split(|c: char| !c.is_alphanumeric()) {
        let t = raw.to_lowercase();
        if t.len() < 2 || STOPWORDS.contains(&t.as_str()) {
            continue;
        }
        if !out.contains(&t) {
            out.push(t);
        }
    }
    out
}

/// Options for [`build_action_log`].
#[derive(Debug, Clone)]
pub struct BuildOptions {
    /// Keep only keywords appearing in at least this many titles.
    pub min_keyword_count: usize,
    /// Cap of failed trials recorded per item (bounds log size).
    pub max_negatives_per_item: usize,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            min_keyword_count: 2,
            max_negatives_per_item: 32,
        }
    }
}

/// Output of [`build_action_log`]: everything the EM learner needs.
#[derive(Debug, Clone)]
pub struct CitationData {
    /// Author display names, index = node id.
    pub author_names: Vec<String>,
    /// Title-keyword vocabulary.
    pub vocab: Vocabulary,
    /// Items (papers) + trials (citations and non-citations).
    pub log: ActionLog,
}

/// Build the §II-B action log from parsed records.
pub fn build_action_log(records: &[PaperRecord], opts: &BuildOptions) -> CitationData {
    // authors → dense ids (first occurrence order)
    let mut author_ids: HashMap<&str, u32> = HashMap::new();
    let mut author_names: Vec<String> = Vec::new();
    for r in records {
        for a in &r.authors {
            author_ids.entry(a.as_str()).or_insert_with(|| {
                author_names.push(a.clone());
                (author_names.len() - 1) as u32
            });
        }
    }

    // keyword counting pass, then vocabulary of frequent keywords
    let mut counts: HashMap<String, usize> = HashMap::new();
    for r in records {
        for k in title_keywords(&r.title) {
            *counts.entry(k).or_insert(0) += 1;
        }
    }
    let mut vocab = Vocabulary::new();
    let mut frequent: Vec<(&String, &usize)> = counts
        .iter()
        .filter(|&(_, &c)| c >= opts.min_keyword_count)
        .collect();
    frequent.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    for (w, _) in frequent {
        vocab.intern(w);
    }

    // paper index → (record position, first-author node)
    let by_index: HashMap<&str, usize> = records
        .iter()
        .enumerate()
        .map(|(i, r)| (r.index.as_str(), i))
        .collect();
    let first_author =
        |r: &PaperRecord| -> Option<u32> { r.authors.first().map(|a| author_ids[a.as_str()]) };

    // citers[paper] = distinct citing first-authors; followers[u] = authors
    // who cited any of u's papers (potential exposure set)
    let mut citers: Vec<Vec<u32>> = vec![Vec::new(); records.len()];
    let mut followers: HashMap<u32, Vec<u32>> = HashMap::new();
    for r in records {
        let Some(citing) = first_author(r) else {
            continue;
        };
        for refid in &r.references {
            if let Some(&pi) = by_index.get(refid.as_str()) {
                if let Some(cited_author) = first_author(&records[pi]) {
                    if cited_author != citing {
                        if !citers[pi].contains(&citing) {
                            citers[pi].push(citing);
                        }
                        let fl = followers.entry(cited_author).or_default();
                        if !fl.contains(&citing) {
                            fl.push(citing);
                        }
                    }
                }
            }
        }
    }

    // emit items + trials
    let mut log = ActionLog::new();
    for (pi, r) in records.iter().enumerate() {
        let Some(owner) = first_author(r) else {
            continue;
        };
        let kws: Vec<_> = title_keywords(&r.title)
            .iter()
            .filter_map(|k| vocab.get(k))
            .collect();
        if kws.is_empty() {
            continue;
        }
        let item = log.push_item(NodeId(owner), kws);
        for &v in &citers[pi] {
            log.push_trial(item, NodeId(owner), NodeId(v), true);
        }
        // negative evidence: followers of the owner who did not cite this paper
        if let Some(fl) = followers.get(&owner) {
            let mut negs = 0usize;
            for &v in fl {
                if negs >= opts.max_negatives_per_item {
                    break;
                }
                if !citers[pi].contains(&v) {
                    log.push_trial(item, NodeId(owner), NodeId(v), false);
                    negs += 1;
                }
            }
        }
    }

    CitationData {
        author_names,
        vocab,
        log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const SAMPLE: &str = "\
#* Mining Association Rules in Large Databases
#@ rakesh agrawal;ramakrishnan srikant
#t 1994
#c VLDB
#index p1

#* Fast Algorithms for Mining Association Rules
#@ jiawei han
#t 1995
#c SIGMOD
#index p2
#% p1

#* Data Mining Concepts
#@ ian witten
#t 1999
#c KDD
#index p3
#% p1
#% p2
";

    #[test]
    fn parses_records_and_references() {
        let recs = parse_aminer(Cursor::new(SAMPLE)).unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].title, "Mining Association Rules in Large Databases");
        assert_eq!(recs[0].authors.len(), 2);
        assert_eq!(recs[1].year, 1995);
        assert_eq!(recs[2].references, vec!["p1", "p2"]);
        assert_eq!(recs[1].venue, "SIGMOD");
    }

    #[test]
    fn missing_index_is_an_error() {
        let bad = "#* Title Only\n#@ someone\n";
        assert!(matches!(
            parse_aminer(Cursor::new(bad)),
            Err(LoaderError::MissingIndex { .. })
        ));
    }

    #[test]
    fn duplicate_index_is_an_error() {
        let bad = "#* A\n#index x\n\n#* B\n#index x\n";
        assert!(matches!(
            parse_aminer(Cursor::new(bad)),
            Err(LoaderError::DuplicateIndex(_))
        ));
    }

    #[test]
    fn title_keyword_extraction() {
        let kws = title_keywords("A Novel Approach to Mining of Association Rules");
        assert_eq!(kws, vec!["mining", "association", "rules"]);
        assert!(title_keywords("Of The And").is_empty());
    }

    #[test]
    fn action_log_construction() {
        let recs = parse_aminer(Cursor::new(SAMPLE)).unwrap();
        let data = build_action_log(
            &recs,
            &BuildOptions {
                min_keyword_count: 2,
                ..Default::default()
            },
        );
        // authors: agrawal, srikant, han, witten
        assert_eq!(data.author_names.len(), 4);
        // "mining" (3×), "association" (2×), "rules" (2×), … appear;
        // "concepts" (1×) is filtered
        assert!(data.vocab.get("mining").is_some());
        assert!(data.vocab.get("concepts").is_none());
        // p1 is cited by han (p2) and witten (p3): 2 positive trials on item p1
        let positives: Vec<_> = data.log.trials().iter().filter(|t| t.activated).collect();
        assert_eq!(positives.len(), 3); // p1←han, p1←witten, p2←witten
                                        // all positive trials originate at the cited paper's first author
        let agrawal = NodeId(0);
        assert!(positives.iter().filter(|t| t.src == agrawal).count() == 2);
    }

    #[test]
    fn negative_trials_from_followers() {
        // han cites p1 (follows agrawal); agrawal's later paper p4 not cited
        // by han → failed trial agrawal→han on p4.
        let text = format!(
            "{SAMPLE}\n#* Query Processing over Data Streams\n#@ rakesh agrawal\n#t 2000\n#index p4\n"
        );
        let recs = parse_aminer(Cursor::new(text)).unwrap();
        let data = build_action_log(
            &recs,
            &BuildOptions {
                min_keyword_count: 1,
                max_negatives_per_item: 10,
            },
        );
        let negs: Vec<_> = data.log.trials().iter().filter(|t| !t.activated).collect();
        assert!(!negs.is_empty(), "expected negative trials");
        assert!(negs.iter().all(|t| t.src == NodeId(0)));
    }

    #[test]
    fn end_to_end_em_on_loaded_data() {
        use crate::learn::{EmOptions, TicEm};
        let recs = parse_aminer(Cursor::new(SAMPLE)).unwrap();
        let data = build_action_log(
            &recs,
            &BuildOptions {
                min_keyword_count: 1,
                ..Default::default()
            },
        );
        let em = TicEm::new(EmOptions {
            num_topics: 2,
            max_iters: 10,
            ..Default::default()
        });
        let fit = em.fit(&data.log, data.vocab.clone(), data.author_names.clone());
        assert!(fit.graph.edge_count() > 0);
        assert_eq!(fit.graph.node_count(), 4);
    }
}
