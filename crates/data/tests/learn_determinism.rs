//! Determinism pinning for the windowed warm-refit chain: the same log
//! prefix + the same seed must produce a bit-identical learned model,
//! window after window, no matter how many rayon threads the
//! surrounding process runs.
//!
//! The learner is deliberately single-threaded and seeded — its only
//! hash map is lookup-only, [`ActionLog::edge_universe`] is sorted and
//! deduped, and the EM loop iterates dense vectors in index order — so
//! this suite is the tripwire that keeps it that way: any future
//! parallelism or iteration-order dependence that breaks
//! bit-replayability fails here (at 1 vs 8 threads, and across repeated
//! runs) before it can corrupt the serving loop's shadow-graph contract
//! (see the `octopus_data::stream` module docs). The ingest e2e test in
//! `crates/bench` builds on exactly this property: replaying the same
//! stream must land the serving layer on the same graph.

use octopus_data::{
    stream, ActionLog, CitationConfig, EmOptions, LearnedModel, NewEdgePolicy, StreamConfig,
    StreamEvent, SyntheticNetwork, TicEm, WindowedLearner,
};
use octopus_graph::delta::GraphDelta;
use octopus_graph::TopicGraph;

fn net() -> SyntheticNetwork {
    CitationConfig {
        authors: 60,
        papers: 150,
        seed: 0x00DE_7E12,
        ..Default::default()
    }
    .generate()
}

/// One full windowed chain: warm-up fit over the stream's first 60%,
/// then the tail in `windows` windows through a [`WindowedLearner`].
/// Returns everything bit-comparable about the run.
fn run_chain(
    net: &SyntheticNetwork,
    windows: usize,
) -> (Vec<Vec<GraphDelta>>, TopicGraph, LearnedModel) {
    let opts = EmOptions {
        max_iters: 4,
        ..Default::default()
    };
    let names: Vec<String> = net
        .graph
        .nodes()
        .map(|u| net.graph.name(u).unwrap_or("").to_string())
        .collect();
    let vocab = net.model.vocab().clone();
    let actions = stream::timeline(&net.log, &StreamConfig::default());
    let split = actions.len() * 3 / 5;
    let mut warmup_log = ActionLog::new();
    for a in &actions[..split] {
        match &a.event {
            StreamEvent::Item(item) => {
                warmup_log.push_item(item.origin, item.keywords.clone());
            }
            StreamEvent::Trial(t) => warmup_log.push_trial(t.item, t.src, t.dst, t.activated),
        }
    }
    let warm = TicEm::new(opts.clone()).fit(&warmup_log, vocab.clone(), names.clone());
    let mut learner = WindowedLearner::new(
        opts,
        vocab,
        names,
        warmup_log,
        warm,
        NewEdgePolicy::Insert,
        0.0,
    );
    let tail = &actions[split..];
    let window_size = (tail.len() / windows).max(1);
    let mut deltas = Vec::new();
    let mut in_window = 0usize;
    for (i, a) in tail.iter().enumerate() {
        learner.observe(a);
        in_window += 1;
        if in_window >= window_size || i + 1 == tail.len() {
            deltas.push(learner.fit_window().unwrap().deltas);
            in_window = 0;
        }
    }
    let shadow = learner.shadow().clone();
    let learned = learner.learned().clone();
    (deltas, shadow, learned)
}

fn assert_bit_identical(
    a: &(Vec<Vec<GraphDelta>>, TopicGraph, LearnedModel),
    b: &(Vec<Vec<GraphDelta>>, TopicGraph, LearnedModel),
) {
    assert_eq!(a.0, b.0, "every window must emit the identical deltas");
    assert_eq!(a.1, b.1, "the shadow graphs must be bit-identical");
    assert_eq!(
        a.2.graph, b.2.graph,
        "the learned graphs must be bit-identical"
    );
    assert_eq!(
        a.2.model, b.2.model,
        "the learned topic models must be bit-identical"
    );
    assert_eq!(a.2.iterations, b.2.iterations);
    let lla: Vec<u64> = a.2.log_likelihood.iter().map(|x| x.to_bits()).collect();
    let llb: Vec<u64> = b.2.log_likelihood.iter().map(|x| x.to_bits()).collect();
    assert_eq!(
        lla, llb,
        "even the log-likelihood trace must replay bitwise"
    );
}

#[test]
fn windowed_refit_chain_is_bit_replayable() {
    let net = net();
    let a = run_chain(&net, 3);
    let b = run_chain(&net, 3);
    assert!(
        a.0.iter().map(Vec::len).sum::<usize>() > 0,
        "the chain must actually move weights for the pin to mean anything"
    );
    assert_bit_identical(&a, &b);
}

#[test]
fn windowed_refit_chain_is_thread_count_independent() {
    let net = net();
    let one = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap()
        .install(|| run_chain(&net, 3));
    let eight = rayon::ThreadPoolBuilder::new()
        .num_threads(8)
        .build()
        .unwrap()
        .install(|| run_chain(&net, 3));
    assert_bit_identical(&one, &eight);
}
