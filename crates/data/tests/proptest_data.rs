//! Property tests for the data layer: store round-trips and action-log
//! invariants on arbitrary generated networks.

use octopus_data::store::{decode, encode, Dataset};
use octopus_data::CitationConfig;
use proptest::prelude::*;

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (10usize..40, 20usize..80, 2usize..4, 1u64..500).prop_map(|(authors, papers, topics, seed)| {
        let net = CitationConfig {
            authors,
            papers,
            num_topics: topics,
            words_per_topic: 6,
            seed,
            ..Default::default()
        }
        .generate();
        Dataset {
            graph: net.graph,
            model: net.model,
            log: Some(net.log),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Store round-trip preserves graph and log exactly, and the model up
    /// to one renormalization ULP.
    #[test]
    fn store_round_trip(ds in arb_dataset()) {
        let back = decode(encode(&ds)).unwrap();
        prop_assert_eq!(&ds.graph, &back.graph);
        prop_assert_eq!(&ds.log, &back.log);
        prop_assert_eq!(ds.model.num_topics(), back.model.num_topics());
        for z in 0..ds.model.num_topics() {
            prop_assert!((ds.model.topic_prior(z) - back.model.topic_prior(z)).abs() < 1e-14);
        }
    }

    /// Any truncation of an encoded dataset fails to decode (never panics,
    /// never silently succeeds).
    #[test]
    fn store_truncation_rejected(ds in arb_dataset(), frac in 0.0f64..1.0) {
        let raw = encode(&ds);
        let cut = ((raw.len() as f64) * frac) as usize;
        if cut < raw.len() {
            prop_assert!(decode(&raw[..cut]).is_err());
        }
    }

    /// Generated action logs are internally consistent: every trial
    /// references an existing item, and origins/endpoints are valid nodes.
    #[test]
    fn generated_logs_are_consistent(ds in arb_dataset()) {
        let log = ds.log.as_ref().unwrap();
        let n = ds.graph.node_count();
        for item in log.items() {
            prop_assert!(item.origin.index() < n);
            for w in &item.keywords {
                prop_assert!(ds.model.vocab().word(*w).is_ok());
            }
        }
        for t in log.trials() {
            prop_assert!(t.item.index() < log.item_count());
            prop_assert!(t.src.index() < n);
            prop_assert!(t.dst.index() < n);
            // every trial edge exists in the ground-truth graph
            prop_assert!(ds.graph.find_edge(t.src, t.dst).is_some());
        }
    }
}
