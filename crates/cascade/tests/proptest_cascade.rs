//! Property tests for the cascade engines: estimator agreement, greedy/CELF
//! equivalence, monotonicity and submodularity of sampled spread.

use octopus_cascade::{
    celf_select, estimate_spread, greedy_select, EdgeCoins, RrCollection, RrOracle,
};
use octopus_graph::{EdgeId, EdgeProbs, GraphBuilder, NodeId, TopicGraph};
use proptest::prelude::*;

/// Strategy: small random single-topic graph with edge probabilities.
fn arb_ic_graph() -> impl Strategy<Value = (TopicGraph, EdgeProbs)> {
    (3usize..14).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32, 0.05f64..0.9), 1..n * 2).prop_map(
            move |edges| {
                let mut b = GraphBuilder::new(1);
                let _ = b.add_nodes(n);
                for (u, v, p) in edges {
                    if u != v {
                        b.add_edge(NodeId(u), NodeId(v), &[(0, p)]).unwrap();
                    }
                }
                let g = b.build().unwrap();
                let probs = g.materialize(&[1.0]).unwrap();
                (g, probs)
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Spread is bounded: |seeds| ≤ σ(S) ≤ n, for both MC and RR estimators.
    #[test]
    fn spread_bounds((g, p) in arb_ic_graph(), seed_count in 1usize..4) {
        let seeds: Vec<NodeId> = (0..seed_count.min(g.node_count()) as u32).map(NodeId).collect();
        let mc = estimate_spread(&g, &p, &seeds, 300, 1);
        prop_assert!(mc >= seeds.len() as f64 - 1e-9);
        prop_assert!(mc <= g.node_count() as f64 + 1e-9);
        let rr = RrCollection::generate(&g, &p, 300, 2);
        let est = rr.estimate_spread(&seeds);
        prop_assert!(est >= 0.0);
        prop_assert!(est <= g.node_count() as f64 + 1e-9);
    }

    /// MC and RR estimators agree on single-seed spread within statistical
    /// tolerance.
    #[test]
    fn estimators_agree((g, p) in arb_ic_graph()) {
        let u = NodeId(0);
        let mc = estimate_spread(&g, &p, &[u], 4000, 3);
        let rr = RrCollection::generate(&g, &p, 12_000, 4);
        let est = rr.estimate_spread(&[u]);
        // both unbiased; allow combined 3-sigma-ish slack scaled by n
        let slack = 0.15 * g.node_count() as f64;
        prop_assert!((mc - est).abs() <= slack.max(0.5), "mc={mc} rr={est}");
    }

    /// RR-estimated spread is monotone: adding a seed never decreases it.
    #[test]
    fn rr_spread_monotone((g, p) in arb_ic_graph(), extra in 0u32..14) {
        let rr = RrCollection::generate(&g, &p, 500, 5);
        let base = vec![NodeId(0)];
        let s1 = rr.estimate_spread(&base);
        let added = NodeId(extra % g.node_count() as u32);
        let s2 = rr.estimate_spread(&[NodeId(0), added]);
        prop_assert!(s2 >= s1 - 1e-9);
    }

    /// CELF and plain greedy select identical seeds over the same frozen RR
    /// collection (the deterministic-oracle equivalence that justifies using
    /// CELF everywhere).
    #[test]
    fn celf_equals_greedy((g, p) in arb_ic_graph(), k in 1usize..5) {
        let rr = RrCollection::generate(&g, &p, 800, 6);
        let mut o1 = RrOracle::from_collection(rr.clone());
        let mut o2 = RrOracle::from_collection(rr);
        let a = celf_select(&mut o1, k);
        let b = greedy_select(&mut o2, k);
        prop_assert_eq!(&a.seeds, &b.seeds);
        prop_assert!((a.spread - b.spread).abs() < 1e-9);
        prop_assert!(a.evaluations <= b.evaluations);
    }

    /// Greedy gains are non-increasing (sampled submodularity).
    #[test]
    fn greedy_gains_non_increasing((g, p) in arb_ic_graph(), k in 2usize..6) {
        let mut o = RrOracle::new(&g, &p, 600, 7);
        let res = greedy_select(&mut o, k);
        for w in res.gains.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9, "gains {:?}", res.gains);
        }
    }

    /// Shared-coin worlds: live-edge sets are nested under pointwise
    /// probability increase (the monotonicity the PIKS index relies on).
    #[test]
    fn coin_worlds_monotone(
        seed in proptest::num::u64::ANY,
        probs in proptest::collection::vec(0.0f64..1.0, 1..40),
        bump in 0.0f64..0.5,
    ) {
        let w = EdgeCoins::new(seed);
        for (i, &p) in probs.iter().enumerate() {
            let e = EdgeId(i as u32);
            if w.is_live(e, p) {
                prop_assert!(w.is_live(e, (p + bump).min(1.0)));
            }
        }
    }

    /// RR greedy coverage equals brute-force best coverage for k=1.
    #[test]
    fn greedy_k1_is_exact((g, p) in arb_ic_graph()) {
        let rr = RrCollection::generate(&g, &p, 400, 8);
        let (seeds, cov) = rr.select_seeds(1);
        prop_assert_eq!(seeds.len(), 1);
        let best_by_scan = g
            .nodes()
            .map(|u| rr.coverage(&[u]))
            .max()
            .unwrap_or(0);
        prop_assert_eq!(cov, best_by_scan);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Heuristic selectors return distinct, in-bounds seeds and respect k.
    #[test]
    fn heuristics_basic_contract((g, p) in arb_ic_graph(), k in 1usize..6) {
        for method in [
            octopus_cascade::top_degree,
            octopus_cascade::single_discount,
            octopus_cascade::degree_discount,
        ] {
            let seeds = method(&g, &p, k);
            prop_assert!(seeds.len() <= k.min(g.node_count()));
            let mut d = seeds.clone();
            d.sort();
            d.dedup();
            prop_assert_eq!(d.len(), seeds.len(), "duplicate seeds");
            for s in &seeds {
                prop_assert!(s.index() < g.node_count());
            }
        }
    }

    /// The first seed of every heuristic is the probability-weighted
    /// out-degree argmax (they only diverge from round 2 on).
    #[test]
    fn heuristics_agree_on_first_seed((g, p) in arb_ic_graph()) {
        let a = octopus_cascade::top_degree(&g, &p, 1);
        let b = octopus_cascade::single_discount(&g, &p, 1);
        let c = octopus_cascade::degree_discount(&g, &p, 1);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
    }
}
