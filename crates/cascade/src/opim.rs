//! OPIM-C–style adaptive influence maximization with an explicit
//! approximation certificate (Tang et al., SIGMOD'18 — the online refinement
//! of the IMM family \[8\] the paper cites).
//!
//! Two independent RR collections are maintained: `R1` drives greedy seed
//! selection; `R2` validates the selected set. Each round the algorithm
//! computes a Chernoff **lower** bound on `σ(S)` from `R2` and a Chernoff
//! **upper** bound on `σ(OPT)` from `R1`'s greedy coverage (inflated by
//! `1/(1−1/e)`); when their ratio reaches `1 − 1/e − ε` it stops, otherwise
//! both collections double. The returned certificate makes "theoretical
//! guarantee" (§II-C) a measurable quantity in the experiment harness.

use crate::rr::RrCollection;
use octopus_graph::{EdgeProbs, NodeId, TopicGraph};
use std::time::Instant;

/// Parameters for [`opim_select`].
#[derive(Debug, Clone)]
pub struct OpimOptions {
    /// Number of seeds to select.
    pub k: usize,
    /// Approximation slack `ε` (target ratio is `1 − 1/e − ε`).
    pub epsilon: f64,
    /// Failure probability `δ`.
    pub delta: f64,
    /// Initial RR sets per collection.
    pub initial_samples: usize,
    /// Maximum doubling rounds (bounds worst-case memory).
    pub max_rounds: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for OpimOptions {
    fn default() -> Self {
        OpimOptions {
            k: 10,
            epsilon: 0.2,
            delta: 0.01,
            initial_samples: 256,
            max_rounds: 12,
            seed: 0x00C0_FFEE,
        }
    }
}

/// An anytime resource envelope for [`opim_select_budgeted`].
///
/// Both limits are optional; with neither set the run is identical to
/// [`opim_select`]. The sample cap is the *deterministic* knob: RR
/// generation uses per-set RNG streams, so a run capped at `max_rr_sets`
/// is bit-identical at any thread count. The deadline is only consulted
/// at round boundaries — each round's output is deterministic, but which
/// round a wall-clock deadline stops at is not.
#[derive(Debug, Clone, Copy, Default)]
pub struct OpimBudget {
    /// Cap on total RR sets across both collections (split evenly).
    pub max_rr_sets: Option<usize>,
    /// Wall-clock deadline, checked between doubling rounds.
    pub deadline: Option<Instant>,
}

impl OpimBudget {
    /// No limits: budgeted selection degenerates to the exact path.
    pub fn unlimited() -> Self {
        OpimBudget::default()
    }

    /// Whether neither limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.max_rr_sets.is_none() && self.deadline.is_none()
    }
}

/// Result of an OPIM run.
#[derive(Debug, Clone)]
pub struct OpimResult {
    /// Selected seed set (selection order).
    pub seeds: Vec<NodeId>,
    /// Per-seed marginal spread gains (selection order, from the
    /// selection collection) — what a scatter-gather merge ranks by.
    pub gains: Vec<f64>,
    /// Point estimate of `σ(S)` from the validation collection.
    pub spread: f64,
    /// Certified lower bound on `σ(S)`.
    pub spread_lower: f64,
    /// Certified upper bound on `σ(OPT_k)`.
    pub opt_upper: f64,
    /// The certified approximation ratio `spread_lower / opt_upper`.
    pub ratio: f64,
    /// Total RR sets sampled across both collections.
    pub rr_sets: usize,
    /// Doubling rounds executed.
    pub rounds: usize,
}

/// Chernoff-style lower bound on `σ(S)` given `cov` covered sets out of
/// `theta` (OPIM-C eq. (4)-style). `a = ln(1/δ')`.
fn spread_lower_bound(n: usize, cov: usize, theta: usize, a: f64) -> f64 {
    if theta == 0 {
        return 0.0;
    }
    let cov = cov as f64;
    let val = ((cov + 2.0 * a / 9.0).sqrt() - (a / 2.0).sqrt()).powi(2) - a / 18.0;
    (val.max(0.0)) * n as f64 / theta as f64
}

/// Chernoff-style upper bound on `σ(OPT)` from the greedy coverage `cov`
/// on the selection collection: greedy covers at least `(1−1/e)·OPT`'s
/// coverage in expectation, so `OPT`'s true coverage is at most
/// `cov/(1−1/e)` (plus concentration slack).
fn opt_upper_bound(n: usize, cov: usize, theta: usize, a: f64) -> f64 {
    if theta == 0 {
        return n as f64;
    }
    let frac = 1.0 - 1.0 / std::f64::consts::E;
    let cov_ub = ((cov as f64 / frac) + a / 2.0).sqrt() + (a / 2.0).sqrt();
    (cov_ub.powi(2)) * n as f64 / theta as f64
}

/// Run OPIM-C: adaptive sampling until the certified ratio reaches
/// `1 − 1/e − ε` (or `max_rounds` is exhausted, in which case the best
/// certificate found is returned).
pub fn opim_select(g: &TopicGraph, probs: &EdgeProbs, opts: &OpimOptions) -> OpimResult {
    opim_select_budgeted(g, probs, opts, &OpimBudget::unlimited())
}

/// [`opim_select`] under an anytime [`OpimBudget`]: stop early when the
/// sample cap is reached or the deadline expires, returning the best
/// certificate found so far. At a fixed sample cap the result is
/// bit-identical at any thread count: collections grow to exactly
/// `⌊cap/2⌋` sets each via per-set RNG streams, and every evaluation is
/// a deterministic function of the collections.
pub fn opim_select_budgeted(
    g: &TopicGraph,
    probs: &EdgeProbs,
    opts: &OpimOptions,
    budget: &OpimBudget,
) -> OpimResult {
    let n = g.node_count();
    let target = 1.0 - 1.0 / std::f64::consts::E - opts.epsilon;
    let a = (3.0 * opts.max_rounds as f64 / opts.delta).ln();

    // Per-collection cap: half the total sample budget, at least one set.
    let cap_each = budget.max_rr_sets.map(|b| (b / 2).max(1));
    let init = cap_each.map_or(opts.initial_samples, |c| opts.initial_samples.min(c));
    let mut r1 = RrCollection::generate(g, probs, init, opts.seed ^ 0x5151);
    let mut r2 = RrCollection::generate(g, probs, init, opts.seed ^ 0xA2A2);

    let mut best: Option<OpimResult> = None;
    for round in 1..=opts.max_rounds {
        let (seeds, cov1, gains) = r1.select_seeds_with_gains(opts.k);
        let cov2 = r2.coverage(&seeds);
        let lb = spread_lower_bound(n, cov2, r2.len(), a);
        let ub = opt_upper_bound(n, cov1, r1.len(), a).min(n as f64);
        let ratio = if ub > 0.0 { (lb / ub).min(1.0) } else { 0.0 };
        let result = OpimResult {
            spread: r2.estimate_spread(&seeds),
            seeds,
            gains,
            spread_lower: lb,
            opt_upper: ub,
            ratio,
            rr_sets: r1.len() + r2.len(),
            rounds: round,
        };
        let better = best.as_ref().map(|b| ratio > b.ratio).unwrap_or(true);
        if better {
            best = Some(result);
        }
        if best.as_ref().map(|b| b.ratio >= target).unwrap_or(false) {
            break;
        }
        if budget.deadline.is_some_and(|d| Instant::now() >= d) {
            break;
        }
        let at_cap = cap_each.is_some_and(|c| r1.len() >= c);
        if at_cap || round == opts.max_rounds {
            break;
        }
        // Double, clamped so each collection lands exactly on its cap.
        let mut grow1 = r1.len();
        let mut grow2 = r2.len();
        if let Some(c) = cap_each {
            grow1 = grow1.min(c - r1.len());
            grow2 = grow2.min(c - r2.len());
        }
        r1.extend(g, probs, grow1);
        r2.extend(g, probs, grow2);
    }
    best.expect("at least one round always runs")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mc::estimate_spread;
    use octopus_graph::GraphBuilder;

    fn two_stars() -> (TopicGraph, EdgeProbs) {
        let mut b = GraphBuilder::new(1);
        let _ = b.add_nodes(7);
        for v in [2u32, 3, 4] {
            b.add_edge(NodeId(0), NodeId(v), &[(0, 1.0)]).unwrap();
        }
        for v in [5u32, 6] {
            b.add_edge(NodeId(1), NodeId(v), &[(0, 1.0)]).unwrap();
        }
        let g = b.build().unwrap();
        let p = g.materialize(&[1.0]).unwrap();
        (g, p)
    }

    /// A random-ish sparse graph for ratio checks.
    fn random_graph(n: usize, deg: usize, p: f64) -> (TopicGraph, EdgeProbs) {
        let mut b = GraphBuilder::new(1);
        let _ = b.add_nodes(n);
        let mut state = 0x1234_5678u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for u in 0..n as u32 {
            for _ in 0..deg {
                let v = (next() % n as u64) as u32;
                if v != u {
                    b.add_edge(NodeId(u), NodeId(v), &[(0, p)]).unwrap();
                }
            }
        }
        let g = b.build().unwrap();
        let probs = g.materialize(&[1.0]).unwrap();
        (g, probs)
    }

    #[test]
    fn opim_finds_hubs_with_certificate() {
        let (g, p) = two_stars();
        let res = opim_select(
            &g,
            &p,
            &OpimOptions {
                k: 2,
                ..Default::default()
            },
        );
        let mut seeds = res.seeds.clone();
        seeds.sort();
        assert_eq!(seeds, vec![NodeId(0), NodeId(1)]);
        assert!(res.ratio > 0.0);
        assert!(res.spread_lower <= res.spread + 1e-9);
        assert!(res.opt_upper >= res.spread_lower);
    }

    #[test]
    fn certificate_reaches_target_on_easy_instance() {
        let (g, p) = two_stars();
        let opts = OpimOptions {
            k: 2,
            epsilon: 0.3,
            ..Default::default()
        };
        let res = opim_select(&g, &p, &opts);
        let target = 1.0 - 1.0 / std::f64::consts::E - opts.epsilon;
        assert!(res.ratio >= target, "ratio {} < target {target}", res.ratio);
    }

    #[test]
    fn seeds_spread_is_near_optimal_on_random_graph() {
        let (g, p) = random_graph(150, 3, 0.2);
        let opts = OpimOptions {
            k: 5,
            epsilon: 0.25,
            seed: 3,
            ..Default::default()
        };
        let res = opim_select(&g, &p, &opts);
        assert_eq!(res.seeds.len(), 5);
        // MC-validate: the claimed lower bound should hold for the true spread.
        let mc = estimate_spread(&g, &p, &res.seeds, 3000, 77);
        assert!(
            mc >= res.spread_lower * 0.9,
            "mc {mc} violates certified lower bound {}",
            res.spread_lower
        );
    }

    #[test]
    fn zero_k_returns_empty() {
        let (g, p) = two_stars();
        let res = opim_select(
            &g,
            &p,
            &OpimOptions {
                k: 0,
                ..Default::default()
            },
        );
        assert!(res.seeds.is_empty());
    }

    #[test]
    fn unlimited_budget_is_bit_identical_to_exact() {
        let (g, p) = random_graph(120, 3, 0.2);
        let opts = OpimOptions {
            k: 4,
            seed: 9,
            ..Default::default()
        };
        let exact = opim_select(&g, &p, &opts);
        let anytime = opim_select_budgeted(&g, &p, &opts, &OpimBudget::unlimited());
        assert_eq!(exact.seeds, anytime.seeds);
        assert_eq!(exact.spread.to_bits(), anytime.spread.to_bits());
        assert_eq!(exact.rr_sets, anytime.rr_sets);
        assert_eq!(exact.gains.len(), exact.seeds.len());
    }

    #[test]
    fn sample_budget_caps_rr_sets_and_keeps_sound_bounds() {
        let (g, p) = random_graph(120, 3, 0.2);
        let opts = OpimOptions {
            k: 4,
            epsilon: 0.01, // unreachable target: force the cap to bind
            seed: 9,
            ..Default::default()
        };
        let budget = OpimBudget {
            max_rr_sets: Some(300),
            deadline: None,
        };
        let res = opim_select_budgeted(&g, &p, &opts, &budget);
        assert!(res.rr_sets <= 300, "rr_sets {} over budget", res.rr_sets);
        assert!(res.spread_lower <= res.opt_upper);
        // gains are the per-seed marginal decomposition of R1's coverage
        assert_eq!(res.gains.len(), res.seeds.len());
        assert!(res.gains.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn bounds_are_monotone_in_samples() {
        // with more samples the certificate should not get (much) worse
        let (g, p) = random_graph(80, 3, 0.15);
        let small = opim_select(
            &g,
            &p,
            &OpimOptions {
                k: 3,
                initial_samples: 64,
                max_rounds: 1,
                ..Default::default()
            },
        );
        let large = opim_select(
            &g,
            &p,
            &OpimOptions {
                k: 3,
                initial_samples: 4096,
                max_rounds: 1,
                ..Default::default()
            },
        );
        assert!(
            large.ratio >= small.ratio - 0.05,
            "small {} large {}",
            small.ratio,
            large.ratio
        );
    }
}
