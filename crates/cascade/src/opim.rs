//! OPIM-C–style adaptive influence maximization with an explicit
//! approximation certificate (Tang et al., SIGMOD'18 — the online refinement
//! of the IMM family \[8\] the paper cites).
//!
//! Two independent RR collections are maintained: `R1` drives greedy seed
//! selection; `R2` validates the selected set. Each round the algorithm
//! computes a Chernoff **lower** bound on `σ(S)` from `R2` and a Chernoff
//! **upper** bound on `σ(OPT)` from `R1`'s greedy coverage (inflated by
//! `1/(1−1/e)`); when their ratio reaches `1 − 1/e − ε` it stops, otherwise
//! both collections double. The returned certificate makes "theoretical
//! guarantee" (§II-C) a measurable quantity in the experiment harness.

use crate::rr::RrCollection;
use octopus_graph::{EdgeProbs, NodeId, TopicGraph};

/// Parameters for [`opim_select`].
#[derive(Debug, Clone)]
pub struct OpimOptions {
    /// Number of seeds to select.
    pub k: usize,
    /// Approximation slack `ε` (target ratio is `1 − 1/e − ε`).
    pub epsilon: f64,
    /// Failure probability `δ`.
    pub delta: f64,
    /// Initial RR sets per collection.
    pub initial_samples: usize,
    /// Maximum doubling rounds (bounds worst-case memory).
    pub max_rounds: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for OpimOptions {
    fn default() -> Self {
        OpimOptions {
            k: 10,
            epsilon: 0.2,
            delta: 0.01,
            initial_samples: 256,
            max_rounds: 12,
            seed: 0x00C0_FFEE,
        }
    }
}

/// Result of an OPIM run.
#[derive(Debug, Clone)]
pub struct OpimResult {
    /// Selected seed set (selection order).
    pub seeds: Vec<NodeId>,
    /// Point estimate of `σ(S)` from the validation collection.
    pub spread: f64,
    /// Certified lower bound on `σ(S)`.
    pub spread_lower: f64,
    /// Certified upper bound on `σ(OPT_k)`.
    pub opt_upper: f64,
    /// The certified approximation ratio `spread_lower / opt_upper`.
    pub ratio: f64,
    /// Total RR sets sampled across both collections.
    pub rr_sets: usize,
    /// Doubling rounds executed.
    pub rounds: usize,
}

/// Chernoff-style lower bound on `σ(S)` given `cov` covered sets out of
/// `theta` (OPIM-C eq. (4)-style). `a = ln(1/δ')`.
fn spread_lower_bound(n: usize, cov: usize, theta: usize, a: f64) -> f64 {
    if theta == 0 {
        return 0.0;
    }
    let cov = cov as f64;
    let val = ((cov + 2.0 * a / 9.0).sqrt() - (a / 2.0).sqrt()).powi(2) - a / 18.0;
    (val.max(0.0)) * n as f64 / theta as f64
}

/// Chernoff-style upper bound on `σ(OPT)` from the greedy coverage `cov`
/// on the selection collection: greedy covers at least `(1−1/e)·OPT`'s
/// coverage in expectation, so `OPT`'s true coverage is at most
/// `cov/(1−1/e)` (plus concentration slack).
fn opt_upper_bound(n: usize, cov: usize, theta: usize, a: f64) -> f64 {
    if theta == 0 {
        return n as f64;
    }
    let frac = 1.0 - 1.0 / std::f64::consts::E;
    let cov_ub = ((cov as f64 / frac) + a / 2.0).sqrt() + (a / 2.0).sqrt();
    (cov_ub.powi(2)) * n as f64 / theta as f64
}

/// Run OPIM-C: adaptive sampling until the certified ratio reaches
/// `1 − 1/e − ε` (or `max_rounds` is exhausted, in which case the best
/// certificate found is returned).
pub fn opim_select(g: &TopicGraph, probs: &EdgeProbs, opts: &OpimOptions) -> OpimResult {
    let n = g.node_count();
    let target = 1.0 - 1.0 / std::f64::consts::E - opts.epsilon;
    let a = (3.0 * opts.max_rounds as f64 / opts.delta).ln();

    let mut r1 = RrCollection::generate(g, probs, opts.initial_samples, opts.seed ^ 0x5151);
    let mut r2 = RrCollection::generate(g, probs, opts.initial_samples, opts.seed ^ 0xA2A2);

    let mut best: Option<OpimResult> = None;
    for round in 1..=opts.max_rounds {
        let (seeds, cov1) = r1.select_seeds(opts.k);
        let cov2 = r2.coverage(&seeds);
        let lb = spread_lower_bound(n, cov2, r2.len(), a);
        let ub = opt_upper_bound(n, cov1, r1.len(), a).min(n as f64);
        let ratio = if ub > 0.0 { (lb / ub).min(1.0) } else { 0.0 };
        let result = OpimResult {
            spread: r2.estimate_spread(&seeds),
            seeds,
            spread_lower: lb,
            opt_upper: ub,
            ratio,
            rr_sets: r1.len() + r2.len(),
            rounds: round,
        };
        let better = best.as_ref().map(|b| ratio > b.ratio).unwrap_or(true);
        if better {
            best = Some(result);
        }
        if best.as_ref().map(|b| b.ratio >= target).unwrap_or(false) {
            break;
        }
        if round < opts.max_rounds {
            let grow1 = r1.len();
            let grow2 = r2.len();
            r1.extend(g, probs, grow1);
            r2.extend(g, probs, grow2);
        }
    }
    best.expect("at least one round always runs")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mc::estimate_spread;
    use octopus_graph::GraphBuilder;

    fn two_stars() -> (TopicGraph, EdgeProbs) {
        let mut b = GraphBuilder::new(1);
        let _ = b.add_nodes(7);
        for v in [2u32, 3, 4] {
            b.add_edge(NodeId(0), NodeId(v), &[(0, 1.0)]).unwrap();
        }
        for v in [5u32, 6] {
            b.add_edge(NodeId(1), NodeId(v), &[(0, 1.0)]).unwrap();
        }
        let g = b.build().unwrap();
        let p = g.materialize(&[1.0]).unwrap();
        (g, p)
    }

    /// A random-ish sparse graph for ratio checks.
    fn random_graph(n: usize, deg: usize, p: f64) -> (TopicGraph, EdgeProbs) {
        let mut b = GraphBuilder::new(1);
        let _ = b.add_nodes(n);
        let mut state = 0x1234_5678u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for u in 0..n as u32 {
            for _ in 0..deg {
                let v = (next() % n as u64) as u32;
                if v != u {
                    b.add_edge(NodeId(u), NodeId(v), &[(0, p)]).unwrap();
                }
            }
        }
        let g = b.build().unwrap();
        let probs = g.materialize(&[1.0]).unwrap();
        (g, probs)
    }

    #[test]
    fn opim_finds_hubs_with_certificate() {
        let (g, p) = two_stars();
        let res = opim_select(
            &g,
            &p,
            &OpimOptions {
                k: 2,
                ..Default::default()
            },
        );
        let mut seeds = res.seeds.clone();
        seeds.sort();
        assert_eq!(seeds, vec![NodeId(0), NodeId(1)]);
        assert!(res.ratio > 0.0);
        assert!(res.spread_lower <= res.spread + 1e-9);
        assert!(res.opt_upper >= res.spread_lower);
    }

    #[test]
    fn certificate_reaches_target_on_easy_instance() {
        let (g, p) = two_stars();
        let opts = OpimOptions {
            k: 2,
            epsilon: 0.3,
            ..Default::default()
        };
        let res = opim_select(&g, &p, &opts);
        let target = 1.0 - 1.0 / std::f64::consts::E - opts.epsilon;
        assert!(res.ratio >= target, "ratio {} < target {target}", res.ratio);
    }

    #[test]
    fn seeds_spread_is_near_optimal_on_random_graph() {
        let (g, p) = random_graph(150, 3, 0.2);
        let opts = OpimOptions {
            k: 5,
            epsilon: 0.25,
            seed: 3,
            ..Default::default()
        };
        let res = opim_select(&g, &p, &opts);
        assert_eq!(res.seeds.len(), 5);
        // MC-validate: the claimed lower bound should hold for the true spread.
        let mc = estimate_spread(&g, &p, &res.seeds, 3000, 77);
        assert!(
            mc >= res.spread_lower * 0.9,
            "mc {mc} violates certified lower bound {}",
            res.spread_lower
        );
    }

    #[test]
    fn zero_k_returns_empty() {
        let (g, p) = two_stars();
        let res = opim_select(
            &g,
            &p,
            &OpimOptions {
                k: 0,
                ..Default::default()
            },
        );
        assert!(res.seeds.is_empty());
    }

    #[test]
    fn bounds_are_monotone_in_samples() {
        // with more samples the certificate should not get (much) worse
        let (g, p) = random_graph(80, 3, 0.15);
        let small = opim_select(
            &g,
            &p,
            &OpimOptions {
                k: 3,
                initial_samples: 64,
                max_rounds: 1,
                ..Default::default()
            },
        );
        let large = opim_select(
            &g,
            &p,
            &OpimOptions {
                k: 3,
                initial_samples: 4096,
                max_rounds: 1,
                ..Default::default()
            },
        );
        assert!(
            large.ratio >= small.ratio - 0.05,
            "small {} large {}",
            small.ratio,
            large.ratio
        );
    }
}
