//! # octopus-cascade
//!
//! Independent-cascade (IC) diffusion engines and classical influence
//! maximization — the substrate OCTOPUS's online algorithms are built on and
//! benchmarked against.
//!
//! The paper's naive baseline (§II-C) "compute\[s\] `pp_{u,v}` for each edge
//! given the query and then employ\[s\] the traditional IM algorithms" — this
//! crate *is* those traditional algorithms:
//!
//! * [`mc`] — Monte-Carlo forward simulation of the IC process (the ground
//!   truth estimator), with a scoped-thread parallel variant;
//! * [`rr`] — reverse-reachable (RR) set sampling in the style of
//!   Borgs et al. / TIM / IMM \[8\], with coverage-based spread estimation
//!   and greedy max-coverage seed selection;
//! * [`celf`] — lazy-greedy (CELF) influence maximization over any
//!   [`SpreadOracle`], plus a plain greedy used as a test oracle;
//! * [`opim`] — OPIM-C–style adaptive sampling that returns a seed set with
//!   a `(1 − 1/e − ε)` approximation guarantee with high probability;
//! * [`coins`] — deterministic, storage-free edge coins (common random
//!   numbers) shared across queries; the trick behind the PIKS influencer
//!   index ("avoid online sampling from scratch", §II-D).
//!
//! All engines operate on a [`octopus_graph::TopicGraph`] plus a dense
//! [`octopus_graph::EdgeProbs`] (one materialized query distribution), so the
//! same machinery serves both classical single-graph IM and topic-aware IM.

#![warn(missing_docs)]

pub mod celf;
pub mod coins;
pub mod heuristics;
pub mod mc;
pub mod opim;
pub mod rr;

pub use celf::{celf_select, greedy_select, CelfResult, SpreadOracle};
pub use coins::{stream_seed, EdgeCoins};
pub use heuristics::{degree_discount, single_discount, top_degree};
pub use mc::{estimate_spread, estimate_spread_parallel, simulate_once, McOracle};
pub use opim::{opim_select, opim_select_budgeted, OpimBudget, OpimOptions, OpimResult};
pub use rr::{RrCollection, RrOracle};
