//! Structural seed-selection heuristics: the cheap baselines every IM
//! evaluation compares against (Chen, Wang, Yang — KDD'09).
//!
//! * [`top_degree`] — the naive "rank by out-degree" heuristic the paper's
//!   Scenario 1 contrasts with ("instead of ranking users with their
//!   individual influence");
//! * [`degree_discount`] — DegreeDiscount: after selecting a seed, its
//!   neighbors' effective degrees are discounted to account for overlap.
//!   Designed for uniform-probability IC; we use the mean edge probability
//!   of the materialized query graph as its `p` parameter;
//! * [`single_discount`] — the simpler discount (−1 per selected neighbor).
//!
//! All three are query-dependent only through the materialized
//! probabilities, run in `O(m + n log n)`-ish time, and carry no
//! approximation guarantee — they anchor the quality axis of experiment E4.

use octopus_graph::{EdgeProbs, NodeId, TopicGraph};

/// Top-`k` nodes by probability-weighted out-degree `Σ_v pp_{u,v}(γ)`.
pub fn top_degree(g: &TopicGraph, probs: &EdgeProbs, k: usize) -> Vec<NodeId> {
    let mut scored: Vec<(NodeId, f64)> = g
        .nodes()
        .map(|u| {
            let w: f64 = g.out_edges(u).map(|(_, e)| probs.get(e) as f64).sum();
            (u, w)
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
    scored.truncate(k);
    scored.into_iter().map(|(u, _)| u).collect()
}

/// Pick the unselected argmax, breaking ties toward the lower node id so
/// results are deterministic and match the greedy engines' convention.
fn argmax_unselected(score: &[f64], selected: &[bool]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (u, &s) in score.iter().enumerate() {
        if selected[u] {
            continue;
        }
        match best {
            Some(b) if score[b] >= s => {}
            _ => best = Some(u),
        }
    }
    best
}

/// SingleDiscount: when a seed is selected, every other potential seed that
/// points at the seed's (probably activated) followers loses that overlap
/// from its score.
pub fn single_discount(g: &TopicGraph, probs: &EdgeProbs, k: usize) -> Vec<NodeId> {
    let n = g.node_count();
    let mut score: Vec<f64> = (0..n)
        .map(|u| {
            g.out_edges(NodeId(u as u32))
                .map(|(_, e)| probs.get(e) as f64)
                .sum()
        })
        .collect();
    let mut selected = vec![false; n];
    let mut discounted = vec![false; n]; // followers already claimed by a seed
    let mut seeds = Vec::with_capacity(k);
    while seeds.len() < k.min(n) {
        let Some(best) = argmax_unselected(&score, &selected) else {
            break;
        };
        selected[best] = true;
        seeds.push(NodeId(best as u32));
        for (f, _) in g.out_edges(NodeId(best as u32)) {
            if discounted[f.index()] {
                continue;
            }
            discounted[f.index()] = true;
            // influence toward f is now redundant for every other candidate
            for (u, e) in g.in_edges(f) {
                if !selected[u.index()] {
                    score[u.index()] -= probs.get(e) as f64;
                }
            }
        }
    }
    seeds
}

/// DegreeDiscount (Chen et al., KDD'09, directed adaptation): track per
/// candidate the out-mass `t_u` already claimed by seeds and score by
/// `d_u − 2·t_u − (d_u − t_u)·t_u·p̄` with `p̄` the mean edge probability.
pub fn degree_discount(g: &TopicGraph, probs: &EdgeProbs, k: usize) -> Vec<NodeId> {
    let n = g.node_count();
    let m = g.edge_count();
    let mean_p = if m == 0 {
        0.0
    } else {
        probs.as_slice().iter().map(|&p| p as f64).sum::<f64>() / m as f64
    };
    let degree: Vec<f64> = (0..n)
        .map(|u| {
            g.out_edges(NodeId(u as u32))
                .map(|(_, e)| probs.get(e) as f64)
                .sum()
        })
        .collect();
    let mut t = vec![0.0f64; n]; // per-candidate out-mass claimed by seeds
    let mut score = degree.clone();
    let mut selected = vec![false; n];
    let mut claimed = vec![false; n];
    let mut seeds = Vec::with_capacity(k);
    while seeds.len() < k.min(n) {
        let Some(best) = argmax_unselected(&score, &selected) else {
            break;
        };
        selected[best] = true;
        seeds.push(NodeId(best as u32));
        for (f, _) in g.out_edges(NodeId(best as u32)) {
            if claimed[f.index()] {
                continue;
            }
            claimed[f.index()] = true;
            for (u, e) in g.in_edges(f) {
                let ui = u.index();
                if selected[ui] {
                    continue;
                }
                t[ui] += probs.get(e) as f64;
                // ddv = d_v − 2 t_v − (d_v − t_v) · t_v · p  (KDD'09 eq. 2)
                score[ui] = degree[ui] - 2.0 * t[ui] - (degree[ui] - t[ui]) * t[ui] * mean_p;
            }
        }
    }
    seeds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mc::estimate_spread;
    use octopus_graph::GraphBuilder;

    /// Two hubs sharing all their followers at high probability (overlap is
    /// nearly worthless: 0.99 vs 0.9 per follower), plus a disjoint
    /// mini-hub. Plain degree picks both big hubs; discounts must divert the
    /// second seed to the mini-hub.
    fn overlapping_hubs() -> (TopicGraph, EdgeProbs) {
        let mut b = GraphBuilder::new(1);
        let _ = b.add_nodes(14);
        for v in 2..=9u32 {
            b.add_edge(NodeId(0), NodeId(v), &[(0, 0.9)]).unwrap();
            b.add_edge(NodeId(1), NodeId(v), &[(0, 0.9)]).unwrap();
        }
        for v in 11..=13u32 {
            b.add_edge(NodeId(10), NodeId(v), &[(0, 0.9)]).unwrap();
        }
        let g = b.build().unwrap();
        let p = g.materialize(&[1.0]).unwrap();
        (g, p)
    }

    #[test]
    fn top_degree_ranks_by_weighted_degree() {
        let (g, p) = overlapping_hubs();
        let seeds = top_degree(&g, &p, 2);
        assert_eq!(
            seeds,
            vec![NodeId(0), NodeId(1)],
            "plain degree ignores overlap"
        );
    }

    #[test]
    fn discounts_avoid_fully_overlapping_hubs() {
        let (g, p) = overlapping_hubs();
        for method in [single_discount, degree_discount] {
            let seeds = method(&g, &p, 2);
            assert_eq!(seeds[0], NodeId(0));
            assert_eq!(
                seeds[1],
                NodeId(10),
                "second seed must be the disjoint hub, got {seeds:?}"
            );
        }
    }

    #[test]
    fn discount_seeds_spread_at_least_as_well_as_degree() {
        let (g, p) = overlapping_hubs();
        let deg = estimate_spread(&g, &p, &top_degree(&g, &p, 2), 20_000, 1);
        let dd = estimate_spread(&g, &p, &degree_discount(&g, &p, 2), 20_000, 1);
        assert!(
            dd > deg,
            "degree-discount {dd} must beat plain degree {deg}"
        );
    }

    #[test]
    fn k_bounds_respected() {
        let (g, p) = overlapping_hubs();
        assert_eq!(top_degree(&g, &p, 0).len(), 0);
        assert_eq!(degree_discount(&g, &p, 100).len(), g.node_count());
        let seeds = single_discount(&g, &p, 5);
        let mut dedup = seeds.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 5, "no duplicate seeds");
    }

    #[test]
    fn empty_graph_safe() {
        let g = GraphBuilder::new(1).build().unwrap();
        let p = g.materialize(&[1.0]).unwrap();
        assert!(top_degree(&g, &p, 3).is_empty());
        assert!(degree_discount(&g, &p, 3).is_empty());
        assert!(single_discount(&g, &p, 3).is_empty());
    }
}
