//! Deterministic, storage-free edge coins (common random numbers).
//!
//! A *possible world* of the IC model fixes one uniform coin `c_e ∈ [0, 1)`
//! per edge; edge `e` is live under query `γ` iff `c_e < pp_e(γ)`. Deriving
//! `c_e` by hashing `(world_seed, edge_id)` — instead of storing it — gives
//! three properties the OCTOPUS engines rely on:
//!
//! 1. **Lazy**: a coin materializes only when a traversal first touches the
//!    edge ("samples as few edges as possible", §II-D's lazy propagation);
//! 2. **Shared across queries**: the same world can be re-evaluated under any
//!    `γ` without resampling — the influencer index stores worlds once and
//!    answers every keyword query from them;
//! 3. **Monotone**: if `pp_e(γ₁) ≤ pp_e(γ₂)` for all `e`, the live-edge set
//!    under `γ₁` is a subset of that under `γ₂` in every world, which makes
//!    sampled spread monotone in the query — the property the bound-pruning
//!    framework needs and our property tests verify.

use octopus_graph::EdgeId;

/// SplitMix64 finalizer — a fast, well-distributed 64-bit mixer.
#[inline(always)]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The seed of work unit `unit` under `master` — the one derivation rule
/// every parallel offline phase uses for its per-unit RNG streams.
///
/// Deriving each unit's stream from `(master, unit index)` instead of
/// advancing one shared sequential RNG makes unit `i`'s randomness
/// independent of *which thread* (and in what order) processes it, so a
/// parallel build is bit-identical to a sequential one. The outer
/// SplitMix64 keeps the derivation asymmetric under nesting — without it,
/// `stream_seed(stream_seed(s, a), b)` would equal
/// `stream_seed(stream_seed(s, b), a)` and two-level derivations (per-topic
/// seed, then per-set within the topic) would collide across units.
#[inline]
pub fn stream_seed(master: u64, unit: u64) -> u64 {
    splitmix64(master ^ splitmix64(unit.wrapping_add(1)))
}

/// One possible world's edge coins, derived on demand from a seed.
///
/// `EdgeCoins` is `Copy` and 8 bytes — cloning a "world" costs nothing,
/// and a collection of `R` worlds is just `R` seeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeCoins {
    seed: u64,
}

impl EdgeCoins {
    /// World with the given seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        EdgeCoins { seed }
    }

    /// Derive `R` distinct worlds from a master seed.
    pub fn worlds(master_seed: u64, count: usize) -> Vec<EdgeCoins> {
        (0..count as u64)
            .map(|i| EdgeCoins::new(splitmix64(master_seed ^ splitmix64(i.wrapping_add(1)))))
            .collect()
    }

    /// The world's seed.
    #[inline]
    pub fn seed(self) -> u64 {
        self.seed
    }

    /// The uniform coin of edge `e` in `[0, 1)`.
    #[inline(always)]
    pub fn coin(self, e: EdgeId) -> f64 {
        let h = splitmix64(self.seed ^ (0xA076_1D64_78BD_642F ^ (e.0 as u64) << 1));
        // take the top 53 bits for a uniform double in [0,1)
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Whether edge `e` is live when its activation probability is `p`.
    #[inline(always)]
    pub fn is_live(self, e: EdgeId, p: f64) -> bool {
        self.coin(e) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coins_deterministic() {
        let w = EdgeCoins::new(42);
        let c1 = w.coin(EdgeId(7));
        let c2 = w.coin(EdgeId(7));
        assert_eq!(c1, c2);
        assert!((0.0..1.0).contains(&c1));
    }

    #[test]
    fn different_edges_different_coins() {
        let w = EdgeCoins::new(42);
        // extremely unlikely to collide
        assert_ne!(w.coin(EdgeId(1)), w.coin(EdgeId(2)));
    }

    #[test]
    fn different_worlds_different_coins() {
        let a = EdgeCoins::new(1);
        let b = EdgeCoins::new(2);
        assert_ne!(a.coin(EdgeId(0)), b.coin(EdgeId(0)));
    }

    #[test]
    fn liveness_is_monotone_in_probability() {
        let w = EdgeCoins::new(99);
        let e = EdgeId(13);
        // if live at p, must be live at any p' >= p
        let c = w.coin(e);
        assert!(w.is_live(e, c + 1e-9));
        assert!(!w.is_live(e, c));
        assert!(!w.is_live(e, 0.0));
        assert!(w.is_live(e, 1.0));
    }

    #[test]
    fn coins_roughly_uniform() {
        // mean of many coins ≈ 0.5, basic sanity on the hash quality
        let w = EdgeCoins::new(7);
        let n = 10_000u32;
        let mean: f64 = (0..n).map(|i| w.coin(EdgeId(i))).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        // and quartiles populated
        let q1 = (0..n).filter(|&i| w.coin(EdgeId(i)) < 0.25).count();
        assert!((q1 as f64 / n as f64 - 0.25).abs() < 0.03);
    }

    #[test]
    fn stream_seed_is_asymmetric_under_nesting() {
        use super::stream_seed;
        // two-level derivations must not collide across unit order
        let a = stream_seed(stream_seed(7, 0), 1);
        let b = stream_seed(stream_seed(7, 1), 0);
        assert_ne!(a, b);
        // and sibling units are distinct
        assert_ne!(stream_seed(7, 0), stream_seed(7, 1));
    }

    #[test]
    fn worlds_are_distinct() {
        let ws = EdgeCoins::worlds(5, 64);
        assert_eq!(ws.len(), 64);
        let mut seeds: Vec<u64> = ws.iter().map(|w| w.seed()).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 64);
    }
}
