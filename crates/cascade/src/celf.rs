//! Greedy and CELF (lazy-greedy) influence maximization over an abstract
//! spread oracle.
//!
//! Both algorithms exploit the monotone submodularity of IC spread and carry
//! the classic `(1 − 1/e)` guarantee relative to the optimal seed set (up to
//! oracle estimation error). CELF (Leskovec et al., KDD'07) returns the same
//! seeds as plain greedy — verified by our property tests — while skipping
//! most marginal-gain evaluations via lazy bounds, which is also the germ of
//! OCTOPUS's best-effort pruning (§II-C).

use octopus_graph::NodeId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Anything that can estimate the influence spread `σ(S)` of a seed set.
///
/// Implementations must be *deterministic per instance* (two calls with the
/// same seed set return the same value) so that greedy comparisons are
/// stable; the Monte-Carlo and RR oracles achieve this by replaying fixed
/// RNG streams.
pub trait SpreadOracle {
    /// Estimated spread of `seeds`.
    fn spread(&mut self, seeds: &[NodeId]) -> f64;

    /// Number of nodes in the underlying graph (candidate universe).
    fn node_count(&self) -> usize;

    /// Marginal gain of adding `candidate` to `base` (whose spread is
    /// `base_spread`). Default recomputes from scratch; oracles with
    /// incremental structure (RR coverage) override this.
    fn marginal_gain(&mut self, base: &[NodeId], base_spread: f64, candidate: NodeId) -> f64 {
        let mut with: Vec<NodeId> = Vec::with_capacity(base.len() + 1);
        with.extend_from_slice(base);
        with.push(candidate);
        self.spread(&with) - base_spread
    }
}

/// Result of a greedy/CELF seed selection.
#[derive(Debug, Clone, PartialEq)]
pub struct CelfResult {
    /// Selected seeds, in selection order.
    pub seeds: Vec<NodeId>,
    /// Estimated spread of the full seed set.
    pub spread: f64,
    /// Marginal gain recorded when each seed was selected.
    pub gains: Vec<f64>,
    /// Number of marginal-gain evaluations performed (pruning metric).
    pub evaluations: usize,
}

/// Max-heap entry ordered by cached gain.
struct HeapEntry {
    gain: f64,
    node: NodeId,
    /// Round in which `gain` was computed (CELF staleness marker).
    round: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.gain == other.gain && self.node == other.node
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // total order on f64 gains (NaN never produced by oracles); ties by
        // node id for determinism.
        self.gain
            .partial_cmp(&other.gain)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// CELF lazy-greedy selection of `k` seeds from an explicit candidate pool.
pub fn celf_select_from(
    oracle: &mut dyn SpreadOracle,
    k: usize,
    candidates: &[NodeId],
) -> CelfResult {
    let mut evaluations = 0usize;
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(candidates.len());

    // Round 0: exact singleton spreads.
    for &u in candidates {
        let gain = oracle.spread(&[u]);
        evaluations += 1;
        heap.push(HeapEntry {
            gain,
            node: u,
            round: 0,
        });
    }

    let mut seeds: Vec<NodeId> = Vec::with_capacity(k);
    let mut gains: Vec<f64> = Vec::with_capacity(k);
    let mut current_spread = 0.0f64;

    while seeds.len() < k {
        let Some(top) = heap.pop() else { break };
        if top.round == seeds.len() {
            // Fresh for this round: select it.
            current_spread += top.gain;
            seeds.push(top.node);
            gains.push(top.gain);
        } else {
            // Stale: recompute and re-insert. Submodularity guarantees the
            // refreshed gain can only shrink, so the heap order stays valid.
            let gain = oracle.marginal_gain(&seeds, current_spread, top.node);
            evaluations += 1;
            heap.push(HeapEntry {
                gain,
                node: top.node,
                round: seeds.len(),
            });
        }
    }

    // Recompute the final spread exactly once for reporting (avoids drift
    // from accumulated marginal estimates when the oracle is stochastic).
    let spread = if seeds.is_empty() {
        0.0
    } else {
        oracle.spread(&seeds)
    };
    CelfResult {
        seeds,
        spread,
        gains,
        evaluations,
    }
}

/// CELF over the whole node universe.
pub fn celf_select(oracle: &mut dyn SpreadOracle, k: usize) -> CelfResult {
    let candidates: Vec<NodeId> = (0..oracle.node_count() as u32).map(NodeId).collect();
    celf_select_from(oracle, k, &candidates)
}

/// Plain greedy (re-evaluates every candidate each round). `O(n·k)` oracle
/// calls — the textbook algorithm, kept as the equivalence oracle for CELF.
pub fn greedy_select(oracle: &mut dyn SpreadOracle, k: usize) -> CelfResult {
    let candidates: Vec<NodeId> = (0..oracle.node_count() as u32).map(NodeId).collect();
    greedy_select_from(oracle, k, &candidates)
}

/// Plain greedy from an explicit candidate pool.
pub fn greedy_select_from(
    oracle: &mut dyn SpreadOracle,
    k: usize,
    candidates: &[NodeId],
) -> CelfResult {
    let mut seeds: Vec<NodeId> = Vec::with_capacity(k);
    let mut gains: Vec<f64> = Vec::with_capacity(k);
    let mut current = 0.0f64;
    let mut evaluations = 0usize;
    let mut remaining: Vec<NodeId> = candidates.to_vec();
    while seeds.len() < k && !remaining.is_empty() {
        let mut best_idx = 0usize;
        let mut best_gain = f64::NEG_INFINITY;
        let mut best_node = NodeId(u32::MAX);
        for (i, &u) in remaining.iter().enumerate() {
            let gain = oracle.marginal_gain(&seeds, current, u);
            evaluations += 1;
            // strict improvement, or a tie broken by lower node id (matching
            // the CELF heap order so the two algorithms agree exactly)
            let improves = gain > best_gain || (gain == best_gain && u < best_node);
            if improves {
                best_idx = i;
                best_gain = gain;
                best_node = u;
            }
        }
        current += best_gain;
        seeds.push(remaining.swap_remove(best_idx));
        gains.push(best_gain);
    }
    let spread = if seeds.is_empty() {
        0.0
    } else {
        oracle.spread(&seeds)
    };
    CelfResult {
        seeds,
        spread,
        gains,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mc::McOracle;
    use octopus_graph::{EdgeProbs, GraphBuilder, TopicGraph};

    /// Two disjoint stars: hub 0 → {2,3,4}, hub 1 → {5,6}; all prob 1.
    fn two_stars() -> (TopicGraph, EdgeProbs) {
        let mut b = GraphBuilder::new(1);
        let _ = b.add_nodes(7);
        for v in [2u32, 3, 4] {
            b.add_edge(NodeId(0), NodeId(v), &[(0, 1.0)]).unwrap();
        }
        for v in [5u32, 6] {
            b.add_edge(NodeId(1), NodeId(v), &[(0, 1.0)]).unwrap();
        }
        let g = b.build().unwrap();
        let p = g.materialize(&[1.0]).unwrap();
        (g, p)
    }

    #[test]
    fn celf_picks_both_hubs() {
        let (g, p) = two_stars();
        let mut oracle = McOracle::new(&g, &p, 1, 1); // deterministic graph: 1 run is exact
        let res = celf_select(&mut oracle, 2);
        assert_eq!(res.seeds, vec![NodeId(0), NodeId(1)]);
        assert_eq!(res.spread, 7.0);
        assert_eq!(res.gains, vec![4.0, 3.0]);
    }

    #[test]
    fn greedy_matches_celf_on_deterministic_graph() {
        let (g, p) = two_stars();
        let mut o1 = McOracle::new(&g, &p, 1, 1);
        let mut o2 = McOracle::new(&g, &p, 1, 1);
        let a = celf_select(&mut o1, 3);
        let b = greedy_select(&mut o2, 3);
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.spread, b.spread);
    }

    #[test]
    fn celf_does_fewer_evaluations_than_greedy() {
        let (g, p) = two_stars();
        let mut o1 = McOracle::new(&g, &p, 1, 1);
        let mut o2 = McOracle::new(&g, &p, 1, 1);
        let a = celf_select(&mut o1, 3);
        let b = greedy_select(&mut o2, 3);
        assert!(
            a.evaluations < b.evaluations,
            "celf {} vs greedy {}",
            a.evaluations,
            b.evaluations
        );
    }

    #[test]
    fn k_larger_than_candidates_selects_all() {
        let (g, p) = two_stars();
        let mut oracle = McOracle::new(&g, &p, 1, 1);
        let res = celf_select_from(&mut oracle, 10, &[NodeId(0), NodeId(1)]);
        assert_eq!(res.seeds.len(), 2);
    }

    #[test]
    fn k_zero_is_empty() {
        let (g, p) = two_stars();
        let mut oracle = McOracle::new(&g, &p, 1, 1);
        let res = celf_select(&mut oracle, 0);
        assert!(res.seeds.is_empty());
        assert_eq!(res.spread, 0.0);
    }

    #[test]
    fn selection_gains_are_non_increasing() {
        let (g, p) = two_stars();
        let mut oracle = McOracle::new(&g, &p, 1, 1);
        let res = celf_select(&mut oracle, 5);
        for w in res.gains.windows(2) {
            assert!(w[0] >= w[1] - 1e-9, "gains must decrease: {:?}", res.gains);
        }
    }

    #[test]
    fn restricted_candidates_respected() {
        let (g, p) = two_stars();
        let mut oracle = McOracle::new(&g, &p, 1, 1);
        let res = celf_select_from(&mut oracle, 1, &[NodeId(1), NodeId(5)]);
        assert_eq!(res.seeds, vec![NodeId(1)]);
    }
}
