//! Monte-Carlo forward simulation of the independent-cascade process.
//!
//! The estimator of record: slow but unbiased, used as ground truth for
//! every faster method in the repository (RR sets, MIA, the OCTOPUS online
//! algorithms) and as the paper's "traditional IM" baseline component.

use crate::celf::SpreadOracle;
use octopus_graph::{EdgeProbs, NodeId, TopicGraph};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Run one IC cascade from `seeds`; returns the number of activated nodes
/// (including the seeds). `visited` and `queue` are caller-provided work
/// buffers so tight estimation loops do not allocate (`visited` entries are
/// reset on exit; it must be `node_count` long and all-false on entry).
pub fn simulate_once_with_buffers(
    g: &TopicGraph,
    probs: &EdgeProbs,
    seeds: &[NodeId],
    rng: &mut SmallRng,
    visited: &mut [bool],
    queue: &mut Vec<NodeId>,
) -> usize {
    debug_assert_eq!(visited.len(), g.node_count());
    queue.clear();
    let mut activated = 0usize;
    for &s in seeds {
        if !visited[s.index()] {
            visited[s.index()] = true;
            queue.push(s);
            activated += 1;
        }
    }
    let mut head = 0usize;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        for (v, e) in g.out_edges(u) {
            if !visited[v.index()] {
                let p = probs.get(e);
                if p > 0.0 && rng.random::<f32>() < p {
                    visited[v.index()] = true;
                    queue.push(v);
                    activated += 1;
                }
            }
        }
    }
    // reset for the next run
    for &u in queue.iter() {
        visited[u.index()] = false;
    }
    activated
}

/// Run one IC cascade from `seeds` and return the activated count.
pub fn simulate_once(
    g: &TopicGraph,
    probs: &EdgeProbs,
    seeds: &[NodeId],
    rng: &mut SmallRng,
) -> usize {
    let mut visited = vec![false; g.node_count()];
    let mut queue = Vec::new();
    simulate_once_with_buffers(g, probs, seeds, rng, &mut visited, &mut queue)
}

/// Estimate the influence spread `σ(S)` of `seeds` as the mean activated
/// count over `runs` simulations.
pub fn estimate_spread(
    g: &TopicGraph,
    probs: &EdgeProbs,
    seeds: &[NodeId],
    runs: usize,
    seed: u64,
) -> f64 {
    assert!(runs > 0, "need at least one simulation run");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut visited = vec![false; g.node_count()];
    let mut queue = Vec::new();
    let mut total = 0usize;
    for _ in 0..runs {
        total += simulate_once_with_buffers(g, probs, seeds, &mut rng, &mut visited, &mut queue);
    }
    total as f64 / runs as f64
}

/// Parallel spread estimation: splits `runs` across `threads` scoped
/// workers, each with an independent RNG stream.
pub fn estimate_spread_parallel(
    g: &TopicGraph,
    probs: &EdgeProbs,
    seeds: &[NodeId],
    runs: usize,
    seed: u64,
    threads: usize,
) -> f64 {
    assert!(runs > 0, "need at least one simulation run");
    let threads = threads.max(1).min(runs);
    if threads == 1 {
        return estimate_spread(g, probs, seeds, runs, seed);
    }
    let per = runs / threads;
    let extra = runs % threads;
    let totals = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let my_runs = per + usize::from(t < extra);
            let my_seed = seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(t as u64 + 1));
            handles.push(scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(my_seed);
                let mut visited = vec![false; g.node_count()];
                let mut queue = Vec::new();
                let mut total = 0usize;
                for _ in 0..my_runs {
                    total += simulate_once_with_buffers(
                        g,
                        probs,
                        seeds,
                        &mut rng,
                        &mut visited,
                        &mut queue,
                    );
                }
                total
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("mc worker panicked"))
            .sum::<usize>()
    });
    totals as f64 / runs as f64
}

/// A [`SpreadOracle`] backed by Monte-Carlo simulation.
///
/// Deterministic for a fixed `(seed, runs)`: every [`SpreadOracle::spread`]
/// call replays the same RNG stream, so greedy/CELF comparisons are stable.
#[derive(Debug, Clone)]
pub struct McOracle<'a> {
    g: &'a TopicGraph,
    probs: &'a EdgeProbs,
    runs: usize,
    seed: u64,
    calls: usize,
}

impl<'a> McOracle<'a> {
    /// Create an oracle doing `runs` simulations per evaluation.
    pub fn new(g: &'a TopicGraph, probs: &'a EdgeProbs, runs: usize, seed: u64) -> Self {
        McOracle {
            g,
            probs,
            runs,
            seed,
            calls: 0,
        }
    }

    /// Number of spread evaluations performed (for pruning-effectiveness
    /// metrics in the experiment harness).
    pub fn calls(&self) -> usize {
        self.calls
    }
}

impl SpreadOracle for McOracle<'_> {
    fn spread(&mut self, seeds: &[NodeId]) -> f64 {
        self.calls += 1;
        estimate_spread(self.g, self.probs, seeds, self.runs, self.seed)
    }

    fn node_count(&self) -> usize {
        self.g.node_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_graph::GraphBuilder;

    /// Deterministic chain 0 →(1.0) 1 →(1.0) 2.
    fn chain_certain() -> (TopicGraph, EdgeProbs) {
        let mut b = GraphBuilder::new(1);
        let _ = b.add_nodes(3);
        b.add_edge(NodeId(0), NodeId(1), &[(0, 1.0)]).unwrap();
        b.add_edge(NodeId(1), NodeId(2), &[(0, 1.0)]).unwrap();
        let g = b.build().unwrap();
        let p = g.materialize(&[1.0]).unwrap();
        (g, p)
    }

    /// Star: 0 → 1..=10 each with prob 0.5.
    fn star_half() -> (TopicGraph, EdgeProbs) {
        let mut b = GraphBuilder::new(1);
        let _ = b.add_nodes(11);
        for v in 1..=10 {
            b.add_edge(NodeId(0), NodeId(v), &[(0, 0.5)]).unwrap();
        }
        let g = b.build().unwrap();
        let p = g.materialize(&[1.0]).unwrap();
        (g, p)
    }

    #[test]
    fn certain_chain_activates_everything() {
        let (g, p) = chain_certain();
        let s = estimate_spread(&g, &p, &[NodeId(0)], 10, 1);
        assert_eq!(s, 3.0);
    }

    #[test]
    fn zero_prob_spreads_only_seeds() {
        let mut b = GraphBuilder::new(1);
        let _ = b.add_nodes(4);
        b.add_edge(NodeId(0), NodeId(1), &[(0, 1.0)]).unwrap();
        let g = b.build().unwrap();
        let p = g.materialize(&[0.0]).unwrap(); // gamma kills the only topic
                                                // NOTE: gamma [0.0] is not a distribution, but materialize only needs
                                                // the right dimension; spread semantics still hold.
        let s = estimate_spread(&g, &p, &[NodeId(0)], 50, 2);
        assert_eq!(s, 1.0);
    }

    #[test]
    fn duplicate_seeds_counted_once() {
        let (g, p) = chain_certain();
        let s = estimate_spread(&g, &p, &[NodeId(0), NodeId(0)], 5, 3);
        assert_eq!(s, 3.0);
    }

    #[test]
    fn star_spread_matches_expectation() {
        let (g, p) = star_half();
        // E[spread] = 1 + 10·0.5 = 6
        let s = estimate_spread(&g, &p, &[NodeId(0)], 20_000, 4);
        assert!((s - 6.0).abs() < 0.15, "estimated {s}");
    }

    #[test]
    fn parallel_matches_expectation_too() {
        let (g, p) = star_half();
        let s = estimate_spread_parallel(&g, &p, &[NodeId(0)], 20_000, 4, 4);
        assert!((s - 6.0).abs() < 0.15, "estimated {s}");
    }

    #[test]
    fn estimation_is_deterministic_for_fixed_seed() {
        let (g, p) = star_half();
        let a = estimate_spread(&g, &p, &[NodeId(0)], 500, 7);
        let b = estimate_spread(&g, &p, &[NodeId(0)], 500, 7);
        assert_eq!(a, b);
        let c = estimate_spread(&g, &p, &[NodeId(0)], 500, 8);
        assert_ne!(a, c, "different seed should differ (w.h.p.)");
    }

    #[test]
    fn oracle_counts_calls() {
        let (g, p) = chain_certain();
        let mut o = McOracle::new(&g, &p, 3, 1);
        let _ = o.spread(&[NodeId(0)]);
        let _ = o.spread(&[NodeId(1)]);
        assert_eq!(o.calls(), 2);
        assert_eq!(o.node_count(), 3);
    }

    #[test]
    fn empty_seed_set_spreads_zero() {
        let (g, p) = chain_certain();
        let s = estimate_spread(&g, &p, &[], 5, 1);
        assert_eq!(s, 0.0);
    }

    #[test]
    fn buffers_are_reset_between_runs() {
        let (g, p) = star_half();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut visited = vec![false; g.node_count()];
        let mut queue = Vec::new();
        for _ in 0..100 {
            let _ = simulate_once_with_buffers(
                &g,
                &p,
                &[NodeId(0)],
                &mut rng,
                &mut visited,
                &mut queue,
            );
            assert!(visited.iter().all(|&v| !v), "visited must be cleared");
        }
    }
}
