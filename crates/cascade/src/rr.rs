//! Reverse-reachable (RR) set sampling \[Borgs et al.; Tang et al., 8\].
//!
//! An RR set is sampled by picking a uniform root `v` and collecting every
//! node that reaches `v` in one random live-edge possible world (reverse BFS
//! with per-edge coin flips). The classic identity
//!
//! ```text
//! σ(S) = n · Pr[ S ∩ RR ≠ ∅ ]
//! ```
//!
//! turns set coverage into an unbiased spread estimator, and greedy
//! max-coverage over a collection of RR sets into near-optimal influence
//! maximization. This module provides the collection, the estimators, and
//! the exact greedy coverage selection used by every IM engine in the
//! repository.

use crate::celf::SpreadOracle;
use crate::coins::stream_seed;
use octopus_graph::{EdgeProbs, NodeId, TopicGraph};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::cell::RefCell;

thread_local! {
    /// Per-thread epoch-stamped visited buffer for [`sample_rr_set`]:
    /// `(buffer, last stamp handed out)`. Pool worker threads persist
    /// across parallel operations, so the buffer amortizes across every
    /// RR batch a thread ever samples instead of being reallocated per
    /// chunk.
    static VISITED: RefCell<(Vec<u64>, u64)> = const { RefCell::new((Vec::new(), 0)) };
}

/// Run `f` with this thread's visited buffer sized for `n` nodes and a
/// fresh stamp. Stamps increase monotonically per thread and reset only
/// when the buffer is resized (which also zeroes it), so a stamp never
/// collides with a mark left by an earlier set — even one sampled from a
/// different collection or graph of the same size.
fn with_visited<R>(n: usize, f: impl FnOnce(&mut [u64], u64) -> R) -> R {
    VISITED.with(|tl| {
        let mut tl = tl.borrow_mut();
        let (buf, stamp) = &mut *tl;
        if buf.len() != n {
            buf.clear();
            buf.resize(n, 0);
            *stamp = 0;
        }
        *stamp += 1;
        f(buf, *stamp)
    })
}

/// A collection of RR sets with an inverted node→sets index.
///
/// Set `i` (counted across the collection's whole lifetime, including
/// [`RrCollection::extend`] calls) is sampled from its own RNG stream
/// derived via [`stream_seed`]`(seed, i)`, so generation parallelizes
/// across sets while staying bit-identical to a sequential build — and
/// `generate(n)` followed by `extend(m)` equals `generate(n + m)`.
#[derive(Debug, Clone)]
pub struct RrCollection {
    n: usize,
    /// Each RR set as a vector of member node ids.
    sets: Vec<Vec<u32>>,
    /// Inverted index: for each node, the RR sets containing it.
    node_to_sets: Vec<Vec<u32>>,
    /// Total number of edges examined during generation (work metric,
    /// reported by the sampling-efficiency experiments).
    edges_examined: usize,
    /// Master seed; set `i` samples from `stream_seed(seed, i)`.
    seed: u64,
}

/// Sample one RR set: reverse BFS from a uniform root over live-edge coin
/// flips, all randomness drawn from the set's own `rng`.
///
/// `visited` is a caller-owned epoch buffer (`node_count` entries);
/// membership in *this* set is `visited[u] == stamp`, so the buffer is
/// reused across sets without clearing — per-set work stays proportional
/// to the set, not to the graph.
fn sample_rr_set(
    g: &TopicGraph,
    probs: &EdgeProbs,
    mut rng: SmallRng,
    visited: &mut [u64],
    stamp: u64,
) -> (Vec<u32>, usize) {
    debug_assert_eq!(visited.len(), g.node_count());
    let root = rng.random_range(0..g.node_count() as u32);
    let mut queue: Vec<u32> = vec![root];
    visited[root as usize] = stamp;
    let mut edges_examined = 0usize;
    let mut head = 0usize;
    while head < queue.len() {
        let v = NodeId(queue[head]);
        head += 1;
        for (u, e) in g.in_edges(v) {
            edges_examined += 1;
            if visited[u.index()] != stamp {
                let p = probs.get(e);
                if p > 0.0 && rng.random::<f32>() < p {
                    visited[u.index()] = stamp;
                    queue.push(u.0);
                }
            }
        }
    }
    (queue, edges_examined)
}

impl RrCollection {
    /// Generate `count` RR sets for the IC model `(g, probs)`.
    pub fn generate(g: &TopicGraph, probs: &EdgeProbs, count: usize, seed: u64) -> Self {
        let mut c = RrCollection {
            n: g.node_count(),
            sets: Vec::with_capacity(count),
            node_to_sets: vec![Vec::new(); g.node_count()],
            edges_examined: 0,
            seed,
        };
        c.extend(g, probs, count);
        c
    }

    /// Add `additional` RR sets (used by the OPIM doubling loop).
    ///
    /// Sets are sampled one per work unit on the shared claiming executor
    /// (each set from its index-derived stream, each participating thread
    /// reusing its own epoch-stamped visited buffer), so skewed per-set
    /// costs load-balance without any chunk-size heuristic here; the
    /// inverted index is then merged sequentially in set order, so the
    /// collection is independent of the thread count. Small batches stay
    /// on the calling thread — `extend` also sits on the online query
    /// path (naive/OPIM engines), where even one pool handoff is overhead.
    pub fn extend(&mut self, g: &TopicGraph, probs: &EdgeProbs, additional: usize) {
        assert_eq!(g.node_count(), self.n, "graph changed under the collection");
        if self.n == 0 || additional == 0 {
            return;
        }
        /// Below this many sets, posting to the pool only buys overhead.
        const MIN_PAR_SETS: usize = 64;
        let n = self.n;
        let seed = self.seed;
        let first = self.sets.len() as u64;
        let sample_one = |i: usize| {
            let rng = SmallRng::seed_from_u64(stream_seed(seed, first + i as u64));
            with_visited(n, |visited, stamp| {
                sample_rr_set(g, probs, rng, visited, stamp)
            })
        };
        let sampled: Vec<(Vec<u32>, usize)> = if additional < MIN_PAR_SETS {
            (0..additional).map(sample_one).collect()
        } else {
            (0..additional).into_par_iter().map(sample_one).collect()
        };
        for (members, edges) in sampled.into_iter() {
            let set_id = self.sets.len() as u32;
            self.edges_examined += edges;
            for &u in &members {
                self.node_to_sets[u as usize].push(set_id);
            }
            self.sets.push(members);
        }
    }

    /// Number of RR sets.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Node count of the underlying graph.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Total edges examined while sampling (lazy-sampling work metric).
    pub fn edges_examined(&self) -> usize {
        self.edges_examined
    }

    /// Members of RR set `j`.
    pub fn set(&self, j: usize) -> &[u32] {
        &self.sets[j]
    }

    /// RR sets containing node `u`.
    pub fn sets_containing(&self, u: NodeId) -> &[u32] {
        &self.node_to_sets[u.index()]
    }

    /// Number of RR sets hit by `seeds`.
    pub fn coverage(&self, seeds: &[NodeId]) -> usize {
        let mut covered = vec![false; self.sets.len()];
        let mut count = 0usize;
        for &s in seeds {
            for &j in &self.node_to_sets[s.index()] {
                if !covered[j as usize] {
                    covered[j as usize] = true;
                    count += 1;
                }
            }
        }
        count
    }

    /// Unbiased spread estimate `n · coverage / R`.
    pub fn estimate_spread(&self, seeds: &[NodeId]) -> f64 {
        if self.sets.is_empty() {
            return 0.0;
        }
        self.n as f64 * self.coverage(seeds) as f64 / self.sets.len() as f64
    }

    /// Exact greedy max-coverage selection of `k` seeds.
    ///
    /// Returns the seeds (selection order) and the number of RR sets they
    /// cover. Linear total work in `Σ|RR|` via coverage-count decrements.
    pub fn select_seeds(&self, k: usize) -> (Vec<NodeId>, usize) {
        let (seeds, total, _) = self.select_seeds_with_gains(k);
        (seeds, total)
    }

    /// [`select_seeds`](Self::select_seeds) plus each seed's marginal
    /// coverage gain converted to spread units (`n · Δcov / R`) — the
    /// per-seed scores a scatter-gather merge ranks by.
    pub fn select_seeds_with_gains(&self, k: usize) -> (Vec<NodeId>, usize, Vec<f64>) {
        let mut cov_count: Vec<usize> = self.node_to_sets.iter().map(Vec::len).collect();
        let mut covered = vec![false; self.sets.len()];
        let mut chosen = vec![false; self.n];
        let mut seeds = Vec::with_capacity(k);
        let mut gains = Vec::with_capacity(k);
        let scale = if self.sets.is_empty() {
            0.0
        } else {
            self.n as f64 / self.sets.len() as f64
        };
        let mut total = 0usize;
        for _ in 0..k.min(self.n) {
            // argmax coverage count, ties by lower id
            let mut best = usize::MAX;
            let mut best_count = 0usize;
            for (u, &c) in cov_count.iter().enumerate() {
                if !chosen[u] && c > best_count {
                    best = u;
                    best_count = c;
                }
            }
            if best == usize::MAX {
                // remaining nodes cover nothing new; pick lowest-id unchosen
                if let Some(u) = (0..self.n).find(|&u| !chosen[u]) {
                    chosen[u] = true;
                    seeds.push(NodeId(u as u32));
                    gains.push(0.0);
                    continue;
                }
                break;
            }
            chosen[best] = true;
            seeds.push(NodeId(best as u32));
            gains.push(best_count as f64 * scale);
            total += best_count;
            for &j in &self.node_to_sets[best] {
                if !covered[j as usize] {
                    covered[j as usize] = true;
                    for &u in &self.sets[j as usize] {
                        cov_count[u as usize] = cov_count[u as usize].saturating_sub(1);
                    }
                }
            }
        }
        (seeds, total, gains)
    }
}

/// A [`SpreadOracle`] backed by a fixed RR collection.
///
/// Deterministic (the collection is frozen at construction), so CELF and
/// greedy agree exactly. `marginal_gain` is overridden with incremental
/// coverage for speed.
#[derive(Debug, Clone)]
pub struct RrOracle {
    rr: RrCollection,
    calls: usize,
}

impl RrOracle {
    /// Build an oracle over `count` freshly sampled RR sets.
    pub fn new(g: &TopicGraph, probs: &EdgeProbs, count: usize, seed: u64) -> Self {
        RrOracle {
            rr: RrCollection::generate(g, probs, count, seed),
            calls: 0,
        }
    }

    /// Wrap an existing collection.
    pub fn from_collection(rr: RrCollection) -> Self {
        RrOracle { rr, calls: 0 }
    }

    /// Spread evaluations performed.
    pub fn calls(&self) -> usize {
        self.calls
    }

    /// Access the underlying collection.
    pub fn collection(&self) -> &RrCollection {
        &self.rr
    }
}

impl SpreadOracle for RrOracle {
    fn spread(&mut self, seeds: &[NodeId]) -> f64 {
        self.calls += 1;
        self.rr.estimate_spread(seeds)
    }

    fn node_count(&self) -> usize {
        self.rr.node_count()
    }

    fn marginal_gain(&mut self, base: &[NodeId], _base_spread: f64, candidate: NodeId) -> f64 {
        self.calls += 1;
        if self.rr.is_empty() {
            return 0.0;
        }
        // sets covered by base
        let mut covered = vec![false; self.rr.len()];
        for &s in base {
            for &j in self.rr.sets_containing(s) {
                covered[j as usize] = true;
            }
        }
        let newly = self
            .rr
            .sets_containing(candidate)
            .iter()
            .filter(|&&j| !covered[j as usize])
            .count();
        self.rr.node_count() as f64 * newly as f64 / self.rr.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::celf::{celf_select, greedy_select};
    use octopus_graph::GraphBuilder;

    fn star_half() -> (TopicGraph, EdgeProbs) {
        let mut b = GraphBuilder::new(1);
        let _ = b.add_nodes(11);
        for v in 1..=10 {
            b.add_edge(NodeId(0), NodeId(v), &[(0, 0.5)]).unwrap();
        }
        let g = b.build().unwrap();
        let p = g.materialize(&[1.0]).unwrap();
        (g, p)
    }

    fn two_stars() -> (TopicGraph, EdgeProbs) {
        let mut b = GraphBuilder::new(1);
        let _ = b.add_nodes(7);
        for v in [2u32, 3, 4] {
            b.add_edge(NodeId(0), NodeId(v), &[(0, 1.0)]).unwrap();
        }
        for v in [5u32, 6] {
            b.add_edge(NodeId(1), NodeId(v), &[(0, 1.0)]).unwrap();
        }
        let g = b.build().unwrap();
        let p = g.materialize(&[1.0]).unwrap();
        (g, p)
    }

    #[test]
    fn rr_estimate_is_unbiased_on_star() {
        let (g, p) = star_half();
        let rr = RrCollection::generate(&g, &p, 50_000, 42);
        let est = rr.estimate_spread(&[NodeId(0)]);
        // true spread = 6
        assert!((est - 6.0).abs() < 0.2, "estimated {est}");
    }

    #[test]
    fn rr_estimate_of_leaf_is_one() {
        let (g, p) = star_half();
        let rr = RrCollection::generate(&g, &p, 50_000, 7);
        let est = rr.estimate_spread(&[NodeId(3)]);
        assert!((est - 1.0).abs() < 0.15, "estimated {est}");
    }

    #[test]
    fn coverage_of_all_nodes_is_everything() {
        let (g, p) = star_half();
        let rr = RrCollection::generate(&g, &p, 1000, 3);
        let all: Vec<NodeId> = g.nodes().collect();
        assert_eq!(rr.coverage(&all), rr.len());
    }

    #[test]
    fn greedy_coverage_finds_both_hubs() {
        let (g, p) = two_stars();
        let rr = RrCollection::generate(&g, &p, 5000, 11);
        let (seeds, _) = rr.select_seeds(2);
        assert_eq!(seeds, vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn select_more_seeds_than_useful_still_returns_k() {
        let (g, p) = two_stars();
        let rr = RrCollection::generate(&g, &p, 500, 11);
        let (seeds, _) = rr.select_seeds(7);
        assert_eq!(seeds.len(), 7);
        // no duplicates
        let mut s = seeds.clone();
        s.sort();
        s.dedup();
        assert_eq!(s.len(), 7);
    }

    #[test]
    fn oracle_celf_equals_greedy() {
        let (g, p) = two_stars();
        let rr = RrCollection::generate(&g, &p, 2000, 5);
        let mut o1 = RrOracle::from_collection(rr.clone());
        let mut o2 = RrOracle::from_collection(rr);
        let a = celf_select(&mut o1, 3);
        let b = greedy_select(&mut o2, 3);
        assert_eq!(a.seeds, b.seeds);
        assert!((a.spread - b.spread).abs() < 1e-9);
    }

    #[test]
    fn oracle_marginal_gain_consistent_with_spread() {
        let (g, p) = two_stars();
        let mut o = RrOracle::new(&g, &p, 2000, 9);
        let base = vec![NodeId(0)];
        let s_base = o.spread(&base);
        let mg = o.marginal_gain(&base, s_base, NodeId(1));
        let s_both = o.spread(&[NodeId(0), NodeId(1)]);
        assert!((s_base + mg - s_both).abs() < 1e-9);
    }

    #[test]
    fn extend_grows_collection() {
        let (g, p) = star_half();
        let mut rr = RrCollection::generate(&g, &p, 100, 1);
        let before = rr.edges_examined();
        rr.extend(&g, &p, 100);
        assert_eq!(rr.len(), 200);
        assert!(rr.edges_examined() >= before);
    }

    #[test]
    fn empty_graph_is_safe() {
        let g = GraphBuilder::new(1).build().unwrap();
        let p = g.materialize(&[1.0]).unwrap();
        let rr = RrCollection::generate(&g, &p, 10, 1);
        assert_eq!(rr.len(), 0);
        assert_eq!(rr.estimate_spread(&[]), 0.0);
        let (seeds, cov) = rr.select_seeds(3);
        assert!(seeds.is_empty());
        assert_eq!(cov, 0);
    }

    #[test]
    fn generation_is_independent_of_thread_count() {
        let (g, p) = star_half();
        let seq = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let par = rayon::ThreadPoolBuilder::new()
            .num_threads(8)
            .build()
            .unwrap();
        let a = seq.install(|| RrCollection::generate(&g, &p, 500, 42));
        let b = par.install(|| RrCollection::generate(&g, &p, 500, 42));
        assert_eq!(a.sets, b.sets);
        assert_eq!(a.node_to_sets, b.node_to_sets);
        assert_eq!(a.edges_examined(), b.edges_examined());
    }

    #[test]
    fn extend_equals_one_shot_generation() {
        let (g, p) = star_half();
        let mut grown = RrCollection::generate(&g, &p, 120, 9);
        grown.extend(&g, &p, 80);
        let oneshot = RrCollection::generate(&g, &p, 200, 9);
        assert_eq!(grown.sets, oneshot.sets);
        assert_eq!(grown.edges_examined(), oneshot.edges_examined());
    }

    #[test]
    fn zero_prob_graph_rr_sets_are_singletons() {
        let (g, _) = star_half();
        let p = EdgeProbs::from_vec(vec![0.0; g.edge_count()]);
        let rr = RrCollection::generate(&g, &p, 100, 2);
        for j in 0..rr.len() {
            assert_eq!(rr.set(j).len(), 1);
        }
    }
}
