//! Sharded-vs-whole equivalence on the *seeded generator* workloads.
//!
//! `crates/core/tests/serve_shard.rs` pins the scatter-gather contract on
//! a hand-built fixture whose component structure is chosen to force
//! every merge path; this suite re-pins the same contract on the graphs
//! the benchmarks actually serve — the seeded citation and messenger
//! generators (`octopus_bench::workloads`), multiplied into disjoint
//! copies exactly as `exp_runner --shards` does. At every K ∈ {1, 2, 4}
//! the merged top-k must be bit-identical to one engine over the same
//! union graph (seeds, ranks, names — the documented (gain desc, node id
//! asc) tie-break), autocomplete must union-merge to the single trie's
//! answer, and a routed weight nudge must leave the equivalence intact
//! after its per-shard swap.

use octopus_bench::workloads::{citation_sized, disjoint_copies, messenger_sized};
use octopus_core::engine::{Octopus, OctopusConfig};
use octopus_core::serve::ShardedService;
use octopus_data::SyntheticNetwork;
use octopus_graph::delta::GraphDelta;
use octopus_graph::{EdgeId, TopicGraph};

/// Small-but-real scale: the generators' full topology at a size where
/// the exact best-effort evaluator stays fast enough for CI.
fn config() -> OctopusConfig {
    OctopusConfig {
        piks_index_size: 64,
        mis_rr_per_topic: 100,
        k_max: 5,
        ..Default::default()
    }
}

/// Assert the sharded router over `union` answers ranking and
/// autocomplete exactly like `single` (one engine over the same union).
fn assert_equivalent(sharded: &ShardedService, single: &Octopus, query: &str, prefix: &str) {
    let want = single.find_influencers(query, 5).unwrap();
    let got = sharded.find_influencers(query, 5).unwrap().value;
    assert_eq!(
        got.seeds, want.seeds,
        "merged top-k must be the single-engine ranking"
    );
    assert_eq!(got.result.seeds, want.result.seeds);
    assert!(
        (got.result.spread - want.result.spread).abs() <= 1e-9 * want.result.spread.abs().max(1.0),
        "merged spread {} vs single {}",
        got.result.spread,
        want.result.spread
    );
    let want = single.autocomplete(prefix, 12);
    let got = sharded.autocomplete(prefix, 12).value;
    assert_eq!(got, want, "union-merged completions must match the trie");
}

/// The generator's graph multiplied into 4 disjoint copies — the same
/// union `exp_runner --shards` serves, giving the partition real
/// multi-component structure (the raw citation graph is one giant
/// component plus isolated singletons). Each copy past the first gets a
/// distinct small weight perturbation: identical copies would tie every
/// hub's gain *exactly*, and the order of exact ties between multi-seed
/// prefixes is at the mercy of floating-point regrouping on both sides —
/// the contract under test is the cross-shard merge, so ordering should
/// be structural, not an ulp coin flip (single-seed exact ties are
/// pinned in `crates/core/tests/serve_shard.rs`).
fn union_of(net: &SyntheticNetwork) -> TopicGraph {
    let mut union = disjoint_copies(net, 4);
    let m = net.graph.edge_count() as u32;
    for c in 1..4u32 {
        // every edge of copy c: a hub's MIA tree is local, so sparse
        // nudges can leave its spread bit-unchanged and the tie standing
        let victims: Vec<EdgeId> = (c * m..(c + 1) * m).map(EdgeId).collect();
        union = octopus_graph::delta::nudge_weights(&union, &victims, 0.01 * c as f64)
            .expect("perturbation applies");
    }
    union
}

fn check_network(net: &SyntheticNetwork, query: &str) {
    let union = union_of(net);
    // a real name prefix (first node, first word) so autocomplete
    // actually union-merges hits from every copy, not an empty set
    let prefix: String = net
        .graph
        .name(octopus_graph::NodeId(0))
        .expect("node 0 is named")
        .chars()
        .take(3)
        .collect();
    let single = Octopus::new(union.clone(), net.model.clone(), config()).unwrap();
    assert!(
        !single.autocomplete(&prefix, 12).is_empty(),
        "prefix {prefix:?} must resolve"
    );
    for k in [1usize, 2, 4] {
        let sharded = ShardedService::new(union.clone(), net.model.clone(), config(), k).unwrap();
        assert_equivalent(&sharded, &single, query, &prefix);

        // a routed nudge: flush, then the equivalence must hold against a
        // fresh single engine over the mutated union
        let delta = GraphDelta::NudgeWeights {
            edges: vec![EdgeId(0)],
            delta: 0.05,
        };
        sharded.submit(delta.clone());
        let swaps = sharded.apply_pending().unwrap();
        assert_eq!(swaps.len(), 1, "one edge touches exactly one shard");
        let mutated = delta.apply(&union).unwrap();
        let single_after = Octopus::new(mutated, net.model.clone(), config()).unwrap();
        assert_equivalent(&sharded, &single_after, query, &prefix);
    }
}

#[test]
fn citation_sharded_matches_whole_graph_at_k_1_2_4() {
    let net = citation_sized(120, 300);
    check_network(&net, "data mining");
}

#[test]
fn messenger_sharded_matches_whole_graph_at_k_1_2_4() {
    let net = messenger_sized(150);
    check_network(&net, "game");
}
