//! End-to-end pinning of the ingestion loop (stream → windowed warm
//! refit → topic-batched deltas → epoch swaps) plus the topic-batcher
//! contracts it relies on.
//!
//! The load-bearing assertion: after the loop drains, the graph the
//! serving layer answers from is **bit-identical** to the learner's
//! shadow, which (under `min_change = 0` and the `Insert` policy) is
//! bit-identical to the final learned graph — so served answers match a
//! fresh engine built from that graph exactly. The chain only holds
//! because every link is deterministic: the stream (`timeline`), the
//! warm refit (`crates/data/tests/learn_determinism.rs`), the diff, and
//! delta application.
//!
//! The batcher side pins the per-topic payoff the loop exists for: a
//! batch confined to `T` of `Z` topics reuses at least `Z − T` units
//! per weight stage on its swap (`spread-cap`, `pb-bound`,
//! `mis-tables` — hash-keyed per topic, so confinement is exactly what
//! keeps the other topics' keys unchanged), the planner respects its
//! cap deterministically without reordering same-edge deltas, and the
//! flush budget coalesces a wide plan without changing the final graph.

use octopus_bench::serve_load::MixPools;
use octopus_bench::workloads::citation_sized;
use octopus_core::engine::{Octopus, OctopusConfig};
use octopus_core::serve::ingest::WEIGHT_STAGES;
use octopus_core::serve::{IngestPipeline, OctopusService, Query, QueryService, TopicBatcher};
use octopus_core::QueryBudget;
use octopus_data::{
    stream, ActionLog, EmOptions, NewEdgePolicy, StreamConfig, StreamEvent, TicEm, WindowedLearner,
};
use octopus_graph::delta::GraphDelta;
use octopus_graph::{GraphBuilder, TopicGraph};
use octopus_topics::{TopicModel, Vocabulary};
use std::time::Instant;

#[test]
fn closed_loop_serves_exactly_the_learned_graph() {
    let net = citation_sized(60, 150);
    let opts = EmOptions {
        max_iters: 4,
        ..Default::default()
    };
    let names: Vec<String> = net
        .graph
        .nodes()
        .map(|u| net.graph.name(u).unwrap_or("").to_string())
        .collect();
    let vocab = net.model.vocab().clone();
    let config = OctopusConfig {
        piks_index_size: 64,
        mis_rr_per_topic: 100,
        k_max: 5,
        ..Default::default()
    };

    // warm up on the stream's first 60%, exactly as the runner does
    let actions = stream::timeline(&net.log, &StreamConfig::default());
    let split = actions.len() * 3 / 5;
    let mut warmup_log = ActionLog::new();
    for a in &actions[..split] {
        match &a.event {
            StreamEvent::Item(item) => {
                warmup_log.push_item(item.origin, item.keywords.clone());
            }
            StreamEvent::Trial(t) => warmup_log.push_trial(t.item, t.src, t.dst, t.activated),
        }
    }
    let warm = TicEm::new(opts.clone()).fit(&warmup_log, vocab.clone(), names.clone());
    let model = warm.model.clone();

    let dir = std::env::temp_dir().join("octopus_ingest_loop_e2e");
    std::fs::remove_dir_all(&dir).ok();
    let engine =
        Octopus::open_or_build(warm.graph.clone(), model.clone(), config.clone(), &dir).unwrap();
    let service = OctopusService::with_cache_dir(engine, &dir);
    let mut learner = WindowedLearner::new(
        opts,
        vocab,
        names,
        warmup_log,
        warm,
        NewEdgePolicy::Insert,
        0.0, // bitwise: the shadow must BE the learned graph
    );
    let total_topics = net.graph.num_topics();
    let mut pipeline = IngestPipeline::new(&service, 2, total_topics);

    // replay the tail through the bounded channel in three windows,
    // interleaving a query after every swap to prove the loop serves
    // while it ingests
    let pools = MixPools::from_network(&net);
    let tail: Vec<_> = actions[split..].to_vec();
    let window_size = (tail.len() / 3).max(1);
    // a long cascade's trailing trials can outlast the next item's
    // arrival, so the watermark is the max timestamp, not the last
    let newest_at_ms = tail.iter().map(|a| a.at_ms).max().unwrap();
    let budget = QueryBudget::unlimited();
    let mut consumed = 0usize;
    let mut in_window = 0usize;
    let mut watermark = 0u64;
    let mut epochs = Vec::new();
    for action in stream::spawn_replay(tail.clone(), 64) {
        watermark = watermark.max(action.at_ms);
        learner.observe(&action);
        consumed += 1;
        in_window += 1;
        if in_window >= window_size || consumed == tail.len() {
            let pre = learner.shadow().clone();
            let closed = Instant::now();
            let outcome = learner.fit_window().unwrap();
            let report = pipeline
                .submit_window(outcome.deltas, &pre, in_window as u64, watermark, closed)
                .unwrap();
            assert!(!report.swaps.is_empty(), "new evidence must swap an epoch");
            in_window = 0;
            let served = service
                .execute(
                    &Query::FindInfluencers {
                        query: pools.queries[0].clone(),
                        k: 5,
                    },
                    &budget,
                )
                .unwrap();
            epochs.push(served.epoch);
        }
    }
    assert_eq!(consumed, tail.len(), "the bounded replay must drain fully");

    let stats = pipeline.stats();
    assert_eq!(stats.windows_fit, 3);
    assert_eq!(stats.actions_consumed, tail.len() as u64);
    assert!(stats.swaps >= 2, "the loop must land at least two swaps");
    assert_eq!(stats.batches_dropped, 0);
    assert_eq!(stats.retries, 0);
    assert_eq!(stats.watermark_ms, newest_at_ms);
    assert!(
        epochs.windows(2).all(|w| w[0] < w[1]),
        "each window's queries must see a newer epoch: {epochs:?}"
    );

    // the chain of bit-identities the loop guarantees
    assert_eq!(
        learner.shadow(),
        &learner.learned().graph,
        "min_change = 0 + Insert: the shadow is the learned graph"
    );
    assert_eq!(
        service.snapshot().engine().graph(),
        learner.shadow(),
        "the served graph must be the shadow, bit for bit"
    );

    // served answers == a fresh engine built from the final learned graph
    let fresh = Octopus::new(learner.learned().graph.clone(), model, config).unwrap();
    let want = fresh.find_influencers(&pools.queries[0], 5).unwrap();
    let got = service
        .execute(
            &Query::FindInfluencers {
                query: pools.queries[0].clone(),
                k: 5,
            },
            &budget,
        )
        .unwrap()
        .value
        .into_influencers()
        .unwrap()
        .value;
    assert_eq!(got.seeds, want.seeds);
    assert_eq!(got.result.seeds, want.result.seeds);
    assert_eq!(got.result.spread.to_bits(), want.result.spread.to_bits());
    let got = service
        .execute(
            &Query::Autocomplete {
                prefix: pools.prefixes[0].clone(),
                limit: 10,
            },
            &budget,
        )
        .unwrap()
        .value
        .into_completions()
        .unwrap()
        .value;
    assert_eq!(got, fresh.autocomplete(&pools.prefixes[0], 10));
    let got = service
        .execute(
            &Query::SuggestKeywords {
                user: pools.users[0].clone(),
                k: 3,
            },
            &budget,
        )
        .unwrap()
        .value
        .into_suggestions()
        .unwrap()
        .value;
    let want = fresh.suggest_keywords(&pools.users[0], 3).unwrap();
    assert_eq!(got.user, want.user);
    assert_eq!(got.words, want.words);
    std::fs::remove_dir_all(&dir).ok();
}

/// A 4-topic star: the hub's edge to spoke 0 carries all four topics
/// (so a one-topic change can restate the rest bitwise), the remaining
/// spokes give each topic its own edge.
fn tiny_fixture() -> (TopicGraph, TopicModel, OctopusConfig) {
    let mut b = GraphBuilder::new(4);
    let hub = b.add_node("hub-main");
    let first = b.add_node("spoke-0");
    b.add_edge(hub, first, &[(0, 0.5), (1, 0.25), (2, 0.25), (3, 0.25)])
        .unwrap();
    for z in 1..4 {
        let v = b.add_node(format!("spoke-{z}"));
        b.add_edge(hub, v, &[(z, 0.5)]).unwrap();
    }
    let g = b.build().unwrap();
    let mut vocab = Vocabulary::new();
    for w in ["alpha", "beta", "gamma", "delta"] {
        vocab.intern(w);
    }
    let rows = (0..4)
        .map(|z| (0..4).map(|w| if w == z { 0.85 } else { 0.05 }).collect())
        .collect();
    let model = TopicModel::from_rows(vocab, rows, vec![0.25; 4]).unwrap();
    let config = OctopusConfig {
        piks_index_size: 32,
        mis_rr_per_topic: 64,
        k_max: 2,
        ..Default::default()
    };
    (g, model, config)
}

/// One f64-exact single-topic row change on the hub→spoke-0 edge: only
/// topic `z` moves, every other entry is restated bitwise.
fn one_topic_delta(g: &TopicGraph, z: usize, to: f64) -> GraphDelta {
    let edge = g
        .find_edge(octopus_graph::NodeId(0), octopus_graph::NodeId(1))
        .expect("fixture edge");
    let probs = [(0, 0.5), (1, 0.25), (2, 0.25), (3, 0.25)]
        .into_iter()
        .map(|(t, p)| (t, if t == z { to } else { p }))
        .collect();
    GraphDelta::SetWeights { edge, probs }
}

#[test]
fn topic_confined_batch_reuses_all_other_topics_units() {
    let (g, model, config) = tiny_fixture();
    let z_count = g.num_topics();
    let dir = std::env::temp_dir().join("octopus_ingest_loop_reuse");
    std::fs::remove_dir_all(&dir).ok();
    let engine = Octopus::open_or_build(g.clone(), model, config, &dir).unwrap();
    let service = OctopusService::with_cache_dir(engine, &dir);

    let delta = one_topic_delta(&g, 0, 0.75);
    let touched = delta.touched_topics(&g).unwrap();
    assert_eq!(
        touched.iter().copied().collect::<Vec<_>>(),
        vec![0],
        "restating the other entries bitwise must keep them out"
    );
    let plan = TopicBatcher::new(1).plan(std::slice::from_ref(&delta), &g);
    assert_eq!(plan.len(), 1);
    assert_eq!(plan[0].topics_touched(z_count), 1);

    let mut pipeline = IngestPipeline::new(&service, 1, z_count);
    let report = pipeline
        .submit_window(vec![delta], &g, 1, 42, Instant::now())
        .unwrap();
    assert_eq!(report.batches, 1);
    assert_eq!(report.swaps.len(), 1);
    for stage in WEIGHT_STAGES {
        let s = report.swaps[0]
            .report
            .stage_reuse
            .iter()
            .find(|s| s.stage == stage)
            .unwrap_or_else(|| panic!("stage {stage} missing from the swap report"));
        assert_eq!(s.total, z_count, "{stage} keys one unit per topic");
        assert!(
            s.reused >= z_count - 1,
            "a 1-of-{z_count}-topic batch must reuse ≥ {} {stage} units, got {}/{}",
            z_count - 1,
            s.reused,
            s.total
        );
    }
    assert!(pipeline.stats().reuse_ratio() > 0.0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batcher_respects_the_cap_and_never_reorders_same_edge_deltas() {
    let (g, _, _) = tiny_fixture();
    // six single-topic changes across four topics, with two hitting the
    // same edge (the hub→spoke-0 row, topics 0 then 2): the second must
    // not jump past the first even if an earlier batch has room
    let deltas = vec![
        one_topic_delta(&g, 0, 0.75),
        one_topic_delta(&g, 1, 0.30),
        one_topic_delta(&g, 2, 0.35),
        one_topic_delta(&g, 3, 0.40),
        one_topic_delta(&g, 0, 0.80),
        one_topic_delta(&g, 2, 0.45),
    ];
    let batcher = TopicBatcher::new(2);
    let plan = batcher.plan(&deltas, &g);
    assert_eq!(plan, batcher.plan(&deltas, &g));
    for batch in &plan {
        assert!(
            batch.topics_touched(4) <= 2,
            "every batch must stay within the cap: {:?}",
            batch.topics
        );
    }
    // flattening the plan in batch order, same-edge deltas keep their
    // submission order (they all rewrite the same row, so application
    // order is the row's final value)
    let flat: Vec<&GraphDelta> = plan.iter().flat_map(|b| b.deltas.iter()).collect();
    let positions: Vec<usize> = deltas
        .iter()
        .map(|d| flat.iter().position(|x| *x == d).unwrap())
        .collect();
    assert!(positions[0] < positions[4], "topic-0 rewrites stay ordered");
    assert!(positions[2] < positions[5], "topic-2 rewrites stay ordered");
}

#[test]
fn flush_budget_coalesces_without_changing_the_final_graph() {
    let (g, model, config) = tiny_fixture();
    let deltas: Vec<GraphDelta> = (0..4).map(|z| one_topic_delta(&g, z, 0.6)).collect();
    // uncoalesced, a cap of 1 splits the four disjoint topics four ways
    assert_eq!(TopicBatcher::new(1).plan(&deltas, &g).len(), 4);

    let service = OctopusService::new(Octopus::new(g.clone(), model, config).unwrap());
    let mut pipeline = IngestPipeline::new(&service, 1, g.num_topics()).with_flush_budget(2);
    let report = pipeline
        .submit_window(deltas.clone(), &g, 4, 7, Instant::now())
        .unwrap();
    assert!(
        report.batches <= 2,
        "the budget must cap the swap count, got {}",
        report.batches
    );
    assert_eq!(report.swaps.len(), report.batches);
    let want = octopus_graph::delta::apply_all(&g, &deltas).unwrap();
    assert_eq!(
        service.snapshot().engine().graph(),
        &want,
        "coalescing batches must not change what the deltas compute"
    );
}
