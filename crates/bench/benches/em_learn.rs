//! E7 bench: EM learning throughput vs action-log size and topic count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use octopus_data::{CitationConfig, EmOptions, TicEm};

fn bench_em_vs_items(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_em_vs_items");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for papers in [100usize, 300, 900] {
        let net = CitationConfig {
            authors: 80,
            papers,
            num_topics: 3,
            words_per_topic: 10,
            seed: 5,
            ..Default::default()
        }
        .generate();
        let em = TicEm::new(EmOptions {
            num_topics: 3,
            max_iters: 10,
            ..Default::default()
        });
        group.bench_with_input(BenchmarkId::from_parameter(papers), &net, |b, net| {
            b.iter(|| {
                em.fit(
                    std::hint::black_box(&net.log),
                    net.model.vocab().clone(),
                    net.graph.names().to_vec(),
                )
            })
        });
    }
    group.finish();
}

fn bench_em_vs_topics(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_em_vs_topics");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let net = CitationConfig {
        authors: 80,
        papers: 300,
        num_topics: 4,
        words_per_topic: 10,
        seed: 5,
        ..Default::default()
    }
    .generate();
    for z in [2usize, 4, 8] {
        let em = TicEm::new(EmOptions {
            num_topics: z,
            max_iters: 10,
            ..Default::default()
        });
        group.bench_with_input(BenchmarkId::from_parameter(z), &em, |b, em| {
            b.iter(|| {
                em.fit(
                    std::hint::black_box(&net.log),
                    net.model.vocab().clone(),
                    net.graph.names().to_vec(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_em_vs_items, bench_em_vs_topics);
criterion_main!(benches);
