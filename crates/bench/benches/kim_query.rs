//! E1 bench: online keyword-IM query latency per engine, on the standard
//! citation workload. The paper's headline claim is that the online engines
//! answer interactively while the naive baseline cannot.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use octopus_bench::workloads::citation_small;
use octopus_core::engine::{KimEngineChoice, Octopus, OctopusConfig};
use octopus_core::kim::BoundKind;

fn engines() -> Vec<(&'static str, KimEngineChoice)> {
    vec![
        ("naive", KimEngineChoice::Naive),
        ("mis", KimEngineChoice::Mis),
        (
            "be-pb",
            KimEngineChoice::BestEffort(BoundKind::Precomputation),
        ),
        (
            "be-nb",
            KimEngineChoice::BestEffort(BoundKind::Neighborhood),
        ),
        (
            "topic-sample",
            KimEngineChoice::TopicSample {
                bound: BoundKind::Precomputation,
                extra_samples: 16,
                direct_eps: 0.1,
            },
        ),
    ]
}

fn bench_kim_query(c: &mut Criterion) {
    let net = citation_small();
    let gamma = net.model.infer_str("data mining").expect("resolves");
    let mut group = c.benchmark_group("e1_kim_query_k10");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (label, kim) in engines() {
        let engine = Octopus::new(
            net.graph.clone(),
            net.model.clone(),
            OctopusConfig {
                kim,
                piks_index_size: 256,
                k_max: 15,
                cache_capacity: 0, // measure the engine, not the cache
                ..Default::default()
            },
        )
        .expect("engine builds");
        group.bench_with_input(BenchmarkId::from_parameter(label), &engine, |b, e| {
            b.iter(|| {
                e.find_influencers_gamma(std::hint::black_box(&gamma), 10)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_kim_query_vs_k(c: &mut Criterion) {
    let net = citation_small();
    let gamma = net.model.infer_str("neural network").expect("resolves");
    let engine = Octopus::new(
        net.graph.clone(),
        net.model.clone(),
        OctopusConfig {
            kim: KimEngineChoice::BestEffort(BoundKind::Precomputation),
            piks_index_size: 256,
            cache_capacity: 0, // measure the engine, not the cache
            ..Default::default()
        },
    )
    .expect("engine builds");
    let mut group = c.benchmark_group("e1_kim_query_vs_k");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for k in [1usize, 5, 10, 25] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                engine
                    .find_influencers_gamma(std::hint::black_box(&gamma), k)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kim_query, bench_kim_query_vs_k);
criterion_main!(benches);
