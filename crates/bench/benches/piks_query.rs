//! E2 bench: personalized keyword-suggestion latency vs `k` and candidate
//! pool size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use octopus_bench::workloads::{citation_small, prolific_users, user_keywords};
use octopus_core::piks::{GreedyPiks, InfluencerIndex, PiksConfig};
use octopus_topics::KeywordId;

fn bench_suggest_vs_k(c: &mut Criterion) {
    let net = citation_small();
    let index = InfluencerIndex::build(&net.graph, 1024, 7);
    let engine = GreedyPiks::new(&net.graph, &net.model, &index, PiksConfig::default());
    let target = prolific_users(&net, 1)[0];
    let pool = user_keywords(&net)[&target].clone();
    let mut group = c.benchmark_group("e2_piks_vs_k");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for k in [1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                engine
                    .suggest(std::hint::black_box(target), &pool, k)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_suggest_vs_pool(c: &mut Criterion) {
    let net = citation_small();
    let index = InfluencerIndex::build(&net.graph, 1024, 7);
    let engine = GreedyPiks::new(&net.graph, &net.model, &index, PiksConfig::default());
    let target = prolific_users(&net, 1)[0];
    let full: Vec<KeywordId> = (0..net.model.vocab_size())
        .map(|i| KeywordId(i as u32))
        .collect();
    let mut group = c.benchmark_group("e2_piks_vs_pool");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for pool_size in [8usize, 32, 128] {
        let pool: Vec<KeywordId> = full.iter().copied().take(pool_size).collect();
        group.bench_with_input(BenchmarkId::from_parameter(pool_size), &pool, |b, pool| {
            b.iter(|| {
                engine
                    .suggest(target, std::hint::black_box(pool), 2)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_suggest_vs_k, bench_suggest_vs_pool);
criterion_main!(benches);
