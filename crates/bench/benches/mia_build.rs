//! E3 bench: MIA arborescence construction across pruning thresholds — the
//! interactivity knob of the path-exploration service.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use octopus_bench::workloads::citation_small;
use octopus_graph::stats::top_out_degree;
use octopus_mia::{ArbDirection, Arborescence};

fn bench_mioa_vs_theta(c: &mut Criterion) {
    let net = citation_small();
    let gamma = net.model.infer_str("data mining").expect("resolves");
    let probs = net.graph.materialize(gamma.as_slice()).expect("dims");
    let root = top_out_degree(&net.graph, 1)[0].0;
    let mut group = c.benchmark_group("e3_mioa_vs_theta");
    for theta in [0.1f64, 0.01, 0.001] {
        group.bench_with_input(BenchmarkId::from_parameter(theta), &theta, |b, &theta| {
            b.iter(|| {
                Arborescence::build(
                    &net.graph,
                    std::hint::black_box(&probs),
                    root,
                    theta,
                    ArbDirection::Out,
                )
            })
        });
    }
    group.finish();
}

fn bench_miia_reverse(c: &mut Criterion) {
    let net = citation_small();
    let gamma = net.model.infer_str("neural network").expect("resolves");
    let probs = net.graph.materialize(gamma.as_slice()).expect("dims");
    // a well-connected leaf: last of the top-32 hubs
    let root = top_out_degree(&net.graph, 32).last().unwrap().0;
    c.bench_function("e3_miia_reverse_theta_0.01", |b| {
        b.iter(|| {
            Arborescence::build(
                &net.graph,
                std::hint::black_box(&probs),
                root,
                0.01,
                ArbDirection::In,
            )
        })
    });
}

criterion_group!(benches, bench_mioa_vs_theta, bench_miia_reverse);
criterion_main!(benches);
