//! E5 bench: query latency of the topic-sample engine as the offline sample
//! budget grows (denser samples → more direct answers → lower latency).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use octopus_bench::workloads::citation_small;
use octopus_core::engine::{KimEngineChoice, Octopus, OctopusConfig};
use octopus_core::kim::BoundKind;
use octopus_topics::TopicDistribution;

fn bench_query_vs_sample_budget(c: &mut Criterion) {
    let net = citation_small();
    // a mildly mixed query: likely outside eps of the corners but inside a
    // dense extra-sample cloud
    let gamma = {
        let z = net.graph.num_topics();
        let mut w = vec![0.05; z];
        w[0] = 0.8;
        TopicDistribution::from_weights(w).expect("valid weights")
    };
    let mut group = c.benchmark_group("e5_query_vs_samples");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for extra in [0usize, 16, 64] {
        let engine = Octopus::new(
            net.graph.clone(),
            net.model.clone(),
            OctopusConfig {
                kim: KimEngineChoice::TopicSample {
                    bound: BoundKind::Precomputation,
                    extra_samples: extra,
                    direct_eps: 0.15,
                },
                piks_index_size: 128,
                k_max: 15,
                cache_capacity: 0, // measure the engine, not the cache
                ..Default::default()
            },
        )
        .expect("engine builds");
        group.bench_with_input(BenchmarkId::from_parameter(extra), &engine, |b, e| {
            b.iter(|| {
                e.find_influencers_gamma(std::hint::black_box(&gamma), 10)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query_vs_sample_budget);
criterion_main!(benches);
