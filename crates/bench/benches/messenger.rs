//! E8 bench: the QQ deployment scenario — campaign queries and influencer
//! profiling on the messenger workload.

use criterion::{criterion_group, criterion_main, Criterion};
use octopus_bench::workloads::{messenger_sized, prolific_users, user_keywords};
use octopus_core::engine::{KimEngineChoice, Octopus, OctopusConfig};
use octopus_core::kim::BoundKind;

fn bench_campaign_query(c: &mut Criterion) {
    let net = messenger_sized(500);
    let engine = Octopus::new(
        net.graph.clone(),
        net.model.clone(),
        OctopusConfig {
            kim: KimEngineChoice::BestEffort(BoundKind::Precomputation),
            piks_index_size: 512,
            cache_capacity: 0, // measure the engine, not the cache
            ..Default::default()
        },
    )
    .expect("engine builds")
    .with_user_keywords(user_keywords(&net));
    let gamma = net.model.infer_str("game").expect("resolves");
    c.bench_function("e8_campaign_query_k8", |b| {
        b.iter(|| {
            engine
                .find_influencers_gamma(std::hint::black_box(&gamma), 8)
                .unwrap()
        })
    });

    let target = prolific_users(&net, 1)[0];
    c.bench_function("e8_influencer_profiling_k3", |b| {
        b.iter(|| {
            engine
                .suggest_keywords_for(std::hint::black_box(target), 3)
                .unwrap()
        })
    });
}

criterion_group!(benches, bench_campaign_query);
criterion_main!(benches);
