//! E9 bench: the spread-estimation engines head to head — Monte-Carlo
//! simulation, RR-set coverage, and deterministic MIA.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use octopus_bench::workloads::citation_small;
use octopus_cascade::{estimate_spread, estimate_spread_parallel, RrCollection};
use octopus_graph::stats::top_out_degree;
use octopus_mia::mia_spread_set;

fn bench_estimators(c: &mut Criterion) {
    let net = citation_small();
    let gamma = net.model.infer_str("data mining").expect("resolves");
    let probs = net.graph.materialize(gamma.as_slice()).expect("dims");
    let seeds: Vec<octopus_graph::NodeId> = top_out_degree(&net.graph, 10)
        .into_iter()
        .map(|(u, _)| u)
        .collect();

    let mut group = c.benchmark_group("e9_seed_set_spread");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for runs in [500usize, 5000] {
        group.bench_with_input(BenchmarkId::new("mc", runs), &runs, |b, &runs| {
            b.iter(|| estimate_spread(&net.graph, &probs, std::hint::black_box(&seeds), runs, 3))
        });
    }
    group.bench_function("mc_5000_parallel4", |b| {
        b.iter(|| {
            estimate_spread_parallel(&net.graph, &probs, std::hint::black_box(&seeds), 5000, 3, 4)
        })
    });
    let rr = RrCollection::generate(&net.graph, &probs, 10_000, 17);
    group.bench_function("rr_10000_amortized", |b| {
        b.iter(|| rr.estimate_spread(std::hint::black_box(&seeds)))
    });
    for theta in [0.1f64, 0.01] {
        group.bench_with_input(BenchmarkId::new("mia", theta), &theta, |b, &theta| {
            b.iter(|| mia_spread_set(&net.graph, &probs, std::hint::black_box(&seeds), theta))
        });
    }
    group.finish();
}

fn bench_rr_generation(c: &mut Criterion) {
    let net = citation_small();
    let gamma = net.model.infer_str("data mining").expect("resolves");
    let probs = net.graph.materialize(gamma.as_slice()).expect("dims");
    let mut group = c.benchmark_group("e9_rr_generation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for sets in [1000usize, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(sets), &sets, |b, &sets| {
            b.iter(|| RrCollection::generate(&net.graph, std::hint::black_box(&probs), sets, 17))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_estimators, bench_rr_generation);
criterion_main!(benches);
