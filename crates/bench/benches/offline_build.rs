//! Offline-build pipeline bench: sequential (1-thread) vs 2-thread vs
//! parallel (default thread count) staged builds on the citation
//! generator workload, per engine configuration. The determinism contract
//! says the outputs are identical — this bench measures how much wall
//! clock the parallel stage DAG, the intra-stage fan-out, and the
//! executor's dynamic chunk-claiming buy. The 2-thread point is the
//! interesting one for the work-claiming executor: with static chunks a
//! single hub-rooted PIKS world could strand half the units behind it,
//! whereas claiming lets the other thread drain the remainder. (Numbers
//! are only meaningful on a multi-core host; the dev container is
//! single-CPU.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use octopus_core::engine::{KimEngineChoice, OctopusConfig};
use octopus_core::kim::BoundKind;
use octopus_core::offline;

fn configs() -> Vec<(&'static str, OctopusConfig)> {
    let base = OctopusConfig {
        piks_index_size: 1024,
        mis_rr_per_topic: 2000,
        k_max: 10,
        ..Default::default()
    };
    vec![
        (
            "mis",
            OctopusConfig {
                kim: KimEngineChoice::Mis,
                ..base.clone()
            },
        ),
        (
            "pb",
            OctopusConfig {
                kim: KimEngineChoice::BestEffort(BoundKind::Precomputation),
                ..base.clone()
            },
        ),
        (
            "topic_sample",
            OctopusConfig {
                kim: KimEngineChoice::TopicSample {
                    bound: BoundKind::Precomputation,
                    extra_samples: 8,
                    direct_eps: 0.05,
                },
                ..base
            },
        ),
    ]
}

fn bench_sequential_vs_parallel(c: &mut Criterion) {
    let net = octopus_bench::workloads::citation_small();
    let single = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    let two = rayon::ThreadPoolBuilder::new()
        .num_threads(2)
        .build()
        .unwrap();
    let mut group = c.benchmark_group("offline_build");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(5));
    for (label, config) in configs() {
        group.bench_with_input(
            BenchmarkId::new("threads_1", label),
            &config,
            |b, config| {
                b.iter(|| {
                    single.install(|| offline::build(std::hint::black_box(&net.graph), config))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("threads_2", label),
            &config,
            |b, config| {
                b.iter(|| two.install(|| offline::build(std::hint::black_box(&net.graph), config)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("threads_default", label),
            &config,
            |b, config| b.iter(|| offline::build(std::hint::black_box(&net.graph), config)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sequential_vs_parallel);
criterion_main!(benches);
