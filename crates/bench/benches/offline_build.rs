//! Offline-build pipeline bench: sequential (1-thread) vs parallel
//! (default thread count) staged builds on the citation generator
//! workload, per engine configuration. The determinism contract says the
//! outputs are identical — this bench measures how much wall clock the
//! parallel stage DAG and intra-stage fan-out buy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use octopus_core::engine::{KimEngineChoice, OctopusConfig};
use octopus_core::kim::BoundKind;
use octopus_core::offline;

fn configs() -> Vec<(&'static str, OctopusConfig)> {
    let base = OctopusConfig {
        piks_index_size: 1024,
        mis_rr_per_topic: 2000,
        k_max: 10,
        ..Default::default()
    };
    vec![
        (
            "mis",
            OctopusConfig {
                kim: KimEngineChoice::Mis,
                ..base.clone()
            },
        ),
        (
            "pb",
            OctopusConfig {
                kim: KimEngineChoice::BestEffort(BoundKind::Precomputation),
                ..base.clone()
            },
        ),
        (
            "topic_sample",
            OctopusConfig {
                kim: KimEngineChoice::TopicSample {
                    bound: BoundKind::Precomputation,
                    extra_samples: 8,
                    direct_eps: 0.05,
                },
                ..base
            },
        ),
    ]
}

fn bench_sequential_vs_parallel(c: &mut Criterion) {
    let net = octopus_bench::workloads::citation_small();
    let single = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    let mut group = c.benchmark_group("offline_build");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(5));
    for (label, config) in configs() {
        group.bench_with_input(
            BenchmarkId::new("threads_1", label),
            &config,
            |b, config| {
                b.iter(|| {
                    single.install(|| offline::build(std::hint::black_box(&net.graph), config))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("threads_default", label),
            &config,
            |b, config| b.iter(|| offline::build(std::hint::black_box(&net.graph), config)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sequential_vs_parallel);
criterion_main!(benches);
