//! E4 bench: best-effort engine latency vs graph size (the scalability
//! half of the engine-sweep experiment; the quality half lives in
//! `exp_runner e4`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use octopus_bench::workloads::citation_sized;
use octopus_core::engine::{KimEngineChoice, Octopus, OctopusConfig};
use octopus_core::kim::BoundKind;

fn bench_best_effort_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_best_effort_vs_n");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (authors, papers) in [(200usize, 500usize), (400, 1000), (800, 2000)] {
        let net = citation_sized(authors, papers);
        let gamma = net.model.infer_str("data mining").expect("resolves");
        let engine = Octopus::new(
            net.graph.clone(),
            net.model.clone(),
            OctopusConfig {
                kim: KimEngineChoice::BestEffort(BoundKind::Precomputation),
                piks_index_size: 128,
                cache_capacity: 0, // measure the engine, not the cache
                ..Default::default()
            },
        )
        .expect("engine builds");
        group.bench_with_input(
            BenchmarkId::from_parameter(authors),
            &engine,
            |b, engine| {
                b.iter(|| {
                    engine
                        .find_influencers_gamma(std::hint::black_box(&gamma), 10)
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_naive_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_naive_vs_n");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (authors, papers) in [(200usize, 500usize), (400, 1000)] {
        let net = citation_sized(authors, papers);
        let gamma = net.model.infer_str("data mining").expect("resolves");
        let engine = Octopus::new(
            net.graph.clone(),
            net.model.clone(),
            OctopusConfig {
                kim: KimEngineChoice::Naive,
                piks_index_size: 128,
                cache_capacity: 0, // measure the engine, not the cache
                ..Default::default()
            },
        )
        .expect("engine builds");
        group.bench_with_input(
            BenchmarkId::from_parameter(authors),
            &engine,
            |b, engine| {
                b.iter(|| {
                    engine
                        .find_influencers_gamma(std::hint::black_box(&gamma), 10)
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_best_effort_scaling, bench_naive_scaling);
criterion_main!(benches);
