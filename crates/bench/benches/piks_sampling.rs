//! E6 bench: spread-estimation cost — the influencer index (shared coins,
//! lazy materialization) vs Monte-Carlo and RR sampling from scratch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use octopus_bench::workloads::{citation_small, prolific_users};
use octopus_cascade::{estimate_spread, RrCollection};
use octopus_core::piks::InfluencerIndex;

fn bench_estimation_methods(c: &mut Criterion) {
    let net = citation_small();
    let gamma = net.model.infer_str("data mining").expect("resolves");
    let probs = net.graph.materialize(gamma.as_slice()).expect("dims");
    let target = prolific_users(&net, 1)[0];
    let mut group = c.benchmark_group("e6_single_user_spread");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    group.bench_function("mc_2000_from_scratch", |b| {
        b.iter(|| estimate_spread(&net.graph, &probs, &[std::hint::black_box(target)], 2000, 7))
    });

    group.bench_function("rr_4000_from_scratch", |b| {
        b.iter(|| {
            let rr = RrCollection::generate(&net.graph, &probs, 4000, 11);
            rr.estimate_spread(&[std::hint::black_box(target)])
        })
    });

    for r in [512usize, 2048] {
        let index = InfluencerIndex::build(&net.graph, r, 13);
        group.bench_with_input(
            BenchmarkId::new("index_fresh_session", r),
            &index,
            |b, index| {
                b.iter(|| {
                    let mut s = index.session(&net.graph, &gamma);
                    s.spread_of(std::hint::black_box(target))
                })
            },
        );
    }
    group.finish();
}

fn bench_index_build(c: &mut Criterion) {
    let net = citation_small();
    let mut group = c.benchmark_group("e6_index_build");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for r in [512usize, 2048] {
        group.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, &r| {
            b.iter(|| InfluencerIndex::build(std::hint::black_box(&net.graph), r, 13))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_estimation_methods, bench_index_build);
criterion_main!(benches);
