//! Experiment runner: regenerates every evaluation artifact in
//! `DESIGN.md` §6 / `EXPERIMENTS.md` as paper-style tables on stdout.
//!
//! ```bash
//! cargo run --release -p octopus-bench --bin exp_runner            # all
//! cargo run --release -p octopus-bench --bin exp_runner e4 e6     # subset
//! cargo run --release -p octopus-bench --bin exp_runner -- --quick
//! cargo run --release -p octopus-bench --bin exp_runner -- --csv out/
//! cargo run --release -p octopus-bench --bin exp_runner -- --artifact-cache cache/
//! cargo run --release -p octopus-bench --bin exp_runner -- --quick --delta 8
//! cargo run --release -p octopus-bench --bin exp_runner -- --quick --serve 8
//! cargo run --release -p octopus-bench --bin exp_runner -- --quick --serve 8 --shards 4
//! cargo run --release -p octopus-bench --bin exp_runner -- --quick --serve 8 --budget-sweep
//! cargo run --release -p octopus-bench --bin exp_runner -- --quick --serve 16 --shed --budget-ms 50
//! ```
//!
//! With `--artifact-cache <dir>`, every engine construction goes through
//! [`Octopus::open_or_build`]: the first run of an experiment pays the
//! offline build and persists it, repeat runs (parameter sweeps, re-runs
//! after online-path changes) load the artifacts and report the hit.
//!
//! With `--delta <k>`, the runner executes the incremental-rebuild
//! workload instead of the default sweep: build the citation engine cold,
//! perturb `k` edge weights (plus a rename and an edge-insert variant),
//! reopen against the same cache, and report per-stage reuse and
//! partial-rebuild time versus the full build.
//!
//! With `--serve <workers>`, the runner executes the serving-under-churn
//! workload: that many worker threads issue a mixed online-operator
//! stream against an [`octopus_core::serve::OctopusService`] while a
//! mutator thread injects weight-nudge delta batches that swap epochs
//! mid-run, reporting per-operator throughput and p50/p95/p99 latency
//! plus the swap trajectory. The process exits nonzero on any query
//! error, failed batch, missing swap, or — with `--serve-p99-ms <ms>` —
//! any operator p99 above the guardrail, which is what makes it a CI
//! perf-smoke gate. Adding `--shards <k>` retargets the stream at an
//! [`octopus_core::serve::ShardedService`] over `k` disjoint copies of
//! the network — the scatter-gather router fans queries out per shard
//! and deltas rebuild only the shards they touch (the swap table gains a
//! `shard` column). `--shards` also extends `--delta` with a routed-flush
//! leg measuring single-shard rebuild confinement. `--budget-ms <ms>`
//! gives every serve query that deadline budget (anytime operators);
//! `--shed` adds a tiny admission controller for the overload-soak leg —
//! the run must shed a nonzero-but-bounded fraction while the p99 of
//! admitted queries stays under the guardrail. `--budget-sweep` runs the
//! quality-vs-budget curve: anytime `find_influencers` at increasing
//! sample budgets scored as recall@k against the exact run, appended to
//! `BENCH_serve.json` so `--referee` gates answer-quality regressions
//! (a recall drop > 0.05 at the same configuration fails) alongside
//! latency ones.
//!
//! With `--open-bench`, the runner measures engine startup: it builds the
//! citation artifact cold, then opens it twice — once in owned mode
//! (decode every section into owned structs) and once in zero-copy mapped
//! mode ([`Octopus::open_mapped`], O(pages-touched)) — and reports
//! cold-open wall time, the `artifact-map`/`artifact-validate`/
//! `artifact-decode` split, first-query latency, and RSS growth for both,
//! while asserting that all five online operators answer **bit-identically**
//! in either mode (any divergence exits nonzero). `--paranoid` makes the
//! mapped open verify every section checksum up front instead of lazily.
//!
//! Every invocation also appends one machine-readable run record
//! (workload, config fingerprint, thread count, per-stage timings,
//! per-operator latency quantiles, peak RSS) to `BENCH_<workload>.json`
//! in the current directory (override with `--bench-dir <dir>`) — the
//! repo-root perf trajectory. With `--referee`, the fresh run is first
//! diffed against the most recent comparable record and the process exits
//! nonzero on a regression (>2x and >10ms on any shared metric).

use octopus_bench::record::{self, BenchRecord, Quantiles};
use octopus_bench::table::fmt_duration;
use octopus_bench::workloads::{
    citation_queries, citation_sized, messenger_queries, messenger_sized, prolific_users,
    user_keywords,
};
use octopus_bench::{Referee, Table};
use octopus_cascade::{estimate_spread, RrCollection};
use octopus_core::engine::{KimEngineChoice, Octopus, OctopusConfig};
use octopus_core::kim::bounds::{BoundEstimator, PrecompBound};
use octopus_core::kim::BoundKind;
use octopus_core::paths::ExploreDirection;
use octopus_core::piks::{ExhaustivePiks, GreedyPiks, InfluencerIndex, PiksConfig};
use octopus_data::learn::align_topics;
use octopus_data::{CitationConfig, EmOptions, TicEm};
use octopus_graph::NodeId;
use octopus_mia::{mia_spread_set, ArbDirection, Arborescence, PathExplorer};
use octopus_topics::{KeywordId, TopicDistribution};
use std::sync::OnceLock;
use std::time::Instant;

/// When set (via `--csv <dir>`), every table is also written as CSV.
static CSV_DIR: OnceLock<std::path::PathBuf> = OnceLock::new();

/// When set (via `--artifact-cache <dir>`), engines are constructed with
/// [`Octopus::open_or_build`] against this directory instead of
/// [`Octopus::new`].
static ARTIFACT_CACHE: OnceLock<std::path::PathBuf> = OnceLock::new();

/// Where `BENCH_<workload>.json` trajectories live (`--bench-dir`,
/// default: the current directory, i.e. the repo root in CI).
static BENCH_DIR: OnceLock<std::path::PathBuf> = OnceLock::new();

fn bench_dir() -> std::path::PathBuf {
    BENCH_DIR
        .get()
        .cloned()
        .unwrap_or_else(|| std::path::PathBuf::from("."))
}

/// FNV-1a 64 over a run descriptor — the record's config fingerprint.
fn fnv1a(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Print a table and mirror it to the CSV directory when requested.
fn emit(t: &Table) {
    t.print();
    if let Some(dir) = CSV_DIR.get() {
        match t.write_csv(dir) {
            Ok(path) => eprintln!("[csv] {}", path.display()),
            Err(e) => eprintln!("[csv] write failed: {e}"),
        }
    }
}

struct Scale {
    citation_authors: usize,
    citation_papers: usize,
    scaling_sizes: Vec<(usize, usize)>,
    messenger_users: usize,
    referee_runs: usize,
    piks_targets: usize,
    serve_queries_per_worker: usize,
    ingest_authors: usize,
    ingest_papers: usize,
    ingest_windows: usize,
}

fn scale(quick: bool) -> Scale {
    if quick {
        Scale {
            citation_authors: 400,
            citation_papers: 1000,
            scaling_sizes: vec![(200, 500), (400, 1000)],
            messenger_users: 500,
            referee_runs: 1000,
            piks_targets: 4,
            serve_queries_per_worker: 40,
            ingest_authors: 150,
            ingest_papers: 400,
            ingest_windows: 3,
        }
    } else {
        Scale {
            citation_authors: 2000,
            citation_papers: 5000,
            scaling_sizes: vec![(500, 1200), (2000, 5000), (5000, 12000)],
            messenger_users: 3000,
            referee_runs: 4000,
            piks_targets: 10,
            serve_queries_per_worker: 150,
            ingest_authors: 500,
            ingest_papers: 1200,
            ingest_windows: 4,
        }
    }
}

fn engine_with(
    net: &octopus_data::SyntheticNetwork,
    kim: KimEngineChoice,
) -> (Octopus, std::time::Duration) {
    let config = OctopusConfig {
        kim,
        piks_index_size: 1024,
        k_max: 25,
        ..Default::default()
    };
    let t0 = Instant::now();
    let engine = match ARTIFACT_CACHE.get() {
        Some(dir) => Octopus::open_or_build(net.graph.clone(), net.model.clone(), config, dir),
        None => Octopus::new(net.graph.clone(), net.model.clone(), config),
    }
    .expect("engine builds")
    .with_user_keywords(user_keywords(net));
    let elapsed = t0.elapsed();
    if ARTIFACT_CACHE.get().is_some() {
        eprintln!(
            "[artifact-cache] {} in {}",
            if engine.cache_hit() { "hit" } else { "miss" },
            fmt_duration(elapsed)
        );
    }
    (engine, elapsed)
}

const ENGINES: &[(&str, KimEngineChoice)] = &[
    ("naive", KimEngineChoice::Naive),
    ("mis", KimEngineChoice::Mis),
    (
        "be-PB",
        KimEngineChoice::BestEffort(BoundKind::Precomputation),
    ),
    ("be-LG", KimEngineChoice::BestEffort(BoundKind::LocalGraph)),
    (
        "be-NB",
        KimEngineChoice::BestEffort(BoundKind::Neighborhood),
    ),
    (
        "t-sample",
        KimEngineChoice::TopicSample {
            bound: BoundKind::Precomputation,
            extra_samples: 32,
            direct_eps: 0.1,
        },
    ),
];

/// E1 — Scenario 1: keyword-based influential user discovery (+diversity).
fn e1(s: &Scale) {
    println!("\n================ E1: keyword-based influential user discovery ================");
    let net = citation_sized(s.citation_authors, s.citation_papers);
    let (engine, offline) =
        engine_with(&net, KimEngineChoice::BestEffort(BoundKind::Precomputation));
    let referee = Referee::new(&net.graph).with_runs(s.referee_runs);
    println!(
        "workload: {} researchers, {} edges; offline phase {}",
        net.graph.node_count(),
        net.graph.edge_count(),
        fmt_duration(offline)
    );
    let mut t = Table::new(
        "E1: per-query results (best-effort/PB, k=10)",
        &[
            "query",
            "latency",
            "spread(MC)",
            "deg-baseline",
            "gain",
            "top-3 influencers",
        ],
    );
    for q in citation_queries() {
        let ans = match engine.find_influencers(q, 10) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("query {q:?} failed: {e}");
                continue;
            }
        };
        let seeds: Vec<NodeId> = ans.seeds.iter().map(|x| x.node).collect();
        let mc = referee.score(&ans.gamma, &seeds);
        let deg: Vec<NodeId> = octopus_graph::stats::top_out_degree(&net.graph, 10)
            .into_iter()
            .map(|(u, _)| u)
            .collect();
        let mc_deg = referee.score(&ans.gamma, &deg);
        let top: Vec<&str> = ans.seeds.iter().take(3).map(|x| x.name.as_str()).collect();
        t.row(vec![
            q.to_string(),
            fmt_duration(ans.elapsed),
            format!("{mc:.1}"),
            format!("{mc_deg:.1}"),
            format!("{:+.0}%", 100.0 * (mc - mc_deg) / mc_deg.max(1.0)),
            top.join(", "),
        ]);
    }
    emit(&t);

    // diversity: pairwise seed overlap across topically distinct queries
    let a = engine.find_influencers("data mining", 10).expect("query");
    let b = engine
        .find_influencers("encryption authentication", 10)
        .expect("query");
    let sa: Vec<NodeId> = a.seeds.iter().map(|x| x.node).collect();
    let overlap = b.seeds.iter().filter(|x| sa.contains(&x.node)).count();
    println!("seed overlap between 'data mining' and 'encryption' queries: {overlap}/10 (topic-awareness)\n");
}

/// E2 — Scenario 2: personalized influential keyword suggestion.
fn e2(s: &Scale) {
    println!("\n================ E2: personalized influential keyword suggestion ================");
    let net = citation_sized(s.citation_authors, s.citation_papers);
    let (engine, _) = engine_with(&net, KimEngineChoice::Mis);
    let targets = prolific_users(&net, s.piks_targets);
    let mut t = Table::new(
        "E2: suggestion per target (greedy over influencer index)",
        &[
            "target",
            "k",
            "keywords",
            "spread",
            "consistency",
            "latency",
            "evals",
        ],
    );
    for &u in &targets {
        for k in [1usize, 2, 3] {
            let Ok(ans) = engine.suggest_keywords_for(u, k) else {
                continue;
            };
            t.row(vec![
                engine.graph().name(u).unwrap_or("?").to_string(),
                k.to_string(),
                ans.words.join(", "),
                format!("{:.1}", ans.result.spread),
                format!("{:.2}", ans.result.consistency),
                fmt_duration(ans.elapsed),
                ans.result.stats.evaluations.to_string(),
            ]);
        }
    }
    emit(&t);

    // greedy vs exhaustive quality on capped pools
    let index = InfluencerIndex::build(&net.graph, 2048, 4242);
    let cfg = PiksConfig::default();
    let greedy = GreedyPiks::new(&net.graph, &net.model, &index, cfg.clone());
    let exact = ExhaustivePiks::new(&net.graph, &net.model, &index, cfg);
    let map = user_keywords(&net);
    let mut ratios = Vec::new();
    let mut speedups = Vec::new();
    for &u in &targets {
        let pool: Vec<KeywordId> = map[&u].iter().copied().take(8).collect();
        if pool.len() < 3 {
            continue;
        }
        let t0 = Instant::now();
        let Ok(g) = greedy.suggest(u, &pool, 2) else {
            continue;
        };
        let tg = t0.elapsed();
        let t0 = Instant::now();
        let Ok(e) = exact.suggest(u, &pool, 2) else {
            continue;
        };
        let te = t0.elapsed();
        if e.spread > 0.0 {
            ratios.push(g.spread / e.spread);
            speedups.push(te.as_secs_f64() / tg.as_secs_f64().max(1e-9));
        }
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
    let sp = speedups.iter().sum::<f64>() / speedups.len().max(1) as f64;
    println!(
        "greedy vs exhaustive (k=2, pool≤8): mean quality ratio {mean:.3}, mean speedup {sp:.1}x over {} targets\n",
        ratios.len()
    );
}

/// E3 — Scenario 3: influential-path exploration (θ sweep).
fn e3(s: &Scale) {
    println!("\n================ E3: influential path exploration ================");
    let net = citation_sized(s.citation_authors, s.citation_papers);
    let (engine, _) = engine_with(&net, KimEngineChoice::Mis);
    let ans = engine.find_influencers("data mining", 1).expect("query");
    let root = ans.seeds[0].node;
    let gamma = ans.gamma.clone();
    let probs = net.graph.materialize(gamma.as_slice()).expect("dims");
    let mut t = Table::new(
        format!("E3: MIOA of {:?} vs θ", ans.seeds[0].name),
        &[
            "theta",
            "tree nodes",
            "influence",
            "clusters",
            "build time",
            "d3 bytes",
        ],
    );
    for theta in [0.1, 0.03, 0.01, 0.003, 0.001] {
        let t0 = Instant::now();
        let arb = Arborescence::build(&net.graph, &probs, root, theta, ArbDirection::Out);
        let dt = t0.elapsed();
        let clusters = PathExplorer::new(&arb).clusters().len();
        let json = octopus_mia::json::arborescence_to_d3(&net.graph, &arb).to_string();
        t.row(vec![
            format!("{theta}"),
            arb.len().to_string(),
            format!("{:.1}", arb.total_influence()),
            clusters.to_string(),
            fmt_duration(dt),
            json.len().to_string(),
        ]);
    }
    emit(&t);

    // reverse direction spot check
    let ex = engine
        .explore_paths(&ans.seeds[0].name, ExploreDirection::InfluencedBy, None)
        .expect("reverse");
    println!(
        "reverse (MIIA): {} influencers of {} found in one engine call\n",
        ex.reached - 1,
        ans.seeds[0].name,
    );
}

/// E4 — engine sweep: latency/quality/pruning vs graph size.
fn e4(s: &Scale) {
    println!("\n================ E4: online KIM engines vs the naive baseline ================");
    for &(authors, papers) in &s.scaling_sizes {
        let net = citation_sized(authors, papers);
        let referee = Referee::new(&net.graph).with_runs(s.referee_runs);
        let queries = citation_queries();
        // baseline seeds for the quality ratio
        let (naive_engine, _) = engine_with(&net, KimEngineChoice::Naive);
        let naive_seeds: Vec<(TopicDistribution, Vec<NodeId>)> = queries
            .iter()
            .filter_map(|q| {
                let a = naive_engine.find_influencers(q, 10).ok()?;
                Some((a.gamma.clone(), a.seeds.iter().map(|x| x.node).collect()))
            })
            .collect();
        let mut t = Table::new(
            format!(
                "E4: n={} researchers, m={} edges (k=10, {} queries)",
                net.graph.node_count(),
                net.graph.edge_count(),
                queries.len()
            ),
            &[
                "engine",
                "offline",
                "online avg",
                "quality vs naive",
                "exact evals",
                "pruned %",
            ],
        );
        for &(label, kim) in ENGINES {
            let (engine, offline) = engine_with(&net, kim);
            let mut total = std::time::Duration::ZERO;
            let mut evals = 0usize;
            let mut pruned_pct = Vec::new();
            let mut ratios = Vec::new();
            for (i, q) in queries.iter().enumerate() {
                let Ok(a) = engine.find_influencers(q, 10) else {
                    continue;
                };
                total += a.elapsed;
                evals += a.result.stats.exact_evaluations;
                let n = net.graph.node_count();
                pruned_pct.push(100.0 * a.result.stats.pruned_candidates as f64 / n as f64);
                if let Some((gamma, base)) = naive_seeds.get(i) {
                    let seeds: Vec<NodeId> = a.seeds.iter().map(|x| x.node).collect();
                    ratios.push(referee.ratio(gamma, &seeds, base));
                }
            }
            let nq = queries.len() as u32;
            let mean_ratio = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
            let mean_pruned = pruned_pct.iter().sum::<f64>() / pruned_pct.len().max(1) as f64;
            t.row(vec![
                label.to_string(),
                fmt_duration(offline),
                fmt_duration(total / nq),
                format!("{mean_ratio:.3}"),
                (evals / queries.len()).to_string(),
                format!("{mean_pruned:.0}%"),
            ]);
        }
        // Structural heuristic: degree-discount (KDD'09) — the cheap anchor.
        {
            let mut total = std::time::Duration::ZERO;
            let mut ratios = Vec::new();
            for (i, q) in queries.iter().enumerate() {
                let Ok(gamma) = net.model.infer_str(q) else {
                    continue;
                };
                let Ok(probs) = net.graph.materialize(gamma.as_slice()) else {
                    continue;
                };
                let t0 = Instant::now();
                let seeds = octopus_cascade::degree_discount(&net.graph, &probs, 10);
                total += t0.elapsed();
                if let Some((g, base)) = naive_seeds.get(i) {
                    ratios.push(referee.ratio(g, &seeds, base));
                }
            }
            let mean_ratio = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
            t.row(vec![
                "deg-discount'09".to_string(),
                "0".to_string(),
                fmt_duration(total / queries.len() as u32),
                format!("{mean_ratio:.3}"),
                "0".to_string(),
                "0%".to_string(),
            ]);
        }
        // The 2003-era baseline the paper's "extremely expensive" refers to:
        // CELF greedy over Monte-Carlo simulation. Run on two queries only
        // (it is the point of the row that this is not interactive).
        {
            use octopus_core::kim::{KimAlgorithm, McGreedyKim};
            let mc = McGreedyKim::new(&net.graph, 500, 0x6E6E);
            let mut total = std::time::Duration::ZERO;
            let mut evals = 0usize;
            let mut ratios = Vec::new();
            let sample_queries = 2usize;
            for (i, q) in queries.iter().take(sample_queries).enumerate() {
                let Ok(gamma) = net.model.infer_str(q) else {
                    continue;
                };
                let t0 = Instant::now();
                let res = mc.select(&gamma, 10);
                total += t0.elapsed();
                evals += res.stats.exact_evaluations;
                if let Some((g, base)) = naive_seeds.get(i) {
                    ratios.push(referee.ratio(g, &res.seeds, base));
                }
            }
            let mean_ratio = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
            t.row(vec![
                "mc-greedy'03 (2q)".to_string(),
                "0".to_string(),
                fmt_duration(total / sample_queries as u32),
                format!("{mean_ratio:.3}"),
                (evals / sample_queries).to_string(),
                "0%".to_string(),
            ]);
        }
        emit(&t);
    }

    // PB bound-violation audit (the calibrated-bound honesty check)
    let net = citation_sized(s.scaling_sizes[0].0, s.scaling_sizes[0].1);
    let theta = 1.0 / 320.0;
    let pb = PrecompBound::build(&net.graph, theta, 1.2);
    let gamma = net
        .model
        .infer_str("data mining clustering")
        .expect("resolves");
    let probs = net.graph.materialize(gamma.as_slice()).expect("dims");
    let mut violations = 0usize;
    let mut checked = 0usize;
    let mut worst: f64 = 1.0;
    for u in net.graph.nodes().take(300) {
        let bound = pb.upper_bound(u, &gamma);
        let exact = mia_spread_set(&net.graph, &probs, &[u], theta);
        checked += 1;
        if bound < exact {
            violations += 1;
            worst = worst.min(bound / exact);
        }
    }
    println!(
        "PB bound audit (safety 1.2): {violations}/{checked} violations on a mixed query; worst ratio {worst:.3}\n"
    );
}

/// E5 — topic-sample budget sweep.
fn e5(s: &Scale) {
    println!("\n================ E5: topic-sample precomputation budget ================");
    let net = citation_sized(s.citation_authors, s.citation_papers);
    let referee = Referee::new(&net.graph).with_runs(s.referee_runs);
    let queries = citation_queries();
    // naive baselines per query
    let (naive_engine, _) = engine_with(&net, KimEngineChoice::Naive);
    let baselines: Vec<(TopicDistribution, Vec<NodeId>)> = queries
        .iter()
        .filter_map(|q| {
            let a = naive_engine.find_influencers(q, 10).ok()?;
            Some((a.gamma.clone(), a.seeds.iter().map(|x| x.node).collect()))
        })
        .collect();
    let mut t = Table::new(
        "E5: direct-answer rate and latency vs sample budget (eps=0.10)",
        &[
            "extra samples",
            "offline",
            "direct answers",
            "online avg",
            "quality vs naive",
        ],
    );
    for extra in [0usize, 8, 32, 128] {
        let kim = KimEngineChoice::TopicSample {
            bound: BoundKind::Precomputation,
            extra_samples: extra,
            direct_eps: 0.1,
        };
        let (engine, offline) = engine_with(&net, kim);
        let mut direct = 0usize;
        let mut total = std::time::Duration::ZERO;
        let mut ratios = Vec::new();
        for (i, q) in queries.iter().enumerate() {
            let Ok(a) = engine.find_influencers(q, 10) else {
                continue;
            };
            total += a.elapsed;
            direct += a.result.stats.answered_from_sample as usize;
            if let Some((gamma, base)) = baselines.get(i) {
                let seeds: Vec<NodeId> = a.seeds.iter().map(|x| x.node).collect();
                ratios.push(referee.ratio(gamma, &seeds, base));
            }
        }
        let mean_ratio = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
        t.row(vec![
            extra.to_string(),
            fmt_duration(offline),
            format!("{direct}/{}", queries.len()),
            fmt_duration(total / queries.len() as u32),
            format!("{mean_ratio:.3}"),
        ]);
    }
    emit(&t);
}

/// E6 — PIKS sampling: influencer index vs sampling from scratch.
fn e6(s: &Scale) {
    println!("\n================ E6: influencer index vs sampling from scratch ================");
    let net = citation_sized(s.citation_authors, s.citation_papers);
    let targets = prolific_users(&net, s.piks_targets);
    let gamma = net.model.infer_str("data mining").expect("resolves");
    let probs = net.graph.materialize(gamma.as_slice()).expect("dims");
    // ground truth for error measurement
    let truth: Vec<f64> = targets
        .iter()
        .map(|&u| estimate_spread(&net.graph, &probs, &[u], 20_000, 0xBEEF))
        .collect();

    let mut t = Table::new(
        "E6: single-user spread estimation (per-target averages)",
        &["method", "prep time", "query time", "RMSE", "notes"],
    );
    // (a) MC from scratch per query
    let t0 = Instant::now();
    let mc: Vec<f64> = targets
        .iter()
        .map(|&u| estimate_spread(&net.graph, &probs, &[u], 2000, 7))
        .collect();
    let mc_time = t0.elapsed() / targets.len() as u32;
    t.row(vec![
        "MC (2k runs, per query)".into(),
        "0".into(),
        fmt_duration(mc_time),
        format!("{:.2}", rmse(&mc, &truth)),
        "no reuse across queries".into(),
    ]);
    // (b) RR sets from scratch per query
    let t0 = Instant::now();
    let rr_est: Vec<f64> = targets
        .iter()
        .map(|&u| {
            let rr = RrCollection::generate(&net.graph, &probs, 4000, 11);
            rr.estimate_spread(&[u])
        })
        .collect();
    let rr_time = t0.elapsed() / targets.len() as u32;
    t.row(vec![
        "RR (4k sets, per query)".into(),
        "0".into(),
        fmt_duration(rr_time),
        format!("{:.2}", rmse(&rr_est, &truth)),
        "resampled every query".into(),
    ]);
    // (c) influencer index at several sizes
    for r in [512usize, 2048, 8192] {
        let t0 = Instant::now();
        let idx = InfluencerIndex::build(&net.graph, r, 13);
        let prep = t0.elapsed();
        let t0 = Instant::now();
        let mut session = idx.session(&net.graph, &gamma);
        let est: Vec<f64> = targets.iter().map(|&u| session.spread_of(u)).collect();
        let qt = t0.elapsed() / targets.len() as u32;
        t.row(vec![
            format!("index R={r} (shared coins)"),
            fmt_duration(prep),
            fmt_duration(qt),
            format!("{:.2}", rmse(&est, &truth)),
            format!("{} worlds materialized", session.materialized_worlds()),
        ]);
    }
    emit(&t);
}

fn rmse(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().max(1);
    (a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum::<f64>() / n as f64).sqrt()
}

/// Delta workload (`--delta <k>`): perturb the citation network by a few
/// edges and measure how much of the offline build `open_or_build` reuses
/// from the OCTA section cache, versus paying a full rebuild. Includes a
/// **topic-confined nudge** leg (victims whose sparse rows all live in one
/// topic) that exercises the v5 per-topic cap/PB/MIS sub-sections: only
/// the confined topic's units rebuild, and the per-topic `reused/total`
/// counters land in the table and the `BENCH_delta.json` notes. With
/// `--shards <n>` it additionally measures *routed* rebuilds: the same
/// nudge batch flushed through a [`octopus_core::serve::ShardedService`]
/// over `n` disjoint copies of the network, where only the touched shards
/// rebuild and the rest keep serving their epoch untouched.
fn delta_workload(s: &Scale, k: usize, shards: Option<usize>, rec: &mut BenchRecord) {
    use octopus_graph::delta;
    println!("\n================ DELTA: incremental offline rebuilds (k={k}) ================");
    let net = citation_sized(s.citation_authors, s.citation_papers);
    // the workload needs a guaranteed-cold directory for its baseline; use
    // a private subdirectory so a user's warmed --artifact-cache dir (the
    // e1..e10 sweeps share it) is never wiped
    let dir = ARTIFACT_CACHE
        .get()
        .cloned()
        .unwrap_or_else(std::env::temp_dir)
        .join(format!("delta-workload-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let config = OctopusConfig {
        kim: KimEngineChoice::BestEffort(BoundKind::Precomputation),
        piks_index_size: 1024,
        k_max: 25,
        ..Default::default()
    };
    println!(
        "workload: {} researchers, {} edges; cache dir {}",
        net.graph.node_count(),
        net.graph.edge_count(),
        dir.display()
    );

    // cold: full build, cache written
    let t0 = Instant::now();
    let cold = Octopus::open_or_build(net.graph.clone(), net.model.clone(), config.clone(), &dir)
        .expect("cold build");
    let t_full = t0.elapsed();
    assert!(!cold.cache_hit());
    drop(cold);
    rec.stage("full-build", t_full);

    // the k-edge perturbations, spread across the edge range
    let m = net.graph.edge_count();
    let victims: Vec<octopus_graph::EdgeId> = (0..k)
        .map(|i| octopus_graph::EdgeId(((i * m) / k.max(1)) as u32))
        .collect();
    let nudged = delta::nudge_weights(&net.graph, &victims, 0.05).expect("nudge applies");
    let renamed =
        delta::rename_node(&net.graph, NodeId(0), "renamed-researcher").expect("rename applies");
    let (iu, iv) = {
        // first absent pair scanning from the highest-id node down: a
        // late-source insert shifts few edge ids, isolating footprint reuse
        let n = net.graph.node_count() as u32;
        let mut found = (NodeId(n - 1), NodeId(0));
        'outer: for u in (0..n).rev() {
            for v in 0..n {
                if u != v && net.graph.find_edge(NodeId(u), NodeId(v)).is_none() {
                    found = (NodeId(u), NodeId(v));
                    break 'outer;
                }
            }
        }
        found
    };
    let inserted = delta::insert_edge(&net.graph, iu, iv, &[(0, 0.3)]).expect("insert applies");

    // the topic-confined leg: perturb only the topic-z entries of up to k
    // edges carrying topic z, so the v5 per-topic machinery rebuilds
    // exactly topic z's cap/PB/MIS sub-sections and reuses every other
    // topic's off the donor epochs
    let zs = net.graph.num_topics();
    let confined_topic = (0..zs)
        .max_by_key(|&z| {
            (0..m as u32)
                .filter(|&e| {
                    net.graph
                        .edge_topic_probs(octopus_graph::EdgeId(e))
                        .any(|(t, _)| t.index() == z)
                })
                .count()
        })
        .unwrap_or(0);
    let topic_victims: std::collections::HashSet<u32> = (0..m as u32)
        .filter(|&e| {
            net.graph
                .edge_topic_probs(octopus_graph::EdgeId(e))
                .any(|(t, _)| t.index() == confined_topic)
        })
        .take(k.max(1))
        .collect();
    let topic_label = format!(
        "topic-confined nudge ×{} (topic {confined_topic}/{zs})",
        topic_victims.len()
    );
    let topic_nudged = (!topic_victims.is_empty()).then(|| {
        // rebuild with only the topic-z entry of each victim reflected off
        // the (0, 1] boundary — every other topic's weight slice stays
        // bit-identical, the definition of a topic-z-confined nudge
        let g = &net.graph;
        let mut b = octopus_graph::GraphBuilder::new(g.num_topics())
            .with_capacity(g.node_count(), g.edge_count());
        for u in g.nodes() {
            b.add_node(g.name(u).unwrap_or(""));
        }
        for e in g.edges() {
            let (u, v) = g.edge_endpoints(e).expect("iterated edge is valid");
            let probs: Vec<(usize, f64)> = g
                .edge_topic_probs(e)
                .map(|(t, p)| {
                    let p = p as f64;
                    let p = if t.index() == confined_topic && topic_victims.contains(&e.0) {
                        if p + 0.05 <= 1.0 {
                            p + 0.05
                        } else {
                            p - 0.05
                        }
                    } else {
                        p
                    };
                    (t.index(), p)
                })
                .collect();
            b.add_edge(u, v, &probs).expect("copied edge is valid");
        }
        b.build().expect("topic-confined nudge applies")
    });

    let mut t = Table::new(
        format!("DELTA: partial rebuild vs full build ({} full)", {
            fmt_duration(t_full)
        }),
        &[
            "delta",
            "reopen",
            "speedup",
            "stages reused",
            "cap|pb|mis topics reused",
            "piks worlds reused",
            "stages rebuilt",
        ],
    );
    let mut rows: Vec<(String, octopus_graph::TopicGraph, bool)> = vec![
        (format!("weight nudge ×{k}"), nudged, false),
        ("rename 1 node".to_string(), renamed, false),
        ("insert 1 edge".to_string(), inserted, false),
    ];
    if let Some(g) = topic_nudged {
        rows.push((topic_label.clone(), g, true));
    }
    rows.push(("no delta (restart)".to_string(), net.graph.clone(), false));
    for (label, graph, is_topic_leg) in rows {
        let t0 = Instant::now();
        let engine = Octopus::open_or_build(graph, net.model.clone(), config.clone(), &dir)
            .expect("delta reopen");
        let dt = t0.elapsed();
        rec.stage(&format!("reopen {label}"), dt);
        let report = engine.system_report();
        let full_stages = report.stage_reuse.iter().filter(|s| s.is_full()).count();
        let rebuilt: Vec<&str> = report
            .stage_reuse
            .iter()
            .filter(|s| !s.is_full())
            .map(|s| s.stage)
            .collect();
        let per_topic = |stage: &str| {
            report
                .stage_reuse
                .iter()
                .find(|s| s.stage == stage)
                .map(|s| format!("{}/{}", s.reused, s.total))
                .unwrap_or_else(|| "-".to_string())
        };
        let piks = report
            .stage_reuse
            .iter()
            .find(|s| s.stage == "piks-worlds")
            .expect("piks stage reported");
        if is_topic_leg {
            // seed the trajectory with the per-topic counters so the
            // referee can gate regressions of the confined-rebuild path
            rec.note(
                "topic_nudge_speedup_x",
                t_full.as_secs_f64() / dt.as_secs_f64().max(1e-9),
            );
            for stage in ["spread-cap", "pb-bound", "mis-tables"] {
                if let Some(s) = report.stage_reuse.iter().find(|s| s.stage == stage) {
                    rec.note(&format!("topic_nudge_{stage}_reused"), s.reused as f64)
                        .note(&format!("topic_nudge_{stage}_total"), s.total as f64);
                }
            }
        }
        t.row(vec![
            label,
            fmt_duration(dt),
            format!("{:.1}x", t_full.as_secs_f64() / dt.as_secs_f64().max(1e-9)),
            format!("{full_stages}/{}", report.stage_reuse.len()),
            format!(
                "{}|{}|{}",
                per_topic("spread-cap"),
                per_topic("pb-bound"),
                per_topic("mis-tables")
            ),
            format!("{}/{}", piks.reused, piks.total),
            if rebuilt.is_empty() {
                "none (full hit)".to_string()
            } else {
                rebuilt.join(", ")
            },
        ]);
    }
    emit(&t);

    // routed rebuilds: the same class of nudge batch, flushed through a
    // sharded service — only the touched shards pay anything
    if let Some(n) = shards {
        use octopus_core::serve::ShardedService;
        let union = octopus_bench::workloads::disjoint_copies(&net, n);
        let shard_dir = dir.join("sharded");
        let t0 = Instant::now();
        let service =
            ShardedService::with_cache_dir(union, net.model.clone(), config.clone(), n, &shard_dir)
                .expect("shard engines build");
        let t_shard_build = t0.elapsed();
        rec.stage("sharded-build", t_shard_build);
        let m = service.edge_count();
        // the k victims again, but confined to copy 0 — one shard's range —
        // so the flush demonstrates single-shard confinement at any n
        for i in 0..k {
            service.submit(octopus_graph::delta::GraphDelta::NudgeWeights {
                edges: vec![octopus_graph::EdgeId(((i * (m / n)) / k.max(1)) as u32)],
                delta: 0.05,
            });
        }
        let t0 = Instant::now();
        let swaps = service.apply_pending().expect("routed flush applies");
        let t_flush = t0.elapsed();
        rec.stage("sharded-flush", t_flush);
        rec.note("sharded_shards", service.shard_count() as f64)
            .note("sharded_shards_touched", swaps.len() as f64);
        let mut ts = Table::new(
            format!(
                "DELTA: routed flush over {} shards ({} union edges; built {}, flush {})",
                service.shard_count(),
                service.edge_count(),
                fmt_duration(t_shard_build),
                fmt_duration(t_flush)
            ),
            &["shard", "epoch", "deltas", "rebuild", "stages rebuilt"],
        );
        for swap in &swaps {
            let rebuilt: Vec<&str> = swap
                .report
                .stage_reuse
                .iter()
                .filter(|x| !x.is_full())
                .map(|x| x.stage)
                .collect();
            ts.row(vec![
                swap.shard.to_string(),
                swap.report.epoch.to_string(),
                swap.report.deltas_applied.to_string(),
                fmt_duration(swap.report.rebuild_time),
                if rebuilt.is_empty() {
                    "none (full hit)".to_string()
                } else {
                    rebuilt.join(", ")
                },
            ]);
        }
        emit(&ts);
        println!(
            "routing confined the k={k} nudge batch to {}/{} shard(s); untouched shards kept epoch 0\n",
            swaps.len(),
            service.shard_count()
        );
    }

    // the subdirectory is the workload's scratch space either way
    std::fs::remove_dir_all(&dir).ok();
}

/// Serve workload (`--serve <workers>`, optionally `--shards <k>`):
/// drive a live serving layer with a mixed query stream from `workers`
/// threads while a mutator injects delta batches that swap epochs
/// mid-run. Without `--shards` the target is one whole-graph
/// [`octopus_core::serve::OctopusService`]; with it, a
/// [`octopus_core::serve::ShardedService`] over `k` disjoint copies of
/// the citation network (one copy per shard), so routed deltas rebuild
/// 1/k of the corpus and the swap trajectory is per-shard.
///
/// `--budget-ms <ms>` gives every query that deadline budget, routing it
/// through the anytime operators; `--shed` puts a deliberately tiny
/// admission controller in front of the target (2 execution slots,
/// per-class queues of 2) so an overload run sheds instead of queueing
/// without bound — the run then *requires* a nonzero but bounded shed
/// rate and gates the p99 of **admitted** queries (shed queries never
/// execute and contribute no latency sample). Returns whether the run
/// was healthy (zero query errors, every batch swapped, p99 under the
/// guardrail, shed contract honored) — the CI perf-smoke/soak gate.
fn serve_workload(
    s: &Scale,
    workers: usize,
    shards: Option<usize>,
    p99_guard: Option<std::time::Duration>,
    budget_ms: Option<u64>,
    shed: bool,
    rec: &mut BenchRecord,
) -> bool {
    use octopus_bench::serve_load::{self, ServeLoadConfig, ServeTarget};
    use octopus_core::serve::{AdmissionConfig, OctopusService, ShardedService};
    use octopus_core::QueryBudget;
    use std::time::Duration;
    println!(
        "\n================ SERVE: concurrent serving under delta churn ({workers} workers{}{}{}) ================",
        match shards {
            Some(k) => format!(", {k} shards"),
            None => String::new(),
        },
        match budget_ms {
            Some(ms) => format!(", {ms}ms budget"),
            None => String::new(),
        },
        if shed { ", shed-on-overload" } else { "" }
    );
    let net = citation_sized(s.citation_authors, s.citation_papers);
    // private cache subdir (same reasoning as the delta workload): epoch
    // rebuilds go through open_or_build so swaps exercise the incremental
    // reuse machinery, without touching the user's warmed cache dir
    let dir = ARTIFACT_CACHE
        .get()
        .cloned()
        .unwrap_or_else(std::env::temp_dir)
        .join(format!("serve-workload-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let config = OctopusConfig {
        kim: KimEngineChoice::BestEffort(BoundKind::Precomputation),
        piks_index_size: 1024,
        k_max: 25,
        ..Default::default()
    };
    // the overload leg's deliberately tiny controller: 2 slots, 2 queued
    // per class — with workers ≫ slots the bounded queues must shed
    let admission = AdmissionConfig {
        max_inflight: 2,
        queue_caps: [2, 2, 2],
    };
    let t0 = Instant::now();
    let target = match shards {
        None => {
            let engine = Octopus::open_or_build(net.graph.clone(), net.model.clone(), config, &dir)
                .expect("epoch 0 builds")
                .with_user_keywords(user_keywords(&net));
            let mut service = OctopusService::with_cache_dir(engine, &dir);
            if shed {
                service = service.with_admission(admission);
            }
            ServeTarget::Single(Box::new(service))
        }
        Some(k) => {
            let union = octopus_bench::workloads::disjoint_copies(&net, k);
            let mut service = ShardedService::with_options(
                union,
                net.model.clone(),
                config,
                k,
                Some(dir.clone()),
                false,
                user_keywords(&net),
            )
            .expect("shard engines build");
            if shed {
                service = service.with_admission(admission);
            }
            ServeTarget::Sharded(Box::new(service))
        }
    };
    let t_epoch0 = t0.elapsed();
    rec.stage("epoch0-build", t_epoch0);
    println!(
        "workload: {} researchers, {} edges ×{} shard(s); epoch 0 built in {}",
        net.graph.node_count(),
        net.graph.edge_count(),
        target.shard_count(),
        fmt_duration(t_epoch0)
    );
    let cfg = ServeLoadConfig {
        workers,
        min_queries_per_worker: s.serve_queries_per_worker,
        delta_batches: 4,
        edges_per_batch: 3,
        batch_pause: Duration::from_millis(40),
        budget: match budget_ms {
            Some(ms) => QueryBudget::deadline(Duration::from_millis(ms)),
            None => QueryBudget::unlimited(),
        },
        ..Default::default()
    };
    let report = serve_load::run(target, &net, &cfg);
    std::fs::remove_dir_all(&dir).ok();
    for op in &report.per_op {
        rec.op(
            op.operator.label(),
            Quantiles::from_durations(op.p50, op.p95, op.p99, op.max, op.queries),
        );
    }
    rec.note("throughput_qps", report.throughput)
        .note("total_queries", report.total_queries as f64)
        .note("epoch_swaps", report.swaps.len() as f64)
        .note("deltas_applied", report.deltas_applied as f64)
        .note("shards", report.shards as f64)
        .note("shed_total", report.total_shed as f64)
        .note("shed_rate", report.shed_rate());

    let mut t = Table::new(
        format!(
            "SERVE: per-operator latency of admitted queries ({} workers, {} queries, {} wall)",
            workers,
            report.total_queries,
            fmt_duration(report.wall)
        ),
        &[
            "operator", "queries", "errors", "shed", "q/s", "p50", "p95", "p99", "max",
        ],
    );
    for op in &report.per_op {
        t.row(vec![
            op.operator.label().to_string(),
            op.queries.to_string(),
            op.errors.to_string(),
            op.shed.to_string(),
            format!("{:.0}", op.throughput),
            fmt_duration(op.p50),
            fmt_duration(op.p95),
            fmt_duration(op.p99),
            fmt_duration(op.max),
        ]);
    }
    emit(&t);

    let mut ts = Table::new(
        "SERVE: per-shard swap trajectory (rebuilds overlap serving)",
        &[
            "shard",
            "epoch",
            "deltas",
            "rebuild",
            "piks worlds reused",
            "stages rebuilt",
        ],
    );
    for swap in &report.swaps {
        let piks = swap
            .report
            .stage_reuse
            .iter()
            .find(|x| x.stage == "piks-worlds")
            .expect("piks stage reported");
        let rebuilt: Vec<&str> = swap
            .report
            .stage_reuse
            .iter()
            .filter(|x| !x.is_full())
            .map(|x| x.stage)
            .collect();
        ts.row(vec![
            swap.shard.to_string(),
            swap.report.epoch.to_string(),
            swap.report.deltas_applied.to_string(),
            fmt_duration(swap.report.rebuild_time),
            format!("{}/{}", piks.reused, piks.total),
            if rebuilt.is_empty() {
                "none (full hit)".to_string()
            } else {
                rebuilt.join(", ")
            },
        ]);
    }
    emit(&ts);
    let shards_touched = {
        let mut touched: Vec<usize> = report.swaps.iter().map(|s| s.shard).collect();
        touched.sort_unstable();
        touched.dedup();
        touched.len()
    };
    println!(
        "aggregate: {:.0} q/s across operators; epochs observed {}..={}; {} deltas applied over {} swaps touching {}/{} shard(s)\n",
        report.throughput,
        report.epochs_observed.0,
        report.epochs_observed.1,
        report.deltas_applied,
        report.swaps.len(),
        shards_touched,
        report.shards,
    );

    let mut healthy = true;
    if report.total_errors > 0 {
        eprintln!("[serve] FAIL: {} query errors", report.total_errors);
        healthy = false;
    }
    if report.batches_failed > 0 {
        eprintln!(
            "[serve] FAIL: {} delta batches failed",
            report.batches_failed
        );
        healthy = false;
    }
    if report.swaps.len() < cfg.delta_batches {
        eprintln!(
            "[serve] FAIL: only {}/{} delta batches swapped an epoch",
            report.swaps.len(),
            cfg.delta_batches
        );
        healthy = false;
    }
    // the overload contract: under --shed, p99 of *admitted* queries is
    // always gated — against --serve-p99-ms when given, else a default
    // derived from the budget deadline. The multiplier budgets for the
    // bounded pipeline an admitted query can sit behind: ~3 dispatch
    // generations (2-deep class queue over 2 slots), each generation an
    // execution that may overshoot the deadline by one refinement chunk
    // (deadlines are checked at chunk boundaries only), with epoch
    // rebuilds sharing the rayon pool — but the queue caps keep the
    // whole thing bounded by construction, which is what the gate pins:
    // shed-not-queue means latency stays O(deadline), never unbounded
    let p99_guard = if shed {
        Some(p99_guard.unwrap_or_else(|| {
            Duration::from_millis(budget_ms.unwrap_or(50) * 20).max(Duration::from_millis(1000))
        }))
    } else {
        p99_guard
    };
    if let Some(guard) = p99_guard {
        for op in &report.per_op {
            if op.p99 > guard {
                eprintln!(
                    "[serve] FAIL: {} p99 {} exceeds the {} guardrail",
                    op.operator.label(),
                    fmt_duration(op.p99),
                    fmt_duration(guard)
                );
                healthy = false;
            }
        }
    }
    if shed {
        println!(
            "[serve] shed {} of {} queries ({:.1}% shed rate) under admission control",
            report.total_shed,
            report.total_queries,
            report.shed_rate() * 100.0
        );
        if report.total_shed == 0 {
            eprintln!("[serve] FAIL: overload leg shed nothing — admission control never engaged");
            healthy = false;
        }
        if report.shed_rate() > 0.95 {
            eprintln!(
                "[serve] FAIL: shed rate {:.1}% — admission starved the serving layer",
                report.shed_rate() * 100.0
            );
            healthy = false;
        }
    } else if report.total_shed > 0 {
        eprintln!(
            "[serve] FAIL: {} queries shed without admission control configured",
            report.total_shed
        );
        healthy = false;
    }
    if healthy {
        println!(
            "[serve] OK: zero errors across {} queries racing {} epoch swaps",
            report.total_queries,
            report.swaps.len()
        );
    }
    healthy
}

/// The closed ingestion loop (`--ingest <workers>`): stamp a citation
/// action log into a timed stream, open the serving layer on a model fit
/// from the stream's warm-up prefix, then replay the tail through a
/// bounded channel — refitting the TIC model warm once per window,
/// diffing the learned weights into id-stable `SetWeights` deltas,
/// batching them by topic footprint, and flushing them into the live
/// service — while `workers` threads query that same service through the
/// unified [`Query`](octopus_core::serve::Query) entry point the whole
/// time. Health gates: zero
/// query errors, ≥ 2 epoch swaps landed while serving, and per-topic
/// weight-unit reuse > 0 (the OCTA v5 payoff the batcher protects).
/// With `--shards k` the loop drives the scatter-gather layer over a
/// k-copy network; learned-only edges are deferred either way, so every
/// delta is routable weight traffic.
fn ingest_workload(
    s: &Scale,
    workers: usize,
    shards: Option<usize>,
    rec: &mut BenchRecord,
) -> bool {
    use octopus_bench::serve_load::{percentile, MixPools, ServeTarget};
    use octopus_core::serve::ingest::WEIGHT_STAGES;
    use octopus_core::serve::{
        IngestPipeline, OctopusService, Query, QueryService, ShardedService, WindowReport,
    };
    use octopus_core::QueryBudget;
    use octopus_data::{
        stream, ActionLog, NewEdgePolicy, StreamConfig, StreamEvent, WindowedLearner,
    };
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
    use std::time::Duration;

    // the same seeded operator mix the serve workload drives, built on
    // the unified entry point
    fn mix(rng: &mut SmallRng, pools: &MixPools) -> Query {
        let roll = rng.random_range(0..100u32);
        if roll < 40 {
            let q = &pools.queries[rng.random_range(0..pools.queries.len())];
            Query::FindInfluencers {
                query: q.clone(),
                k: rng.random_range(1..=8usize),
            }
        } else if roll < 60 {
            let u = &pools.users[rng.random_range(0..pools.users.len())];
            Query::SuggestKeywords {
                user: u.clone(),
                k: 2,
            }
        } else if roll < 75 {
            let u = &pools.users[rng.random_range(0..pools.users.len())];
            let q = &pools.queries[rng.random_range(0..pools.queries.len())];
            Query::ExplorePaths {
                user: u.clone(),
                direction: ExploreDirection::Influences,
                query: Some(q.clone()),
            }
        } else if roll < 90 {
            let p = &pools.prefixes[rng.random_range(0..pools.prefixes.len())];
            Query::Autocomplete {
                prefix: p.clone(),
                limit: 10,
            }
        } else {
            let word = &pools.words[rng.random_range(0..pools.words.len())];
            Query::KeywordRadar { word: word.clone() }
        }
    }

    println!(
        "\n================ INGEST: closed loop — stream → learn → diff → batch-by-topic → swap ({workers} query workers{}) ================",
        match shards {
            Some(k) => format!(", {k} shards"),
            None => String::new(),
        }
    );
    let base = citation_sized(s.ingest_authors, s.ingest_papers);
    let net = match shards {
        Some(k) if k > 1 => octopus_bench::workloads::replicated(&base, k),
        _ => base,
    };
    let names: Vec<String> = net
        .graph
        .nodes()
        .map(|u| net.graph.name(u).unwrap_or("").to_string())
        .collect();
    let vocab = net.model.vocab().clone();
    let opts = EmOptions {
        max_iters: 6,
        ..Default::default()
    };

    // stamp the log into a stream: the first 60% is the warm-up prefix
    // the serving layer opens on, the tail is what the loop ingests
    let actions = stream::timeline(&net.log, &StreamConfig::default());
    let split = actions.len() * 3 / 5;
    let mut warmup_log = ActionLog::new();
    for a in &actions[..split] {
        match &a.event {
            StreamEvent::Item(item) => {
                warmup_log.push_item(item.origin, item.keywords.clone());
            }
            StreamEvent::Trial(t) => warmup_log.push_trial(t.item, t.src, t.dst, t.activated),
        }
    }
    let t0 = Instant::now();
    let warm = TicEm::new(opts.clone()).fit(&warmup_log, vocab.clone(), names.clone());
    let t_warm = t0.elapsed();
    rec.stage("warmup-fit", t_warm);
    let total_topics = warm.graph.num_topics();

    // the engines open on the warm-up model WITH a cache dir: the swaps
    // must exercise per-topic unit reuse, which is what the loop is for
    let dir = ARTIFACT_CACHE
        .get()
        .cloned()
        .unwrap_or_else(std::env::temp_dir)
        .join(format!("ingest-workload-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let config = OctopusConfig {
        kim: KimEngineChoice::BestEffort(BoundKind::Precomputation),
        piks_index_size: 1024,
        k_max: 25,
        ..Default::default()
    };
    let t0 = Instant::now();
    let target = match shards {
        None => {
            let engine =
                Octopus::open_or_build(warm.graph.clone(), warm.model.clone(), config, &dir)
                    .expect("warm-up epoch builds")
                    .with_user_keywords(user_keywords(&net));
            ServeTarget::Single(Box::new(OctopusService::with_cache_dir(engine, &dir)))
        }
        Some(k) => {
            let service = ShardedService::with_options(
                warm.graph.clone(),
                warm.model.clone(),
                config,
                k,
                Some(dir.clone()),
                false,
                user_keywords(&net),
            )
            .expect("shard engines build");
            ServeTarget::Sharded(Box::new(service))
        }
    };
    let t_epoch0 = t0.elapsed();
    rec.stage("epoch0-build", t_epoch0);
    println!(
        "workload: {} researchers, {} learned edges ×{} shard(s); warm-up fit {} over {} actions, epoch 0 built in {}",
        net.graph.node_count(),
        warm.graph.edge_count(),
        target.shard_count(),
        fmt_duration(t_warm),
        split,
        fmt_duration(t_epoch0),
    );

    let pools = MixPools::from_network(&net);
    let service: &dyn QueryService = target.service();
    // the 0.005 threshold keeps deltas entry-sparse: sub-threshold moves
    // stay at the served value bitwise (and accumulate across windows),
    // so each delta's footprint is the materially moving topics only
    let mut learner = WindowedLearner::new(
        opts,
        vocab,
        names,
        warmup_log,
        warm,
        NewEdgePolicy::Defer,
        0.005,
    );
    // cap 2 topics per batch, at most 6 swaps per window: the confined
    // flushes carry the reuse payoff, the budget bounds rebuild work
    let mut pipeline = IngestPipeline::new(service, 2, total_topics).with_flush_budget(6);
    let tail: Vec<stream::Action> = actions[split..].to_vec();
    let tail_len = tail.len();
    let window_size = (tail_len / s.ingest_windows.max(2)).max(1);

    struct QueryLog {
        latencies: Vec<Duration>,
        issued: u64,
        errors: u64,
        epochs: Option<(u64, u64)>,
    }
    let stop = AtomicBool::new(false);
    let mut window_rows: Vec<(WindowReport, usize, usize, u64)> = Vec::new();
    let mut loop_error: Option<String> = None;
    let run_start = Instant::now();

    let query_logs: Vec<QueryLog> = std::thread::scope(|sc| {
        let mut handles = Vec::new();
        for w in 0..workers {
            let pools = &pools;
            let stop = &stop;
            handles.push(sc.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0x16E5_7000 + w as u64);
                let mut log = QueryLog {
                    latencies: Vec::new(),
                    issued: 0,
                    errors: 0,
                    epochs: None,
                };
                // run until the loop closes; the floor makes even a
                // degenerate instant loop issue real traffic
                while log.issued < 20 || !stop.load(SeqCst) {
                    let query = mix(&mut rng, pools);
                    match service.execute(&query, &QueryBudget::unlimited()) {
                        Ok(a) => {
                            log.latencies.push(a.latency);
                            log.epochs = Some(match log.epochs {
                                None => (a.epoch, a.epoch),
                                Some((lo, hi)) => (lo.min(a.epoch), hi.max(a.epoch)),
                            });
                        }
                        Err(_) => log.errors += 1,
                    }
                    log.issued += 1;
                }
                log
            }));
        }

        // the ingest driver: consume the bounded replay, close a window
        // every `window_size` actions, refit, batch, flush
        let rx = stream::spawn_replay(tail, 256);
        let mut in_window = 0u64;
        let mut watermark = 0u64;
        let mut consumed = 0usize;
        for action in rx.iter() {
            watermark = watermark.max(action.at_ms);
            learner.observe(&action);
            in_window += 1;
            consumed += 1;
            if in_window as usize >= window_size || consumed == tail_len {
                let pre = learner.shadow().clone();
                let closed = Instant::now();
                let outcome = match learner.fit_window() {
                    Ok(o) => o,
                    Err(e) => {
                        loop_error = Some(format!("window fit failed: {e}"));
                        break;
                    }
                };
                let (iters, deferred) = (outcome.iterations, outcome.edges_deferred);
                match pipeline.submit_window(outcome.deltas, &pre, in_window, watermark, closed) {
                    Ok(report) => window_rows.push((report, iters, deferred, in_window)),
                    Err(e) => {
                        loop_error = Some(format!("window flush failed: {e}"));
                        break;
                    }
                }
                in_window = 0;
            }
        }
        stop.store(true, SeqCst);
        handles
            .into_iter()
            .map(|h| h.join().expect("query worker panicked"))
            .collect()
    });
    let wall = run_start.elapsed();
    std::fs::remove_dir_all(&dir).ok();
    let stats = pipeline.stats().clone();

    let mut tw = Table::new(
        "INGEST: per-window fit → batch → swap trajectory",
        &[
            "window",
            "actions",
            "em iters",
            "deltas",
            "batches",
            "topics",
            "swaps",
            "deferred",
            "act→serve",
        ],
    );
    for (report, iters, deferred, acts) in &window_rows {
        tw.row(vec![
            report.window.to_string(),
            acts.to_string(),
            iters.to_string(),
            report.deltas.to_string(),
            report.batches.to_string(),
            report.topics_touched.to_string(),
            report.swaps.len().to_string(),
            deferred.to_string(),
            fmt_duration(report.latency),
        ]);
    }
    emit(&tw);

    let mut tsw = Table::new(
        "INGEST: weight-stage unit reuse per swap (per-topic invalidation payoff)",
        &[
            "window",
            "shard",
            "epoch",
            "deltas",
            "rebuild",
            "weight units reused",
        ],
    );
    for (report, ..) in &window_rows {
        for swap in &report.swaps {
            let (reused, total) = swap
                .report
                .stage_reuse
                .iter()
                .filter(|x| WEIGHT_STAGES.contains(&x.stage))
                .fold((0u64, 0u64), |(r, t), x| {
                    (r + x.reused as u64, t + x.total as u64)
                });
            tsw.row(vec![
                report.window.to_string(),
                swap.shard.to_string(),
                swap.report.epoch.to_string(),
                swap.report.deltas_applied.to_string(),
                fmt_duration(swap.report.rebuild_time),
                format!("{reused}/{total}"),
            ]);
        }
    }
    emit(&tsw);

    let mut samples: Vec<Duration> = Vec::new();
    let mut issued = 0u64;
    let mut errors = 0u64;
    let mut epochs: Option<(u64, u64)> = None;
    for log in query_logs {
        samples.extend(log.latencies);
        issued += log.issued;
        errors += log.errors;
        if let Some((lo, hi)) = log.epochs {
            epochs = Some(match epochs {
                None => (lo, hi),
                Some((a, b)) => (a.min(lo), b.max(hi)),
            });
        }
    }
    let total_deferred: usize = window_rows.iter().map(|(_, _, d, _)| d).sum();
    let (p50, p95, p99) = (
        percentile(&mut samples, 50.0),
        percentile(&mut samples, 95.0),
        percentile(&mut samples, 99.0),
    );
    let max_lat = samples.last().copied().unwrap_or(Duration::ZERO);
    println!(
        "aggregate: {} actions → {} windows → {} batches → {} swaps; {:.1}% weight-unit reuse; \
         watermark {} ms; {} queries ({:.0} q/s, {} errors) across epochs {:?} in {}",
        stats.actions_consumed,
        stats.windows_fit,
        stats.batches_flushed,
        stats.swaps,
        stats.reuse_ratio() * 100.0,
        stats.watermark_ms,
        issued,
        issued as f64 / wall.as_secs_f64().max(1e-9),
        errors,
        epochs,
        fmt_duration(wall),
    );

    rec.op(
        "ingest-mix",
        Quantiles::from_durations(p50, p95, p99, max_lat, samples.len() as u64),
    );
    rec.note("ingest_actions", stats.actions_consumed as f64)
        .note("ingest_windows", stats.windows_fit as f64)
        .note("ingest_deltas", stats.deltas_submitted as f64)
        .note("ingest_batches", stats.batches_flushed as f64)
        .note("ingest_swaps", stats.swaps as f64)
        .note("ingest_weights_moved", stats.weights_moved as f64)
        .note("ingest_topics_touched", stats.topics_touched as f64)
        .note("ingest_weight_reuse_ratio", stats.reuse_ratio())
        .note("ingest_deferred_edges", total_deferred as f64)
        .note("ingest_queries", issued as f64)
        .note("ingest_query_errors", errors as f64)
        .note(
            "ingest_query_qps",
            issued as f64 / wall.as_secs_f64().max(1e-9),
        )
        .note("ingest_window_max_ms", record::ms(stats.max_window_latency))
        .note("ingest_watermark_ms", stats.watermark_ms as f64);

    let mut healthy = true;
    if let Some(e) = &loop_error {
        eprintln!("[ingest] FAIL: {e}");
        healthy = false;
    }
    if errors > 0 {
        eprintln!("[ingest] FAIL: {errors} query errors while the loop ran");
        healthy = false;
    }
    if stats.swaps < 2 {
        eprintln!(
            "[ingest] FAIL: only {} epoch swaps landed — the loop never closed twice",
            stats.swaps
        );
        healthy = false;
    }
    if stats.reuse_ratio() <= 0.0 {
        eprintln!(
            "[ingest] FAIL: zero per-topic weight-unit reuse — every flush rebuilt every topic"
        );
        healthy = false;
    }
    if stats.batches_dropped > 0 {
        eprintln!(
            "[ingest] FAIL: {} delta batches dropped as terminal",
            stats.batches_dropped
        );
        healthy = false;
    }
    if healthy {
        println!(
            "[ingest] OK: {} swaps landed under live queries with {:.1}% weight-unit reuse and zero query errors",
            stats.swaps,
            stats.reuse_ratio() * 100.0
        );
    }
    healthy
}

/// Quality-vs-budget sweep (`--budget-sweep`): run the anytime
/// `find_influencers` at increasing sample budgets against the exact run
/// and append the recall@k curve to the `serve` trajectory, so the
/// referee gates *answer quality* across commits, not just latency. Also
/// asserts the degraded path's determinism contract: at a fixed sample
/// budget a repeat run must be bit-identical.
fn budget_sweep_workload(s: &Scale, rec: &mut BenchRecord) -> bool {
    use octopus_core::QueryBudget;
    println!(
        "\n================ BUDGET SWEEP: answer quality vs per-query sample budget ================"
    );
    let net = citation_sized(s.citation_authors, s.citation_papers);
    let (engine, _) = engine_with(&net, KimEngineChoice::BestEffort(BoundKind::Precomputation));
    let queries = citation_queries();
    let k = 5usize;
    let budgets = [32usize, 128, 512, 2048];
    let exact: Vec<Vec<NodeId>> = queries
        .iter()
        .map(|q| {
            engine
                .find_influencers(q, k)
                .expect("exact answer")
                .result
                .seeds
        })
        .collect();
    let mut t = Table::new(
        format!("BUDGET SWEEP: recall@{k} of anytime find-influencers vs the exact run"),
        &[
            "budget (RR sets)",
            "recall",
            "mean bound width",
            "mean samples used",
            "sweep time",
        ],
    );
    let mut healthy = true;
    let mut curve: Vec<(usize, f64)> = Vec::new();
    for &b in &budgets {
        let budget = QueryBudget::samples(b);
        let (mut hits, mut total) = (0usize, 0usize);
        let (mut width, mut used) = (0.0f64, 0usize);
        let t0 = Instant::now();
        for (q, ex) in queries.iter().zip(&exact) {
            let a = engine
                .find_influencers_budgeted(q, k, &budget)
                .expect("budgeted answer");
            // determinism at a fixed budget: a repeat must be bit-identical
            let again = engine
                .find_influencers_budgeted(q, k, &budget)
                .expect("budgeted answer");
            if a.value.result.seeds != again.value.result.seeds
                || a.value.result.spread.to_bits() != again.value.result.spread.to_bits()
            {
                eprintln!("[budget-sweep] FAIL: budget {b} is not deterministic on {q:?}");
                healthy = false;
            }
            hits += a
                .value
                .result
                .seeds
                .iter()
                .filter(|seed| ex.contains(seed))
                .count();
            total += ex.len();
            width += a.bound.upper - a.bound.lower;
            used += a.bound.samples_used;
        }
        let elapsed = t0.elapsed();
        let recall = hits as f64 / total.max(1) as f64;
        let nq = queries.len().max(1) as f64;
        t.row(vec![
            b.to_string(),
            format!("{recall:.3}"),
            format!("{:.2}", width / nq),
            format!("{:.0}", used as f64 / nq),
            fmt_duration(elapsed),
        ]);
        rec.note(&format!("recall_at_k_b{b}"), recall);
        curve.push((b, recall));
    }
    emit(&t);
    // advisory (the referee's cross-run quality gate is the hard check):
    // a fixed-seed curve should be monotone-ish in the budget
    for w in curve.windows(2) {
        if w[1].1 + 0.15 < w[0].1 {
            eprintln!(
                "[budget-sweep] WARN: recall dropped {:.3} -> {:.3} when the budget grew {} -> {}",
                w[0].1, w[1].1, w[0].0, w[1].0
            );
        }
    }
    let (lo, hi) = (
        curve.first().expect("nonempty"),
        curve.last().expect("nonempty"),
    );
    println!(
        "[budget-sweep] recall@{k} {:.3} at {} RR sets -> {:.3} at {} RR sets across {} queries\n",
        lo.1,
        lo.0,
        hi.1,
        hi.0,
        queries.len()
    );
    healthy
}

/// Bit-exact answer signature of the five online operators — two engines
/// serving the same artifact must produce byte-for-byte equal signatures
/// (floats enter as their IEEE bit patterns, not display roundings).
fn open_bench_signature(e: &Octopus, target: NodeId, queries: &[&str]) -> String {
    use std::fmt::Write as _;
    let mut sig = String::new();
    let mut top_name = String::new();
    for q in queries {
        match e.find_influencers(q, 5) {
            Ok(a) => {
                let _ = write!(sig, "kim:{q}:{:016x};", a.result.spread.to_bits());
                for s in &a.seeds {
                    let _ = write!(sig, "{}:{}:{};", s.node.0, s.name, s.rank);
                }
                for v in a.gamma.as_slice() {
                    let _ = write!(sig, "{:016x},", v.to_bits());
                }
                if top_name.is_empty() {
                    top_name = a.seeds[0].name.clone();
                }
            }
            Err(err) => {
                let _ = write!(sig, "kim:{q}:err={err};");
            }
        }
    }
    match e.suggest_keywords_for(target, 2) {
        Ok(a) => {
            let _ = write!(
                sig,
                "piks:{}:{:016x};",
                a.words.join("|"),
                a.result.spread.to_bits()
            );
            for v in &a.radar.values {
                let _ = write!(sig, "{:016x},", v.to_bits());
            }
        }
        Err(err) => {
            let _ = write!(sig, "piks:err={err};");
        }
    }
    for dir in [ExploreDirection::Influences, ExploreDirection::InfluencedBy] {
        match e.explore_paths(&top_name, dir, Some(queries[0])) {
            Ok(ex) => {
                let _ = write!(
                    sig,
                    "mia:{dir:?}:{}:{:016x}:{};",
                    ex.reached,
                    ex.influence.to_bits(),
                    ex.d3_json
                );
            }
            Err(err) => {
                let _ = write!(sig, "mia:{dir:?}:err={err};");
            }
        }
    }
    for prefix in ["a", "j", "zz-no-such-user"] {
        let _ = write!(sig, "trie:{prefix}:");
        for (node, name, score) in e.autocomplete(prefix, 8) {
            let _ = write!(sig, "{}:{}:{:016x},", node.0, name, score.to_bits());
        }
        sig.push(';');
    }
    match e.keyword_radar("data mining") {
        Ok(r) => {
            let _ = write!(sig, "radar:{};", r.axes.join("|"));
            for v in &r.values {
                let _ = write!(sig, "{:016x},", v.to_bits());
            }
        }
        Err(err) => {
            let _ = write!(sig, "radar:err={err};");
        }
    }
    sig
}

/// Open-bench workload (`--open-bench`): quantify what the zero-copy v4
/// container buys at engine startup. Builds the citation artifact cold,
/// then opens the same bytes owned (full decode) and mapped
/// (O(pages-touched) structural validation, lazy per-section checksums)
/// and reports open wall time, the map/validate/decode split, first-query
/// latency, and RSS growth — asserting bit-identical answers across all
/// five operators. Returns false (→ exit 1) on any divergence.
fn open_bench_workload(s: &Scale, paranoid: bool, rec: &mut BenchRecord) -> bool {
    use record::{current_rss_kb, ms};
    println!(
        "\n================ OPEN-BENCH: owned decode-open vs zero-copy mapped open{} ================",
        if paranoid { " (paranoid)" } else { "" }
    );
    let net = citation_sized(s.citation_authors, s.citation_papers);
    let dir = ARTIFACT_CACHE
        .get()
        .cloned()
        .unwrap_or_else(std::env::temp_dir)
        .join(format!("open-bench-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let config = OctopusConfig {
        kim: KimEngineChoice::BestEffort(BoundKind::Precomputation),
        piks_index_size: 1024,
        k_max: 25,
        ..Default::default()
    };

    // cold: pay the offline build once, leaving the artifact on disk
    let t0 = Instant::now();
    let built = Octopus::open_or_build(net.graph.clone(), net.model.clone(), config.clone(), &dir)
        .expect("cold build");
    let t_build = t0.elapsed();
    assert!(!built.cache_hit(), "open-bench scratch dir must start cold");
    drop(built);
    println!(
        "workload: {} researchers, {} edges; offline build {} (artifact written)",
        net.graph.node_count(),
        net.graph.edge_count(),
        fmt_duration(t_build)
    );

    // owned decode-open: checksum + decode every section into owned structs
    let rss0 = current_rss_kb();
    let t0 = Instant::now();
    let owned = Octopus::open_or_build(net.graph.clone(), net.model.clone(), config.clone(), &dir)
        .expect("owned open");
    let t_owned = t0.elapsed();
    let owned_rss = current_rss_kb().saturating_sub(rss0);
    assert!(owned.cache_hit() && !owned.is_mapped());

    // mapped open: validate framing, borrow the page cache, decode nothing
    let rss0 = current_rss_kb();
    let t0 = Instant::now();
    let mapped = if paranoid {
        Octopus::open_mapped_paranoid(net.graph.clone(), net.model.clone(), config.clone(), &dir)
    } else {
        Octopus::open_mapped(net.graph.clone(), net.model.clone(), config, &dir)
    }
    .expect("mapped open");
    let t_mapped = t0.elapsed();
    let mapped_rss = current_rss_kb().saturating_sub(rss0);
    assert!(mapped.cache_hit() && mapped.is_mapped());

    // first query on each engine: the mapped engine pays its lazy
    // per-section checksums here, which is part of the honest comparison
    let queries: Vec<&str> = citation_queries().into_iter().take(3).collect();
    let target = prolific_users(&net, 1)[0];
    let t0 = Instant::now();
    let _ = owned.find_influencers(queries[0], 10);
    let owned_first = t0.elapsed();
    let t0 = Instant::now();
    let _ = mapped.find_influencers(queries[0], 10);
    let mapped_first = t0.elapsed();

    let stage_of = |e: &Octopus, name: &str| {
        e.stage_timings()
            .iter()
            .find(|t| t.stage == name)
            .map(|t| t.duration)
    };
    let fmt_opt = |d: Option<std::time::Duration>| match d {
        Some(d) => fmt_duration(d),
        None => "—".to_string(),
    };
    let mut t = Table::new(
        "OPEN-BENCH: startup cost, same artifact bytes",
        &["metric", "owned (decode)", "mapped (zero-copy)"],
    );
    t.row(vec![
        "cold open".into(),
        fmt_duration(t_owned),
        fmt_duration(t_mapped),
    ]);
    for stage in [
        octopus_core::offline::persist::STAGE_ARTIFACT_MAP,
        octopus_core::offline::persist::STAGE_ARTIFACT_VALIDATE,
        octopus_core::offline::persist::STAGE_ARTIFACT_DECODE,
    ] {
        t.row(vec![
            stage.to_string(),
            fmt_opt(stage_of(&owned, stage)),
            fmt_opt(stage_of(&mapped, stage)),
        ]);
    }
    t.row(vec![
        "first find_influencers".into(),
        fmt_duration(owned_first),
        fmt_duration(mapped_first),
    ]);
    t.row(vec![
        "RSS growth".into(),
        format!("{owned_rss} kB"),
        format!("{mapped_rss} kB"),
    ]);
    emit(&t);

    // the contract: identical bytes → bit-identical answers, both modes
    let sig_owned = open_bench_signature(&owned, target, &queries);
    let sig_mapped = open_bench_signature(&mapped, target, &queries);
    let identical = sig_owned == sig_mapped;
    if identical {
        println!(
            "[open-bench] OK: all five operators answer bit-identically in both modes ({} signature bytes)",
            sig_owned.len()
        );
    } else {
        let at = sig_owned
            .bytes()
            .zip(sig_mapped.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or(sig_owned.len().min(sig_mapped.len()));
        eprintln!(
            "[open-bench] FAIL: owned and mapped answers diverge at signature byte {at}: owned …{:?} vs mapped …{:?}",
            &sig_owned[at.saturating_sub(24)..(at + 24).min(sig_owned.len())],
            &sig_mapped[at.saturating_sub(24)..(at + 24).min(sig_mapped.len())],
        );
    }
    if t_mapped < t_owned {
        println!(
            "[open-bench] mapped cold-open beats owned decode-open: {} vs {} ({:.1}x)",
            fmt_duration(t_mapped),
            fmt_duration(t_owned),
            t_owned.as_secs_f64() / t_mapped.as_secs_f64().max(1e-9)
        );
    } else {
        eprintln!(
            "[open-bench] WARN: mapped open {} did not beat owned open {} on this run",
            fmt_duration(t_mapped),
            fmt_duration(t_owned)
        );
    }

    // steady-state latency quantiles off the mapped engine (the serving
    // configuration the trajectory tracks)
    let top_name = mapped
        .find_influencers(queries[0], 1)
        .map(|a| a.seeds[0].name.clone())
        .unwrap_or_default();
    let reps = 16usize;
    let mut lat: Vec<(&str, Vec<std::time::Duration>)> = [
        "find_influencers",
        "suggest_keywords",
        "explore_paths",
        "autocomplete",
        "keyword_radar",
    ]
    .iter()
    .map(|n| (*n, Vec::with_capacity(reps)))
    .collect();
    for i in 0..reps {
        let q = queries[i % queries.len()];
        let t0 = Instant::now();
        let _ = mapped.find_influencers(q, 10);
        lat[0].1.push(t0.elapsed());
        let t0 = Instant::now();
        let _ = mapped.suggest_keywords_for(target, 2);
        lat[1].1.push(t0.elapsed());
        let t0 = Instant::now();
        let _ = mapped.explore_paths(&top_name, ExploreDirection::Influences, None);
        lat[2].1.push(t0.elapsed());
        let t0 = Instant::now();
        let _ = mapped.autocomplete("a", 8);
        lat[3].1.push(t0.elapsed());
        let t0 = Instant::now();
        let _ = mapped.keyword_radar("data mining");
        lat[4].1.push(t0.elapsed());
    }
    for (name, mut xs) in lat {
        xs.sort();
        let pct = |p: f64| xs[((xs.len() - 1) as f64 * p).round() as usize];
        rec.op(
            name,
            Quantiles::from_durations(
                pct(0.50),
                pct(0.95),
                pct(0.99),
                xs[xs.len() - 1],
                xs.len() as u64,
            ),
        );
    }

    // trajectory record: the owned-vs-mapped numbers this PR exists for
    rec.stage("offline-build", t_build);
    for (prefix, engine) in [("owned", &owned), ("mapped", &mapped)] {
        for st in engine.stage_timings() {
            if st.stage.starts_with("artifact-") {
                rec.stage(&format!("{prefix} {}", st.stage), st.duration);
            }
        }
    }
    rec.note("owned_open_ms", ms(t_owned))
        .note("mapped_open_ms", ms(t_mapped))
        .note("owned_first_query_ms", ms(owned_first))
        .note("mapped_first_query_ms", ms(mapped_first))
        .note("owned_rss_delta_kb", owned_rss as f64)
        .note("mapped_rss_delta_kb", mapped_rss as f64)
        .note(
            "open_speedup",
            t_owned.as_secs_f64() / t_mapped.as_secs_f64().max(1e-9),
        )
        .note("bit_identical", if identical { 1.0 } else { 0.0 });

    drop(owned);
    drop(mapped);
    std::fs::remove_dir_all(&dir).ok();
    identical
}

/// E7 — EM learning recovery.
fn e7(s: &Scale) {
    println!("\n================ E7: TIC-EM parameter recovery ================");
    let mut t = Table::new(
        "E7: recovery error vs log size (3 topics)",
        &[
            "papers",
            "trials",
            "EM time",
            "iters",
            "edge-prob MAE",
            "keyword-topic acc",
        ],
    );
    let paper_counts: &[usize] = if s.citation_authors <= 500 {
        &[200, 400]
    } else {
        &[250, 500, 1000, 2000]
    };
    for &papers in paper_counts {
        let net = CitationConfig {
            authors: 120,
            papers,
            num_topics: 3,
            words_per_topic: 12,
            seed: 5,
            ..Default::default()
        }
        .generate();
        let em = TicEm::new(EmOptions {
            num_topics: 3,
            max_iters: 40,
            ..Default::default()
        });
        let t0 = Instant::now();
        let fit = em.fit(
            &net.log,
            net.model.vocab().clone(),
            net.graph.names().to_vec(),
        );
        let dt = t0.elapsed();
        let perm = align_topics(&fit.model, &net.model);
        // edge-prob MAE on well-observed edges
        let mut trials_per_edge: std::collections::HashMap<(NodeId, NodeId), usize> =
            std::collections::HashMap::new();
        for tr in net.log.trials() {
            *trials_per_edge.entry((tr.src, tr.dst)).or_insert(0) += 1;
        }
        let mut err = 0.0;
        let mut cnt = 0usize;
        for e in fit.graph.edges() {
            let (u, v) = fit.graph.edge_endpoints(e).expect("valid edge");
            if trials_per_edge.get(&(u, v)).copied().unwrap_or(0) < 20 {
                continue;
            }
            let Some(te) = net.graph.find_edge(u, v) else {
                continue;
            };
            for (zl, &pz) in perm.iter().enumerate().take(3) {
                let learned = fit
                    .graph
                    .edge_prob_topic(e, octopus_graph::TopicId(zl as u16));
                let truth = net
                    .graph
                    .edge_prob_topic(te, octopus_graph::TopicId(pz as u16));
                err += (learned as f64 - truth as f64).abs();
                cnt += 1;
            }
        }
        // keyword-topic accuracy: does each keyword's dominant learned topic
        // map to its dominant true topic?
        let v = net.model.vocab_size();
        let mut correct = 0usize;
        for w in 0..v {
            let w = KeywordId(w as u32);
            let learned_z = fit.model.keyword_topics(w).expect("valid").dominant_topic();
            let true_z = net.model.keyword_topics(w).expect("valid").dominant_topic();
            if perm[learned_z] == true_z {
                correct += 1;
            }
        }
        t.row(vec![
            papers.to_string(),
            net.log.trial_count().to_string(),
            fmt_duration(dt),
            fit.iterations.to_string(),
            format!("{:.3}", err / cnt.max(1) as f64),
            format!("{:.0}%", 100.0 * correct as f64 / v as f64),
        ]);
    }
    emit(&t);
}

/// E8 — the QQ/messenger deployment scenario.
fn e8(s: &Scale) {
    println!("\n================ E8: viral marketing on the messenger network ================");
    let net = messenger_sized(s.messenger_users);
    let (engine, offline) =
        engine_with(&net, KimEngineChoice::BestEffort(BoundKind::Precomputation));
    let referee = Referee::new(&net.graph).with_runs(s.referee_runs);
    println!(
        "workload: {} users, {} edges; offline {}",
        net.graph.node_count(),
        net.graph.edge_count(),
        fmt_duration(offline)
    );
    let mut t = Table::new(
        "E8: ad-campaign queries (k=8)",
        &[
            "campaign keywords",
            "latency",
            "reach(MC)",
            "top influencer",
        ],
    );
    for q in messenger_queries() {
        let Ok(a) = engine.find_influencers(q, 8) else {
            continue;
        };
        let seeds: Vec<NodeId> = a.seeds.iter().map(|x| x.node).collect();
        t.row(vec![
            q.to_string(),
            fmt_duration(a.elapsed),
            format!("{:.1}", referee.score(&a.gamma, &seeds)),
            a.seeds[0].name.clone(),
        ]);
    }
    emit(&t);
    // targeted IM (the [7] extension): game campaign restricted to gamers
    {
        use octopus_core::kim::{Audience, KimAlgorithm, TargetedKim};
        let gamma = net.model.infer_str("game").expect("resolves");
        let audience = Audience::from_topic_affinity(&net.graph, &gamma);
        let targeted = TargetedKim::new(&net.graph, audience);
        let t0 = Instant::now();
        let tres = targeted.select(&gamma, 8);
        let t_time = t0.elapsed();
        let untargeted = engine.find_influencers_gamma(&gamma, 8).expect("query");
        let reach_t = targeted.weighted_spread(&gamma, &tres.seeds);
        let reach_u = targeted.weighted_spread(&gamma, &untargeted.seeds);
        println!(
            "targeted IM ({} gamers weighted): audience reach {:.1} (targeted, {}) vs {:.1} (untargeted seeds) — {:+.0}%\n",
            targeted.audience().support(),
            reach_t,
            fmt_duration(t_time),
            reach_u,
            100.0 * (reach_t - reach_u) / reach_u.max(1.0),
        );
    }
    // influencer product profiling
    if let Ok(a) = engine.find_influencers("game", 1) {
        if let Ok(sugg) = engine.suggest_keywords_for(a.seeds[0].node, 3) {
            println!(
                "top game influencer {:?} sells best with {:?} (category: {})\n",
                a.seeds[0].name,
                sugg.words,
                sugg.radar.ranked_axes()[0].0
            );
        }
    }
}

/// E9 — spread estimator accuracy/latency trade-off.
fn e9(s: &Scale) {
    println!("\n================ E9: spread estimators (MC vs RR vs MIA) ================");
    let net = citation_sized(s.scaling_sizes[0].0, s.scaling_sizes[0].1);
    let gamma = net.model.infer_str("data mining").expect("resolves");
    let probs = net.graph.materialize(gamma.as_slice()).expect("dims");
    let targets: Vec<NodeId> = octopus_graph::stats::top_out_degree(&net.graph, 20)
        .into_iter()
        .map(|(u, _)| u)
        .collect();
    let truth: Vec<f64> = targets
        .iter()
        .map(|&u| estimate_spread(&net.graph, &probs, &[u], 50_000, 0xCAFE))
        .collect();
    let mut t = Table::new(
        "E9: single-seed spread estimation (20 hub targets)",
        &["estimator", "time/target", "RMSE", "bias"],
    );
    // MC budgets
    for runs in [200usize, 2000] {
        let t0 = Instant::now();
        let est: Vec<f64> = targets
            .iter()
            .map(|&u| estimate_spread(&net.graph, &probs, &[u], runs, 3))
            .collect();
        let dt = t0.elapsed() / targets.len() as u32;
        t.row(vec![
            format!("MC {runs} runs"),
            fmt_duration(dt),
            format!("{:.2}", rmse(&est, &truth)),
            format!("{:+.2}", bias(&est, &truth)),
        ]);
    }
    // RR collection (amortized across targets)
    for sets in [2000usize, 20_000] {
        let t0 = Instant::now();
        let rr = RrCollection::generate(&net.graph, &probs, sets, 17);
        let est: Vec<f64> = targets.iter().map(|&u| rr.estimate_spread(&[u])).collect();
        let dt = t0.elapsed() / targets.len() as u32;
        t.row(vec![
            format!("RR {sets} sets (amortized)"),
            fmt_duration(dt),
            format!("{:.2}", rmse(&est, &truth)),
            format!("{:+.2}", bias(&est, &truth)),
        ]);
    }
    // MIA at various thetas
    for theta in [0.1, 0.01, 0.001] {
        let t0 = Instant::now();
        let est: Vec<f64> = targets
            .iter()
            .map(|&u| mia_spread_set(&net.graph, &probs, &[u], theta))
            .collect();
        let dt = t0.elapsed() / targets.len() as u32;
        t.row(vec![
            format!("MIA θ={theta}"),
            fmt_duration(dt),
            format!("{:.2}", rmse(&est, &truth)),
            format!("{:+.2}", bias(&est, &truth)),
        ]);
    }
    emit(&t);
    println!("(MIA's negative bias is structural: single-path influence only — see §II-E)\n");
}

fn bias(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x - y).sum::<f64>() / a.len().max(1) as f64
}

/// E10 — ablations of the design choices DESIGN.md §5 calls out.
fn e10(s: &Scale) {
    println!("\n================ E10: ablations ================");
    let net = citation_sized(s.scaling_sizes[0].0, s.scaling_sizes[0].1);
    let theta = 1.0 / 320.0;
    let gamma = net
        .model
        .infer_str("data mining clustering")
        .expect("resolves");
    let probs = net.graph.materialize(gamma.as_slice()).expect("dims");

    // A1: PB safety factor — violations vs pruning power.
    let mut t = Table::new(
        "E10.A1: PB bound safety factor (mixed two-topic query)",
        &[
            "safety",
            "violations/300",
            "worst ratio",
            "pruned %",
            "quality vs safety=1.5",
        ],
    );
    let reference = {
        let pb = PrecompBound::build(&net.graph, theta, 1.5);
        let engine = octopus_core::kim::BestEffortKim::new(&net.graph, pb, theta);
        octopus_core::kim::KimAlgorithm::select(&engine, &gamma, 10)
    };
    let referee = Referee::new(&net.graph).with_runs(s.referee_runs);
    for safety in [1.0f64, 1.1, 1.2, 1.5] {
        let pb = PrecompBound::build(&net.graph, theta, safety);
        let mut violations = 0usize;
        let mut worst: f64 = 1.0;
        for u in net.graph.nodes().take(300) {
            let bound = pb.upper_bound(u, &gamma);
            let exact = mia_spread_set(&net.graph, &probs, &[u], theta);
            if bound < exact {
                violations += 1;
                worst = worst.min(bound / exact);
            }
        }
        let engine = octopus_core::kim::BestEffortKim::new(&net.graph, pb, theta);
        let res = octopus_core::kim::KimAlgorithm::select(&engine, &gamma, 10);
        let pruned = 100.0 * res.stats.pruned_candidates as f64 / net.graph.node_count() as f64;
        let quality = referee.ratio(&gamma, &res.seeds, &reference.seeds);
        t.row(vec![
            format!("{safety}"),
            violations.to_string(),
            format!("{worst:.3}"),
            format!("{pruned:.0}%"),
            format!("{quality:.3}"),
        ]);
    }
    emit(&t);

    // A2: shared coins (common random numbers) vs independent sampling for
    // comparing two nearby queries — the variance-reduction that makes the
    // influencer index's cross-query comparisons stable.
    let gamma_a = net.model.infer_str("data mining").expect("resolves");
    let gamma_b = net
        .model
        .infer_str("data mining clustering")
        .expect("resolves");
    let target = prolific_users(&net, 1)[0];
    let mut paired_diffs = Vec::new();
    let mut indep_diffs = Vec::new();
    for trial in 0..20u64 {
        let idx = InfluencerIndex::build(&net.graph, 800, 1000 + trial);
        let sa = idx.session(&net.graph, &gamma_a).spread_of(target);
        let sb = idx.session(&net.graph, &gamma_b).spread_of(target);
        paired_diffs.push(sa - sb);
        let idx2 = InfluencerIndex::build(&net.graph, 800, 5000 + trial);
        let sb2 = idx2.session(&net.graph, &gamma_b).spread_of(target);
        indep_diffs.push(sa - sb2);
    }
    let var = |xs: &[f64]| {
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
    };
    println!(
        "E10.A2: spread-difference variance across 20 trials — shared coins {:.4} vs independent {:.4} ({}x reduction)\n",
        var(&paired_diffs),
        var(&indep_diffs),
        (var(&indep_diffs) / var(&paired_diffs).max(1e-12)).round()
    );

    // A3: lazy vs eager world materialization.
    let idx = InfluencerIndex::build(&net.graph, 2048, 77);
    let hub = octopus_graph::stats::top_out_degree(&net.graph, 1)[0].0;
    let leaf = octopus_graph::stats::top_out_degree(&net.graph, net.graph.node_count())
        .last()
        .expect("nodes exist")
        .0;
    let mut hub_sess = idx.session(&net.graph, &gamma_a);
    let _ = hub_sess.spread_of(hub);
    let mut leaf_sess = idx.session(&net.graph, &gamma_a);
    let _ = leaf_sess.spread_of(leaf);
    println!(
        "E10.A3: worlds materialized out of 2048 — hub query {}, leaf query {} (eager would always pay 2048)\n",
        hub_sess.materialized_worlds(),
        leaf_sess.materialized_worlds()
    );

    // A4: online query cache for a repeating query stream.
    let engine = Octopus::new(
        net.graph.clone(),
        net.model.clone(),
        OctopusConfig {
            cache_capacity: 64,
            piks_index_size: 128,
            ..Default::default()
        },
    )
    .expect("engine builds");
    let queries = citation_queries();
    let t0 = Instant::now();
    for q in &queries {
        let _ = engine.find_influencers(q, 10);
    }
    let cold = t0.elapsed();
    let t0 = Instant::now();
    for q in &queries {
        let _ = engine.find_influencers(q, 10);
    }
    let warm = t0.elapsed();
    println!(
        "E10.A4: query stream of {} — cold pass {}, cached repeat {} ({}x); cache stats {:?}\n",
        queries.len(),
        fmt_duration(cold),
        fmt_duration(warm),
        (cold.as_secs_f64() / warm.as_secs_f64().max(1e-9)).round(),
        engine.cache_stats()
    );
}

/// Dispatch one experiment by name (the single name→fn table, shared by
/// the default sweep and the `--delta` mode's extra picks).
fn run_experiment(name: &str, s: &Scale) {
    match name {
        "e1" => e1(s),
        "e2" => e2(s),
        "e3" => e3(s),
        "e4" => e4(s),
        "e5" => e5(s),
        "e6" => e6(s),
        "e7" => e7(s),
        "e8" => e8(s),
        "e9" => e9(s),
        "e10" => e10(s),
        other => eprintln!("unknown experiment {other:?}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    if let Some(i) = args.iter().position(|a| a == "--csv") {
        if let Some(dir) = args.get(i + 1) {
            let _ = CSV_DIR.set(std::path::PathBuf::from(dir));
        } else {
            eprintln!("--csv requires a directory argument");
            std::process::exit(2);
        }
    }
    if let Some(i) = args.iter().position(|a| a == "--artifact-cache") {
        if let Some(dir) = args.get(i + 1) {
            let _ = ARTIFACT_CACHE.set(std::path::PathBuf::from(dir));
        } else {
            eprintln!("--artifact-cache requires a directory argument");
            std::process::exit(2);
        }
    }
    let delta_k = match args.iter().position(|a| a == "--delta") {
        Some(i) => match args.get(i + 1).and_then(|k| k.parse::<usize>().ok()) {
            Some(k) if k > 0 => Some(k),
            _ => {
                eprintln!("--delta requires a positive edge count argument");
                std::process::exit(2);
            }
        },
        None => None,
    };
    let serve_workers = match args.iter().position(|a| a == "--serve") {
        Some(i) => match args.get(i + 1).and_then(|w| w.parse::<usize>().ok()) {
            Some(w) if w > 0 => Some(w),
            _ => {
                eprintln!("--serve requires a positive worker count argument");
                std::process::exit(2);
            }
        },
        None => None,
    };
    let ingest_workers = match args.iter().position(|a| a == "--ingest") {
        Some(i) => match args.get(i + 1).and_then(|w| w.parse::<usize>().ok()) {
            Some(w) if w > 0 => Some(w),
            _ => {
                eprintln!("--ingest requires a positive query-worker count argument");
                std::process::exit(2);
            }
        },
        None => None,
    };
    let shards = match args.iter().position(|a| a == "--shards") {
        Some(i) => match args.get(i + 1).and_then(|k| k.parse::<usize>().ok()) {
            Some(k) if k > 0 => Some(k),
            _ => {
                eprintln!("--shards requires a positive shard count argument");
                std::process::exit(2);
            }
        },
        None => None,
    };
    let serve_p99 = match args.iter().position(|a| a == "--serve-p99-ms") {
        Some(i) => match args.get(i + 1).and_then(|ms| ms.parse::<u64>().ok()) {
            Some(ms) if ms > 0 => Some(std::time::Duration::from_millis(ms)),
            _ => {
                eprintln!("--serve-p99-ms requires a positive millisecond argument");
                std::process::exit(2);
            }
        },
        None => None,
    };
    let budget_ms = match args.iter().position(|a| a == "--budget-ms") {
        Some(i) => match args.get(i + 1).and_then(|ms| ms.parse::<u64>().ok()) {
            Some(ms) if ms > 0 => Some(ms),
            _ => {
                eprintln!("--budget-ms requires a positive millisecond argument");
                std::process::exit(2);
            }
        },
        None => None,
    };
    let shed = args.iter().any(|a| a == "--shed");
    let budget_sweep = args.iter().any(|a| a == "--budget-sweep");
    let open_bench = args.iter().any(|a| a == "--open-bench");
    let paranoid = args.iter().any(|a| a == "--paranoid");
    let referee_mode = args.iter().any(|a| a == "--referee");
    if let Some(i) = args.iter().position(|a| a == "--bench-dir") {
        if let Some(dir) = args.get(i + 1) {
            let _ = BENCH_DIR.set(std::path::PathBuf::from(dir));
        } else {
            eprintln!("--bench-dir requires a directory argument");
            std::process::exit(2);
        }
    }
    let mut skip_next = false;
    let picks: Vec<String> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--csv"
                || *a == "--artifact-cache"
                || *a == "--delta"
                || *a == "--serve"
                || *a == "--ingest"
                || *a == "--shards"
                || *a == "--serve-p99-ms"
                || *a == "--budget-ms"
                || *a == "--bench-dir"
            {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .map(|a| a.to_lowercase())
        .collect();
    let s = scale(quick);

    // one trajectory record per invocation, named after the dominant mode
    let workload = if open_bench {
        "open-bench"
    } else if ingest_workers.is_some() {
        "ingest"
    } else if serve_workers.is_some() || budget_sweep {
        // the quality-vs-budget curve lives in the serve trajectory: it
        // gates the same serving-layer answers
        "serve"
    } else if delta_k.is_some() {
        "delta"
    } else {
        "sweep"
    };
    let descriptor = format!(
        "{workload}|quick={quick}|paranoid={paranoid}|delta={delta_k:?}|serve={serve_workers:?}|ingest={ingest_workers:?}|shards={shards:?}|budget_ms={budget_ms:?}|shed={shed}|sweep={budget_sweep}|picks={picks:?}|authors={}|papers={}",
        s.citation_authors, s.citation_papers
    );
    let mut rec = BenchRecord::new(
        workload,
        fnv1a(descriptor.as_bytes()),
        rayon::current_num_threads(),
    );
    if paranoid {
        rec.note("paranoid", 1.0);
    }

    let t0 = Instant::now();
    let mut healthy = true;
    if open_bench
        || delta_k.is_some()
        || serve_workers.is_some()
        || ingest_workers.is_some()
        || budget_sweep
    {
        // the open-bench, delta, serve, ingest, and budget-sweep modes are
        // their own workloads: run them (plus any explicitly picked
        // experiments) instead of the full default sweep
        if open_bench {
            healthy &= open_bench_workload(&s, paranoid, &mut rec);
        }
        if let Some(k) = delta_k {
            delta_workload(&s, k, shards, &mut rec);
        }
        if let Some(workers) = serve_workers {
            healthy &= serve_workload(&s, workers, shards, serve_p99, budget_ms, shed, &mut rec);
        }
        if let Some(workers) = ingest_workers {
            healthy &= ingest_workload(&s, workers, shards, &mut rec);
        }
        if budget_sweep {
            healthy &= budget_sweep_workload(&s, &mut rec);
        }
        for p in &picks {
            run_experiment(p, &s);
        }
    } else {
        let all = picks.is_empty();
        for name in ["e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10"] {
            if all || picks.iter().any(|p| p == name) {
                let te = Instant::now();
                run_experiment(name, &s);
                rec.stage(name, te.elapsed());
            }
        }
    }
    let wall = t0.elapsed();
    println!("total wall time: {}", fmt_duration(wall));

    // finish and persist the trajectory record; with --referee, gate on
    // the most recent comparable record *before* this run is appended
    rec.note("wall_clock_ms", record::ms(wall));
    rec.peak_rss_kb = record::peak_rss_kb();
    let bdir = bench_dir();
    if referee_mode {
        let verdict = record::referee_check(&bdir, &rec);
        match verdict.baseline_time_s {
            None => println!(
                "[referee] no comparable baseline in {} — first run on this configuration, vacuous pass",
                BenchRecord::trajectory_path(&bdir, workload).display()
            ),
            Some(ts) => {
                if verdict.pass() {
                    println!(
                        "[referee] OK: {} metrics within {:.1}x of the baseline recorded at unix {ts}",
                        verdict.compared,
                        record::REGRESSION_RATIO
                    );
                } else {
                    for r in &verdict.regressions {
                        eprintln!("[referee] REGRESSION {r}");
                    }
                    healthy = false;
                }
            }
        }
    }
    match rec.append_to(&bdir) {
        Ok(path) => println!("[bench] run recorded to {}", path.display()),
        Err(e) => eprintln!("[bench] record write failed: {e}"),
    }
    if !healthy {
        std::process::exit(1);
    }
}
