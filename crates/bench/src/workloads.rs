//! Standard benchmark workloads. Every experiment pulls its network from
//! here so results are comparable across benches and runs; all generation
//! is seeded and deterministic.

use octopus_data::{CitationConfig, MessengerConfig, SyntheticNetwork};
use octopus_topics::KeywordId;
use std::collections::HashMap;

/// The default mid-size citation workload (experiments E1/E2/E3/E5/E9).
pub fn citation_default() -> SyntheticNetwork {
    citation_sized(2000, 5000)
}

/// A citation workload with the given author/paper counts.
pub fn citation_sized(authors: usize, papers: usize) -> SyntheticNetwork {
    CitationConfig {
        authors,
        papers,
        num_topics: 8,
        words_per_topic: 20,
        seed: 0xBE7C_0FFE,
        ..Default::default()
    }
    .generate()
}

/// A small citation workload for quick runs and unit benches.
pub fn citation_small() -> SyntheticNetwork {
    citation_sized(300, 800)
}

/// `copies` disjoint copies of a network's graph in one `TopicGraph` —
/// the sharded serving workloads (`exp_runner --shards <k>`). Each copy
/// is its own set of weakly connected components, so the locality
/// partition places whole copies (one per shard when `copies == k`) and a
/// routed delta confines its rebuild to the one copy it touches. Copy 0
/// keeps the original names (query pools and user-keyword overrides keep
/// resolving); later copies suffix names with `·<copy>` to stay unique.
pub fn disjoint_copies(net: &SyntheticNetwork, copies: usize) -> octopus_graph::TopicGraph {
    use octopus_graph::{GraphBuilder, NodeId};
    let g = &net.graph;
    let copies = copies.max(1);
    let mut b = GraphBuilder::new(g.num_topics());
    for c in 0..copies {
        for u in g.nodes() {
            match (g.name(u), c) {
                (Some(name), 0) => b.add_node(name),
                (Some(name), _) => b.add_node(format!("{name}·{}", c + 1)),
                (None, _) => b.add_node(""),
            };
        }
        let base = (c * g.node_count()) as u32;
        for e in g.edges() {
            let (u, v) = g.edge_endpoints(e).expect("edge id in range");
            let probs: Vec<(usize, f64)> = g
                .edge_topic_probs(e)
                .map(|(z, p)| (z.0 as usize, p as f64))
                .collect();
            b.add_edge(NodeId(u.0 + base), NodeId(v.0 + base), &probs)
                .expect("copied edge applies");
        }
    }
    b.build().expect("copied graph builds")
}

/// `copies` disjoint copies of the *whole* network — graph, action log
/// (node ids shifted per copy, items renumbered), shared topic model —
/// for workloads that learn from the log while serving sharded (the
/// ingest loop at K>1). [`disjoint_copies`] only clones the graph;
/// the ingestion loop also needs the cascades each copy's learner
/// re-fits, living on that copy's node ids.
pub fn replicated(net: &SyntheticNetwork, copies: usize) -> SyntheticNetwork {
    use octopus_graph::NodeId;
    let copies = copies.max(1);
    let graph = disjoint_copies(net, copies);
    let mut log = octopus_data::ActionLog::new();
    let by_item = net.log.trials_by_item();
    for c in 0..copies {
        let base = (c * net.graph.node_count()) as u32;
        for item in net.log.items() {
            let id = log.push_item(NodeId(item.origin.0 + base), item.keywords.clone());
            for t in &by_item[item.id.index()] {
                log.push_trial(
                    id,
                    NodeId(t.src.0 + base),
                    NodeId(t.dst.0 + base),
                    t.activated,
                );
            }
        }
    }
    SyntheticNetwork {
        graph,
        model: net.model.clone(),
        log,
    }
}

/// The messenger workload (experiment E8).
pub fn messenger_default() -> SyntheticNetwork {
    messenger_sized(3000)
}

/// A messenger workload with the given user count.
pub fn messenger_sized(users: usize) -> SyntheticNetwork {
    MessengerConfig {
        users,
        links_per_user: 5,
        items: users,
        num_topics: 5,
        words_per_topic: 14,
        seed: 0x9_9199,
        ..Default::default()
    }
    .generate()
}

/// The standard keyword queries of the citation experiments (mirroring the
/// demo's "data mining" style inputs, one per topic plus two mixtures).
pub fn citation_queries() -> Vec<&'static str> {
    vec![
        "data mining",
        "neural network",
        "influence maximization social recommendation",
        "distributed system replication",
        "approximation algorithm",
        "keyword search ranking",
        "data mining clustering",
        "encryption authentication",
    ]
}

/// Messenger campaign queries (the QQ scenario's inputs).
pub fn messenger_queries() -> Vec<&'static str> {
    vec![
        "game",
        "gum strawberry xylitol",
        "smartphone",
        "sneaker lipstick",
        "flight deal",
    ]
}

/// Per-user keyword candidates extracted from an action log (what the
/// engine facade receives in production).
pub fn user_keywords(net: &SyntheticNetwork) -> HashMap<octopus_graph::NodeId, Vec<KeywordId>> {
    let mut map: HashMap<octopus_graph::NodeId, Vec<KeywordId>> = HashMap::new();
    for item in net.log.items() {
        let e = map.entry(item.origin).or_default();
        for &w in &item.keywords {
            if !e.contains(&w) {
                e.push(w);
            }
        }
    }
    map
}

/// The most prolific item-originating users (suggestion-query targets).
pub fn prolific_users(net: &SyntheticNetwork, count: usize) -> Vec<octopus_graph::NodeId> {
    let map = user_keywords(net);
    let mut v: Vec<(octopus_graph::NodeId, usize)> =
        map.into_iter().map(|(u, ws)| (u, ws.len())).collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v.into_iter().take(count).map(|(u, _)| u).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_deterministic() {
        let a = citation_small();
        let b = citation_small();
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    fn queries_resolve_on_their_workloads() {
        let net = citation_small();
        for q in citation_queries() {
            assert!(net.model.infer_str(q).is_ok(), "query {q:?} must resolve");
        }
        let net = messenger_default();
        for q in messenger_queries() {
            assert!(net.model.infer_str(q).is_ok(), "query {q:?} must resolve");
        }
    }

    #[test]
    fn prolific_users_have_keywords() {
        let net = citation_small();
        let users = prolific_users(&net, 5);
        assert_eq!(users.len(), 5);
        let map = user_keywords(&net);
        for u in users {
            assert!(map[&u].len() >= 2);
        }
    }
}
