//! Persisted bench trajectories: every `exp_runner` invocation appends a
//! machine-readable run record to a `BENCH_<workload>.json` file (JSON
//! Lines — one record per line) at the repository root, and the
//! `--referee` mode diffs a fresh run against the most recent comparable
//! record so CI can *gate* on perf regressions instead of only archiving
//! artifacts.
//!
//! The container has no serde_json (the vendored `serde` is a minimal
//! stand-in), so this module hand-rolls both directions: a small canonical
//! JSON writer and a recursive-descent parser for exactly the subset the
//! writer emits (objects, arrays, strings, finite numbers). Records are
//! versioned through `schema`; unknown keys are ignored on read so older
//! binaries can walk newer trajectories.
//!
//! What a record carries (the ROADMAP's "structured bench runs" shape):
//! workload name, config fingerprint, thread count, wall-clock stamp,
//! per-stage timings, per-operator latency quantiles, peak RSS, and a
//! free-form `notes` map of workload-specific scalars (e.g. the
//! owned-vs-mapped cold-open numbers of `--open-bench`).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Record schema version; bump when a field changes meaning.
pub const SCHEMA: u64 = 1;

/// Latency quantiles of one operator, milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Quantiles {
    /// Median.
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Worst observed.
    pub max_ms: f64,
    /// Observations the quantiles were computed from (0 = unknown, for
    /// records written before the field existed). The referee skips
    /// *relative* quantile gates below [`QUANTILE_MIN_SAMPLES`]: with a
    /// handful of observations p99 is a max-statistic and even the median
    /// reflects whichever churn phases the short run happened to overlap,
    /// so run-to-run ratios are noise, not regressions.
    pub samples: u64,
}

impl Quantiles {
    /// Quantiles from duration values and the observation count behind them.
    pub fn from_durations(
        p50: Duration,
        p95: Duration,
        p99: Duration,
        max: Duration,
        samples: u64,
    ) -> Self {
        Quantiles {
            p50_ms: ms(p50),
            p95_ms: ms(p95),
            p99_ms: ms(p99),
            max_ms: ms(max),
            samples,
        }
    }
}

/// Milliseconds as f64 (the unit every number in a record uses).
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// One persisted bench run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Record schema version ([`SCHEMA`]).
    pub schema: u64,
    /// Workload name (`open-bench`, `serve`, `delta`, `sweep`); also names
    /// the trajectory file.
    pub workload: String,
    /// Fingerprint of everything that makes runs comparable (workload
    /// parameters, scale, engine config) — the referee only compares
    /// records with equal fingerprints.
    pub config_fp: u64,
    /// Worker threads the run used.
    pub threads: usize,
    /// Seconds since the unix epoch when the record was written.
    pub unix_time_s: u64,
    /// Peak resident set of the process, kilobytes (`VmHWM`; 0 where
    /// `/proc` is unavailable).
    pub peak_rss_kb: u64,
    /// Per-stage wall-clock timings, milliseconds, insertion-ordered.
    pub stage_timings_ms: Vec<(String, f64)>,
    /// Per-operator latency quantiles, insertion-ordered.
    pub op_quantiles_ms: Vec<(String, Quantiles)>,
    /// Workload-specific scalars (e.g. `mapped_cold_open_ms`).
    pub notes: Vec<(String, f64)>,
}

impl BenchRecord {
    /// A fresh record stamped with the current time and peak RSS.
    pub fn new(workload: &str, config_fp: u64, threads: usize) -> Self {
        BenchRecord {
            schema: SCHEMA,
            workload: workload.to_string(),
            config_fp,
            threads,
            unix_time_s: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            peak_rss_kb: peak_rss_kb(),
            stage_timings_ms: Vec::new(),
            op_quantiles_ms: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Add one stage timing.
    pub fn stage(&mut self, name: &str, d: Duration) -> &mut Self {
        self.stage_timings_ms.push((name.to_string(), ms(d)));
        self
    }

    /// Add one operator's quantiles.
    pub fn op(&mut self, name: &str, q: Quantiles) -> &mut Self {
        self.op_quantiles_ms.push((name.to_string(), q));
        self
    }

    /// Add one workload-specific scalar.
    pub fn note(&mut self, name: &str, value: f64) -> &mut Self {
        self.notes.push((name.to_string(), value));
        self
    }

    /// The trajectory file this record belongs to, under `dir`.
    pub fn trajectory_path(dir: &Path, workload: &str) -> PathBuf {
        dir.join(format!("BENCH_{workload}.json"))
    }

    /// Serialize as one canonical JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push('{');
        let _ = write!(
            s,
            "\"schema\":{},\"workload\":{},\"config_fp\":\"{:#018x}\",\"threads\":{},\"unix_time_s\":{},\"peak_rss_kb\":{}",
            self.schema,
            json_string(&self.workload),
            self.config_fp,
            self.threads,
            self.unix_time_s,
            self.peak_rss_kb
        );
        s.push_str(",\"stage_timings_ms\":{");
        for (i, (k, v)) in self.stage_timings_ms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{}:{}", json_string(k), json_number(*v));
        }
        s.push_str("},\"op_quantiles_ms\":{");
        for (i, (k, q)) in self.op_quantiles_ms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{}:{{\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{},\"n\":{}}}",
                json_string(k),
                json_number(q.p50_ms),
                json_number(q.p95_ms),
                json_number(q.p99_ms),
                json_number(q.max_ms),
                q.samples
            );
        }
        s.push_str("},\"notes\":{");
        for (i, (k, v)) in self.notes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{}:{}", json_string(k), json_number(*v));
        }
        s.push_str("}}");
        s
    }

    /// Parse a record from one JSON line.
    pub fn from_json(line: &str) -> Result<Self, String> {
        let value = Json::parse(line)?;
        let obj = value.as_object().ok_or("record is not a JSON object")?;
        let num = |key: &str| -> Result<f64, String> {
            obj.get(key)
                .and_then(Json::as_number)
                .ok_or_else(|| format!("missing numeric field {key}"))
        };
        let config_fp = match obj.get("config_fp") {
            Some(Json::String(s)) => {
                let hex = s.trim_start_matches("0x");
                u64::from_str_radix(hex, 16).map_err(|e| format!("config_fp: {e}"))?
            }
            _ => return Err("missing config_fp".into()),
        };
        let scalar_map = |key: &str| -> Result<Vec<(String, f64)>, String> {
            let m = obj
                .get(key)
                .and_then(Json::as_object)
                .ok_or_else(|| format!("missing object field {key}"))?;
            m.iter()
                .map(|(k, v)| {
                    v.as_number()
                        .map(|n| (k.clone(), n))
                        .ok_or_else(|| format!("{key}.{k} is not a number"))
                })
                .collect()
        };
        let quantile_map = obj
            .get("op_quantiles_ms")
            .and_then(Json::as_object)
            .ok_or("missing op_quantiles_ms")?
            .iter()
            .map(|(k, v)| {
                let q = v
                    .as_object()
                    .ok_or_else(|| format!("op {k} is not an object"))?;
                let field = |f: &str| {
                    q.get(f)
                        .and_then(Json::as_number)
                        .ok_or_else(|| format!("op {k} missing {f}"))
                };
                Ok((
                    k.clone(),
                    Quantiles {
                        p50_ms: field("p50")?,
                        p95_ms: field("p95")?,
                        p99_ms: field("p99")?,
                        max_ms: field("max")?,
                        // absent in records written before the field
                        // existed: 0 = unknown, gated as before
                        samples: q.get("n").and_then(Json::as_number).unwrap_or(0.0) as u64,
                    },
                ))
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(BenchRecord {
            schema: num("schema")? as u64,
            workload: obj
                .get("workload")
                .and_then(Json::as_str)
                .ok_or("missing workload")?
                .to_string(),
            config_fp,
            threads: num("threads")? as usize,
            unix_time_s: num("unix_time_s")? as u64,
            peak_rss_kb: num("peak_rss_kb")? as u64,
            stage_timings_ms: scalar_map("stage_timings_ms")?,
            op_quantiles_ms: quantile_map,
            notes: scalar_map("notes")?,
        })
    }

    /// Append this record to its trajectory file under `dir` (one JSON
    /// line), creating the file on first use. Returns the path written.
    pub fn append_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        use std::io::Write;
        let path = Self::trajectory_path(dir, &self.workload);
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        writeln!(f, "{}", self.to_json())?;
        Ok(path)
    }

    /// Read every parseable record of `workload`'s trajectory under `dir`
    /// (oldest first; unparseable lines are skipped, not fatal — the
    /// trajectory outlives schema bumps).
    pub fn load_trajectory(dir: &Path, workload: &str) -> Vec<BenchRecord> {
        let Ok(raw) = std::fs::read_to_string(Self::trajectory_path(dir, workload)) else {
            return Vec::new();
        };
        raw.lines()
            .filter(|l| !l.trim().is_empty())
            .filter_map(|l| BenchRecord::from_json(l).ok())
            .collect()
    }
}

/// JSON-escape a string (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A finite JSON number; `Display` for f64 is shortest-round-trip, so the
/// parse side recovers the exact bits.
fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

// ---------------------------------------------------------------------------
// A minimal JSON value + recursive-descent parser
// ---------------------------------------------------------------------------

/// The JSON subset the trajectory uses.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`, `true`/`false` are folded to numbers 0/1 — the trajectory
    /// never writes them, but a hand-edited file should not crash the
    /// parser.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object (sorted map: key order is irrelevant to readers).
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Parse one JSON document (must consume the whole input).
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut at = 0usize;
        let v = parse_value(bytes, &mut at)?;
        skip_ws(bytes, &mut at);
        if at != bytes.len() {
            return Err(format!("trailing bytes at offset {at}"));
        }
        Ok(v)
    }

    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], at: &mut usize) {
    while *at < b.len() && matches!(b[*at], b' ' | b'\t' | b'\n' | b'\r') {
        *at += 1;
    }
}

fn parse_value(b: &[u8], at: &mut usize) -> Result<Json, String> {
    skip_ws(b, at);
    match b.get(*at) {
        Some(b'{') => parse_object(b, at),
        Some(b'[') => parse_array(b, at),
        Some(b'"') => Ok(Json::String(parse_string(b, at)?)),
        Some(b't') => parse_lit(b, at, "true", Json::Number(1.0)),
        Some(b'f') => parse_lit(b, at, "false", Json::Number(0.0)),
        Some(b'n') => parse_lit(b, at, "null", Json::Number(0.0)),
        Some(_) => parse_number(b, at),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(b: &[u8], at: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*at..].starts_with(lit.as_bytes()) {
        *at += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at offset {at}"))
    }
}

fn parse_object(b: &[u8], at: &mut usize) -> Result<Json, String> {
    *at += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(b, at);
    if b.get(*at) == Some(&b'}') {
        *at += 1;
        return Ok(Json::Object(map));
    }
    loop {
        skip_ws(b, at);
        let key = parse_string(b, at)?;
        skip_ws(b, at);
        if b.get(*at) != Some(&b':') {
            return Err(format!("expected ':' at offset {at}"));
        }
        *at += 1;
        let value = parse_value(b, at)?;
        map.insert(key, value);
        skip_ws(b, at);
        match b.get(*at) {
            Some(b',') => *at += 1,
            Some(b'}') => {
                *at += 1;
                return Ok(Json::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {at}")),
        }
    }
}

fn parse_array(b: &[u8], at: &mut usize) -> Result<Json, String> {
    *at += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, at);
    if b.get(*at) == Some(&b']') {
        *at += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(b, at)?);
        skip_ws(b, at);
        match b.get(*at) {
            Some(b',') => *at += 1,
            Some(b']') => {
                *at += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {at}")),
        }
    }
}

fn parse_string(b: &[u8], at: &mut usize) -> Result<String, String> {
    if b.get(*at) != Some(&b'"') {
        return Err(format!("expected string at offset {at}"));
    }
    *at += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*at) {
        match c {
            b'"' => {
                *at += 1;
                return Ok(out);
            }
            b'\\' => {
                *at += 1;
                match b.get(*at) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*at + 1..*at + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *at += 4;
                    }
                    _ => return Err("bad escape".into()),
                }
                *at += 1;
            }
            _ => {
                // consume one UTF-8 scalar (input is a &str, so slicing on
                // char boundaries is safe via the str API)
                let rest = std::str::from_utf8(&b[*at..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().ok_or("unterminated string")?;
                out.push(ch);
                *at += ch.len_utf8();
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], at: &mut usize) -> Result<Json, String> {
    let start = *at;
    while *at < b.len() && matches!(b[*at], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *at += 1;
    }
    std::str::from_utf8(&b[start..*at])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Number)
        .ok_or_else(|| format!("bad number at offset {start}"))
}

// ---------------------------------------------------------------------------
// Process RSS probes (linux /proc; zeros elsewhere)
// ---------------------------------------------------------------------------

fn proc_status_kb(field: &str) -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find(|l| l.starts_with(field))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Peak resident set size of this process, kilobytes (`VmHWM`).
pub fn peak_rss_kb() -> u64 {
    proc_status_kb("VmHWM:")
}

/// Current resident set size of this process, kilobytes (`VmRSS`).
pub fn current_rss_kb() -> u64 {
    proc_status_kb("VmRSS:")
}

// ---------------------------------------------------------------------------
// The referee: gate a fresh run against its trajectory
// ---------------------------------------------------------------------------

/// A fresh metric is a regression when it exceeds `REGRESSION_RATIO` × the
/// baseline **and** the absolute slowdown clears [`REGRESSION_FLOOR_MS`] —
/// the floor keeps micro-timings (scheduler noise at sub-millisecond
/// scale) from tripping CI.
pub const REGRESSION_RATIO: f64 = 2.0;
/// Minimum absolute slowdown (milliseconds) that can count as a regression.
pub const REGRESSION_FLOOR_MS: f64 = 10.0;
/// Minimum observations behind a latency quantile for the referee to gate
/// it *relatively* (fresh vs baseline). Below this — e.g. `--quick` serve
/// runs with a few dozen queries per operator — p99 is a max-statistic
/// (one query descheduled behind an epoch rebuild shifts it by two orders
/// of magnitude) and even p50 depends on which churn phases the short run
/// overlapped, so ratio gates flap without any code change. Smoke-scale
/// runs stay guarded by the *absolute* limits (`--serve-p99-ms`, the
/// `--shed` deadline guard) and by the recall quality notes, which are
/// deterministic at any scale. Quantiles with an unknown count (records
/// predating the `n` field) are gated as before.
pub const QUANTILE_MIN_SAMPLES: u64 = 200;
/// Quality gate: a `recall*` note is a regression when it *drops* by more
/// than this (absolute recall) against the baseline — answer quality is
/// gated alongside latency, so an anytime-path change cannot buy speed by
/// silently degrading answers.
pub const QUALITY_DROP: f64 = 0.05;

/// Outcome of one referee comparison.
#[derive(Debug, Clone)]
pub struct RefereeReport {
    /// The baseline's timestamp, if a comparable record existed.
    pub baseline_time_s: Option<u64>,
    /// Metrics compared (present in both records).
    pub compared: usize,
    /// Human-readable regression lines (empty = pass).
    pub regressions: Vec<String>,
}

impl RefereeReport {
    /// Whether the fresh run passes (no regressions).
    pub fn pass(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compare `fresh` against the most recent trajectory record with the
/// same workload, config fingerprint, and thread count. No comparable
/// baseline (first run on this configuration) passes vacuously with
/// `baseline_time_s = None`.
pub fn referee_check(dir: &Path, fresh: &BenchRecord) -> RefereeReport {
    let baseline = BenchRecord::load_trajectory(dir, &fresh.workload)
        .into_iter()
        .rfind(|r| {
            r.schema == fresh.schema && r.config_fp == fresh.config_fp && r.threads == fresh.threads
        });
    let Some(base) = baseline else {
        return RefereeReport {
            baseline_time_s: None,
            compared: 0,
            regressions: Vec::new(),
        };
    };
    let mut compared = 0usize;
    let mut regressions = Vec::new();
    let mut check = |metric: &str, fresh_ms: f64, base_ms: f64| {
        compared += 1;
        if fresh_ms > base_ms * REGRESSION_RATIO && fresh_ms - base_ms > REGRESSION_FLOOR_MS {
            regressions.push(format!(
                "{metric}: {fresh_ms:.2} ms vs baseline {base_ms:.2} ms ({:.1}x)",
                fresh_ms / base_ms.max(1e-9)
            ));
        }
    };
    for (name, fresh_ms) in &fresh.stage_timings_ms {
        if let Some((_, base_ms)) = base.stage_timings_ms.iter().find(|(n, _)| n == name) {
            check(&format!("stage {name}"), *fresh_ms, *base_ms);
        }
    }
    // a known-but-small sample count on either side makes the relative
    // comparison statistically meaningless (see QUANTILE_MIN_SAMPLES)
    let too_few = |n: u64| n != 0 && n < QUANTILE_MIN_SAMPLES;
    for (name, q) in &fresh.op_quantiles_ms {
        if let Some((_, bq)) = base.op_quantiles_ms.iter().find(|(n, _)| n == name) {
            if too_few(q.samples) || too_few(bq.samples) {
                continue;
            }
            check(&format!("{name} p50"), q.p50_ms, bq.p50_ms);
            check(&format!("{name} p99"), q.p99_ms, bq.p99_ms);
        }
    }
    for (name, v) in &fresh.notes {
        // timing-shaped notes participate in the latency gate
        if name.ends_with("_ms") {
            if let Some((_, b)) = base.notes.iter().find(|(n, _)| n == name) {
                check(&format!("note {name}"), *v, *b);
            }
        }
    }
    for (name, v) in &fresh.notes {
        // recall-shaped notes participate in the quality gate: they
        // regress in the OTHER direction (a drop, not a slowdown)
        if name.starts_with("recall") {
            if let Some((_, b)) = base.notes.iter().find(|(n, _)| n == name) {
                compared += 1;
                if b - v > QUALITY_DROP {
                    regressions.push(format!(
                        "note {name}: recall {v:.3} vs baseline {b:.3} (drop {:.3})",
                        b - v
                    ));
                }
            }
        }
    }
    RefereeReport {
        baseline_time_s: Some(base.unix_time_s),
        compared,
        regressions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchRecord {
        let mut r = BenchRecord::new("open-bench", 0xABCD_EF01_2345_6789, 8);
        r.stage("artifact-map", Duration::from_micros(120))
            .stage("artifact-validate", Duration::from_micros(480))
            .op(
                "find_influencers",
                Quantiles::from_durations(
                    Duration::from_millis(1),
                    Duration::from_millis(2),
                    Duration::from_millis(3),
                    Duration::from_millis(4),
                    1000,
                ),
            )
            .note("mapped_cold_open_ms", 0.61)
            .note("name with \"quotes\"\n", 1.5);
        r
    }

    #[test]
    fn records_round_trip_through_json() {
        let r = sample();
        let parsed = BenchRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(r, parsed);
    }

    #[test]
    fn trajectory_appends_and_loads_in_order() {
        let dir = std::env::temp_dir().join("octopus_bench_record_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let mut a = sample();
        a.unix_time_s = 100;
        let mut b = sample();
        b.unix_time_s = 200;
        a.append_to(&dir).unwrap();
        b.append_to(&dir).unwrap();
        // an unparseable line must be skipped, not fatal
        use std::io::Write;
        let path = BenchRecord::trajectory_path(&dir, "open-bench");
        writeln!(
            std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap(),
            "{{corrupt"
        )
        .unwrap();
        let loaded = BenchRecord::load_trajectory(&dir, "open-bench");
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].unix_time_s, 100);
        assert_eq!(loaded[1].unix_time_s, 200);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn referee_passes_without_baseline_and_catches_regressions() {
        let dir = std::env::temp_dir().join("octopus_bench_referee_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let mut base = sample();
        base.stage_timings_ms = vec![("open".into(), 50.0)];
        base.op_quantiles_ms = vec![(
            "find_influencers".into(),
            Quantiles {
                p50_ms: 5.0,
                p95_ms: 8.0,
                p99_ms: 10.0,
                max_ms: 12.0,
                samples: 1000,
            },
        )];
        base.notes = vec![("mapped_cold_open_ms".into(), 20.0)];

        // first run: no baseline, vacuous pass
        let first = referee_check(&dir, &base);
        assert!(first.pass() && first.baseline_time_s.is_none());
        base.append_to(&dir).unwrap();

        // identical rerun passes against the recorded baseline
        let rerun = referee_check(&dir, &base);
        assert!(rerun.pass());
        assert!(rerun.baseline_time_s.is_some());
        assert!(rerun.compared >= 4);

        // a 3x stage blowup over the floor is a regression
        let mut slow = base.clone();
        slow.stage_timings_ms = vec![("open".into(), 150.0)];
        let caught = referee_check(&dir, &slow);
        assert!(!caught.pass());
        assert!(caught.regressions[0].contains("stage open"));

        // sub-floor noise never trips the gate
        let mut noisy = base.clone();
        noisy.op_quantiles_ms[0].1.p50_ms = 14.0; // 2.8x but +9ms < floor
        assert!(referee_check(&dir, &noisy).pass());

        // a different config fingerprint is never compared
        let mut other = slow.clone();
        other.config_fp ^= 1;
        let skipped = referee_check(&dir, &other);
        assert!(skipped.pass() && skipped.baseline_time_s.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn referee_skips_relative_quantile_gates_on_smoke_scale_samples() {
        let dir = std::env::temp_dir().join("octopus_bench_smoke_scale_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let mut base = sample();
        base.stage_timings_ms.clear();
        base.notes.clear();
        base.op_quantiles_ms = vec![(
            "autocomplete".into(),
            Quantiles {
                p50_ms: 0.1,
                p95_ms: 0.2,
                p99_ms: 0.3,
                max_ms: 0.4,
                samples: 40,
            },
        )];
        base.append_to(&dir).unwrap();

        // a huge tail swing on 40 observations is a max-statistic, not a
        // regression: the relative gate must not fire
        let mut tail = base.clone();
        tail.op_quantiles_ms[0].1.p99_ms = 32.0;
        assert!(referee_check(&dir, &tail).pass());

        // the same swing backed by enough samples on both sides trips it
        let mut solid_base = base.clone();
        solid_base.config_fp ^= 1;
        solid_base.op_quantiles_ms[0].1.samples = QUANTILE_MIN_SAMPLES;
        solid_base.append_to(&dir).unwrap();
        let mut solid_tail = solid_base.clone();
        solid_tail.op_quantiles_ms[0].1.p99_ms = 32.0;
        assert!(!referee_check(&dir, &solid_tail).pass());

        // a smoke-scale fresh run against a well-sampled baseline (or the
        // reverse) is still not comparable
        let mut mixed = solid_tail.clone();
        mixed.op_quantiles_ms[0].1.samples = 40;
        assert!(referee_check(&dir, &mixed).pass());

        // unknown counts (records predating the field) keep the old gate
        let mut legacy_base = base.clone();
        legacy_base.config_fp ^= 2;
        legacy_base.op_quantiles_ms[0].1.samples = 0;
        legacy_base.append_to(&dir).unwrap();
        let mut legacy_tail = legacy_base.clone();
        legacy_tail.op_quantiles_ms[0].1.p99_ms = 32.0;
        assert!(!referee_check(&dir, &legacy_tail).pass());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn referee_gates_recall_drops_but_not_gains() {
        let dir = std::env::temp_dir().join("octopus_bench_quality_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let mut base = sample();
        base.stage_timings_ms.clear();
        base.op_quantiles_ms.clear();
        base.notes = vec![("recall_at_k_b128".into(), 0.90)];
        base.append_to(&dir).unwrap();

        // within the tolerance: pass
        let mut ok = base.clone();
        ok.notes = vec![("recall_at_k_b128".into(), 0.86)];
        assert!(referee_check(&dir, &ok).pass());

        // a drop past the tolerance: regression
        let mut dropped = base.clone();
        dropped.notes = vec![("recall_at_k_b128".into(), 0.80)];
        let caught = referee_check(&dir, &dropped);
        assert!(!caught.pass());
        assert!(caught.regressions[0].contains("recall_at_k_b128"));

        // a gain never trips the gate
        let mut gained = base.clone();
        gained.notes = vec![("recall_at_k_b128".into(), 1.0)];
        assert!(referee_check(&dir, &gained).pass());
        std::fs::remove_dir_all(&dir).ok();
    }
}
