//! The common quality referee: every engine's seed sets are re-scored with
//! the same Monte-Carlo estimator so cross-engine spread comparisons are
//! apples-to-apples (engines' internal estimators differ by design).

use octopus_cascade::estimate_spread_parallel;
use octopus_graph::{NodeId, TopicGraph};
use octopus_topics::TopicDistribution;

/// Monte-Carlo referee bound to one graph.
pub struct Referee<'g> {
    graph: &'g TopicGraph,
    runs: usize,
    seed: u64,
    threads: usize,
}

impl<'g> Referee<'g> {
    /// Referee with the default budget (4000 runs, 4 threads).
    pub fn new(graph: &'g TopicGraph) -> Self {
        Referee {
            graph,
            runs: 4000,
            seed: 0x5EED,
            threads: 4,
        }
    }

    /// Override the simulation budget.
    pub fn with_runs(mut self, runs: usize) -> Self {
        self.runs = runs;
        self
    }

    /// Ground-truth-ish spread of `seeds` under `gamma`.
    pub fn score(&self, gamma: &TopicDistribution, seeds: &[NodeId]) -> f64 {
        if seeds.is_empty() {
            return 0.0;
        }
        let probs = self
            .graph
            .materialize(gamma.as_slice())
            .expect("validated gamma");
        estimate_spread_parallel(
            self.graph,
            &probs,
            seeds,
            self.runs,
            self.seed,
            self.threads,
        )
    }

    /// Quality ratio of `seeds` relative to `baseline_seeds` (1.0 = equal).
    pub fn ratio(
        &self,
        gamma: &TopicDistribution,
        seeds: &[NodeId],
        baseline_seeds: &[NodeId],
    ) -> f64 {
        let s = self.score(gamma, seeds);
        let b = self.score(gamma, baseline_seeds);
        if b <= 0.0 {
            1.0
        } else {
            s / b
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::citation_small;

    #[test]
    fn referee_scores_are_stable_and_ordered() {
        let net = citation_small();
        let referee = Referee::new(&net.graph).with_runs(1500);
        let gamma = net.model.infer_str("data mining").unwrap();
        let hub = octopus_graph::stats::top_out_degree(&net.graph, 1)[0].0;
        let s1 = referee.score(&gamma, &[hub]);
        let s2 = referee.score(&gamma, &[hub]);
        assert_eq!(s1, s2, "fixed seed ⇒ deterministic referee");
        let weak = octopus_graph::stats::top_out_degree(&net.graph, net.graph.node_count())
            .last()
            .unwrap()
            .0;
        let sw = referee.score(&gamma, &[weak]);
        assert!(s1 > sw, "hub {s1} must outscore weakest {sw}");
        assert_eq!(referee.score(&gamma, &[]), 0.0);
    }
}
