//! Plain-text table rendering for experiment reports (paper-style rows).

/// A simple aligned table: header + rows of strings.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("### {}\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("| ");
            for (i, c) in cells.iter().enumerate() {
                line.push_str(&format!("{:<w$} | ", c, w = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{:-<w$}|", "", w = w + 2));
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Render as CSV (RFC 4180 quoting), header first.
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Write the CSV next to a directory under a slugified title.
    pub fn write_csv(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let slug: String = self
            .title
            .chars()
            .map(|c| {
                if c.is_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect::<String>()
            .split('_')
            .filter(|s| !s.is_empty())
            .collect::<Vec<_>>()
            .join("_");
        let path = dir.join(format!("{slug}.csv"));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

/// Format a `Duration` compactly (µs below 2ms, ms below 2s, else s).
pub fn fmt_duration(d: std::time::Duration) -> String {
    let us = d.as_micros();
    if us < 2_000 {
        format!("{us}µs")
    } else if us < 2_000_000 {
        format!("{:.1}ms", us as f64 / 1000.0)
    } else {
        format!("{:.2}s", us as f64 / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["engine", "latency"]);
        t.row(vec!["naive".into(), "1.2s".into()]);
        t.row(vec!["best-effort".into(), "8ms".into()]);
        let s = t.render();
        assert!(s.contains("### demo"));
        assert!(s.contains("| engine      | latency |"));
        assert!(s.lines().count() == 5);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_rendering_quotes_properly() {
        let mut t = Table::new("csv demo", &["a", "b"]);
        t.row(vec!["plain".into(), "with,comma".into()]);
        t.row(vec!["with\"quote".into(), "x".into()]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().next().unwrap(), "a,b");
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"with\"\"quote\""));
    }

    #[test]
    fn csv_file_write() {
        let mut t = Table::new("E99: tiny table", &["x"]);
        t.row(vec!["1".into()]);
        let dir = std::env::temp_dir().join("octopus_csv_test");
        let path = t.write_csv(&dir).unwrap();
        assert!(path
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .starts_with("e99"));
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "x\n1\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duration_formatting() {
        use std::time::Duration;
        assert_eq!(fmt_duration(Duration::from_micros(500)), "500µs");
        assert_eq!(fmt_duration(Duration::from_millis(15)), "15.0ms");
        assert_eq!(fmt_duration(Duration::from_secs(3)), "3.00s");
    }
}
