//! Closed-loop load generator for the serving layer — the "serving under
//! churn" scenario behind `exp_runner --serve <workers>` (optionally
//! `--shards <k>`).
//!
//! N worker threads issue a seeded mixed workload (influencer ranking,
//! keyword suggestion, path exploration, autocompletion, keyword radar)
//! against one [`ServeTarget`] — an unsharded [`OctopusService`] (each
//! worker owning a [`Session`](octopus_core::serve::Session)) or a
//! [`ShardedService`] scatter-gather router — while a mutator thread
//! injects [`GraphDelta`] batches and flushes them into epoch swaps.
//! Workers run until every swap has happened *and* they have issued their
//! query quota, so queries provably race every swap. The report carries
//! per-operator throughput and latency percentiles plus the swap
//! trajectory (per-shard: which shard swapped, rebuild time, and
//! per-stage reuse of every epoch; the unsharded service reports as the
//! degenerate single shard 0).
//!
//! Determinism caveat: per-worker query *choices* are seeded and
//! reproducible; the interleaving with swaps (and hence per-epoch query
//! counts and latencies) is scheduling-dependent, as serving is. The
//! correctness of answers under that nondeterminism is what
//! `crates/core/tests/serve_epoch.rs` and `serve_shard.rs` pin; this
//! generator measures it.

use crate::workloads::prolific_users;
use octopus_core::paths::ExploreDirection;
use octopus_core::serve::{
    OctopusService, Operator, Query, QueryService, ShardSwap, ShardedService,
};
use octopus_core::{CoreError, QueryBudget};
use octopus_data::SyntheticNetwork;
use octopus_graph::delta::GraphDelta;
use octopus_graph::EdgeId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::time::{Duration, Instant};

/// Tuning knobs of one load run.
#[derive(Debug, Clone)]
pub struct ServeLoadConfig {
    /// Worker threads issuing queries.
    pub workers: usize,
    /// Minimum queries each worker issues (workers also keep going until
    /// the mutator finishes, so every swap races live queries).
    pub min_queries_per_worker: usize,
    /// Delta batches the mutator injects — at least one shard swap each.
    pub delta_batches: usize,
    /// Edge-weight nudges per batch.
    pub edges_per_batch: usize,
    /// Mutator pause before each batch, letting queries land on the
    /// current epoch first.
    pub batch_pause: Duration,
    /// Master seed for the workers' query choices and the mutator's edge
    /// picks.
    pub seed: u64,
    /// Per-query budget every worker carries. Unlimited (the default)
    /// runs the exact operators; a limited budget routes queries through
    /// the anytime variants. The budget's class drives admission when the
    /// target was built with an admission controller — shed queries
    /// ([`CoreError::Overloaded`]) are counted separately from errors and
    /// contribute no latency sample, so the report's percentiles are
    /// percentiles *of admitted queries*.
    pub budget: QueryBudget,
}

impl Default for ServeLoadConfig {
    fn default() -> Self {
        ServeLoadConfig {
            workers: 4,
            min_queries_per_worker: 100,
            delta_batches: 4,
            edges_per_batch: 3,
            batch_pause: Duration::from_millis(30),
            seed: 0x5E17_E000,
            budget: QueryBudget::unlimited(),
        }
    }
}

/// What the load generator drives: either serving-layer flavor, behind
/// one face so the worker and mutator loops are flavor-blind.
pub enum ServeTarget {
    /// One whole-graph engine behind an epoch cell (boxed: the service
    /// carries the admission controller and stats counters inline).
    Single(Box<OctopusService>),
    /// Per-shard engines behind a scatter-gather router (boxed: the
    /// router carries per-shard state and dwarfs the single variant).
    Sharded(Box<ShardedService>),
}

impl ServeTarget {
    /// Both flavors behind the one face the loops actually use — the
    /// unified [`QueryService`] trait. This (plus `shard_count` below)
    /// is the *only* flavor dispatch left in the whole generator: the
    /// workers execute [`Query`] values, the mutator submits and
    /// flushes deltas, all through the trait.
    pub fn service(&self) -> &dyn QueryService {
        match self {
            ServeTarget::Single(s) => s.as_ref(),
            ServeTarget::Sharded(s) => s.as_ref(),
        }
    }

    /// Number of shards serving (1 for the unsharded service).
    pub fn shard_count(&self) -> usize {
        self.service().shard_count()
    }
}

/// The query material the mixed workload draws from.
#[derive(Debug, Clone)]
pub struct MixPools {
    /// Keyword queries for influencer ranking and path narrowing.
    pub queries: Vec<String>,
    /// User names for suggestion and path exploration.
    pub users: Vec<String>,
    /// Single vocabulary words for radar charts.
    pub words: Vec<String>,
    /// Name prefixes for autocompletion.
    pub prefixes: Vec<String>,
}

impl MixPools {
    /// Derive pools from a synthetic network: queries are vocabulary
    /// words (singletons and two-word mixtures), users are the most
    /// prolific authors, prefixes are their name stems.
    pub fn from_network(net: &SyntheticNetwork) -> Self {
        let vocab_size = net.model.vocab_size();
        let take = vocab_size.min(24);
        let words: Vec<String> = (0..take)
            .map(|w| {
                // spread picks across the vocabulary
                let id = (w * vocab_size / take.max(1)) as u32;
                net.model
                    .vocab()
                    .word(octopus_topics::KeywordId(id))
                    .expect("sampled id is in range")
                    .to_string()
            })
            .collect();
        let mut queries: Vec<String> = words.iter().take(8).cloned().collect();
        for pair in words.chunks(2).take(6) {
            queries.push(pair.join(" "));
        }
        let users: Vec<String> = prolific_users(net, 8)
            .into_iter()
            .filter_map(|u| net.graph.name(u).map(str::to_string))
            .collect();
        let prefixes: Vec<String> = users.iter().map(|n| n.chars().take(2).collect()).collect();
        MixPools {
            queries,
            users,
            words,
            prefixes,
        }
    }
}

/// Latency/throughput digest of one operator across the whole run.
#[derive(Debug, Clone)]
pub struct OperatorReport {
    /// Which operator.
    pub operator: Operator,
    /// Queries issued.
    pub queries: u64,
    /// Queries that returned an error (shed queries excluded).
    pub errors: u64,
    /// Queries shed by admission control ([`CoreError::Overloaded`]).
    pub shed: u64,
    /// Median latency (admitted queries only).
    pub p50: Duration,
    /// 95th-percentile latency.
    pub p95: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
    /// Worst observed latency.
    pub max: Duration,
    /// Queries per second over the run's wall clock.
    pub throughput: f64,
}

/// Everything one load run measured.
#[derive(Debug, Clone)]
pub struct ServeLoadReport {
    /// Wall clock of the whole run.
    pub wall: Duration,
    /// Per-operator digests, in [`Operator::ALL`] order (operators with
    /// zero queries are omitted).
    pub per_op: Vec<OperatorReport>,
    /// Total queries across operators and workers.
    pub total_queries: u64,
    /// Total errors across operators and workers (shed excluded).
    pub total_errors: u64,
    /// Total queries shed by admission control.
    pub total_shed: u64,
    /// Aggregate throughput (queries per second).
    pub throughput: f64,
    /// Shards serving (1 for the unsharded service).
    pub shards: usize,
    /// One entry per shard swap, in flush order (the unsharded service
    /// reports every swap as shard 0; a sharded flush touching three
    /// shards contributes three entries).
    pub swaps: Vec<ShardSwap>,
    /// Flush batches that failed (must be 0 in a healthy run).
    pub batches_failed: u64,
    /// Deltas applied across all swaps.
    pub deltas_applied: u64,
    /// Epoch range observed by the workers' queries.
    pub epochs_observed: (u64, u64),
}

impl ServeLoadReport {
    /// The digest for one operator, if it ran.
    pub fn op(&self, op: Operator) -> Option<&OperatorReport> {
        self.per_op.iter().find(|r| r.operator == op)
    }

    /// Fraction of issued queries that were shed.
    pub fn shed_rate(&self) -> f64 {
        if self.total_queries == 0 {
            0.0
        } else {
            self.total_shed as f64 / self.total_queries as f64
        }
    }
}

/// Latency percentile from an unsorted sample set (nearest-rank).
pub fn percentile(samples: &mut [Duration], p: f64) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    samples.sort_unstable();
    let rank = ((p / 100.0) * (samples.len() - 1) as f64).round() as usize;
    samples[rank.min(samples.len() - 1)]
}

/// Per-worker raw measurements, merged after the scope joins.
#[derive(Default)]
struct WorkerLog {
    latencies: [Vec<Duration>; 5],
    errors: [u64; 5],
    shed: [u64; 5],
    epochs: Option<(u64, u64)>,
}

/// Drive `target` through a full serve-under-churn run (see the module
/// docs). `net` supplies the query pools; the mutator nudges edges across
/// the target's own (possibly multi-shard) edge range.
pub fn run(target: ServeTarget, net: &SyntheticNetwork, cfg: &ServeLoadConfig) -> ServeLoadReport {
    let pools = MixPools::from_network(net);
    let service = target.service();
    let edge_count = service.edge_count();
    let mutations_done = AtomicBool::new(false);
    let start = Instant::now();

    let (logs, swaps) = std::thread::scope(|s| {
        let mut workers = Vec::new();
        for w in 0..cfg.workers {
            let pools = &pools;
            let mutations_done = &mutations_done;
            workers.push(s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (0xA11CE + w as u64));
                let mut log = WorkerLog::default();
                let mut issued = 0usize;
                while issued < cfg.min_queries_per_worker || !mutations_done.load(SeqCst) {
                    let roll = rng.random_range(0..100u32);
                    let query = if roll < 40 {
                        let q = &pools.queries[rng.random_range(0..pools.queries.len())];
                        Query::FindInfluencers {
                            query: q.clone(),
                            k: rng.random_range(1..=8usize),
                        }
                    } else if roll < 60 {
                        let u = &pools.users[rng.random_range(0..pools.users.len())];
                        Query::SuggestKeywords {
                            user: u.clone(),
                            k: 2,
                        }
                    } else if roll < 75 {
                        let u = &pools.users[rng.random_range(0..pools.users.len())];
                        let q = &pools.queries[rng.random_range(0..pools.queries.len())];
                        Query::ExplorePaths {
                            user: u.clone(),
                            direction: ExploreDirection::Influences,
                            query: Some(q.clone()),
                        }
                    } else if roll < 90 {
                        let p = &pools.prefixes[rng.random_range(0..pools.prefixes.len())];
                        Query::Autocomplete {
                            prefix: p.clone(),
                            limit: 10,
                        }
                    } else {
                        let word = &pools.words[rng.random_range(0..pools.words.len())];
                        Query::KeywordRadar { word: word.clone() }
                    };
                    let op = query.operator().index();
                    // the answer payload is discarded — the generator
                    // measures; correctness is what the serve tests pin
                    match service.execute(&query, &cfg.budget) {
                        Ok(a) => {
                            log.latencies[op].push(a.latency);
                            log.epochs = Some(match log.epochs {
                                None => (a.epoch, a.epoch),
                                Some((lo, hi)) => (lo.min(a.epoch), hi.max(a.epoch)),
                            });
                        }
                        Err(CoreError::Overloaded { .. }) => log.shed[op] += 1,
                        Err(_) => log.errors[op] += 1,
                    }
                    issued += 1;
                }
                log
            }));
        }

        // the mutator: one coalesced nudge batch per flush — the flush
        // rebuilds and swaps only the shards the batch's footprint touches
        let swaps = {
            let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x0D17A);
            let mut swaps: Vec<ShardSwap> = Vec::new();
            for _ in 0..cfg.delta_batches {
                std::thread::sleep(cfg.batch_pause);
                for _ in 0..cfg.edges_per_batch {
                    service.submit_delta(GraphDelta::NudgeWeights {
                        edges: vec![EdgeId(rng.random_range(0..edge_count as u32))],
                        delta: 0.02,
                    });
                }
                if let Ok(mut batch_swaps) = service.flush_deltas() {
                    swaps.append(&mut batch_swaps);
                }
            }
            mutations_done.store(true, SeqCst);
            swaps
        };

        let logs: Vec<WorkerLog> = workers
            .into_iter()
            .map(|w| w.join().expect("worker panicked"))
            .collect();
        (logs, swaps)
    });
    let wall = start.elapsed();

    // merge worker logs
    let mut latencies: [Vec<Duration>; 5] = Default::default();
    let mut errors = [0u64; 5];
    let mut shed = [0u64; 5];
    let mut epochs_observed: Option<(u64, u64)> = None;
    for log in logs {
        for (i, l) in log.latencies.into_iter().enumerate() {
            latencies[i].extend(l);
            errors[i] += log.errors[i];
            shed[i] += log.shed[i];
        }
        if let Some((lo, hi)) = log.epochs {
            epochs_observed = Some(match epochs_observed {
                None => (lo, hi),
                Some((a, b)) => (a.min(lo), b.max(hi)),
            });
        }
    }
    let wall_secs = wall.as_secs_f64().max(1e-9);
    let per_op: Vec<OperatorReport> = Operator::ALL
        .iter()
        .enumerate()
        .zip(latencies.iter_mut())
        .filter(|((i, _), samples)| !samples.is_empty() || errors[*i] > 0 || shed[*i] > 0)
        .map(|((i, &operator), samples)| {
            let queries = samples.len() as u64 + errors[i] + shed[i];
            OperatorReport {
                operator,
                queries,
                errors: errors[i],
                shed: shed[i],
                p50: percentile(samples, 50.0),
                p95: percentile(samples, 95.0),
                p99: percentile(samples, 99.0),
                max: samples.last().copied().unwrap_or(Duration::ZERO),
                throughput: queries as f64 / wall_secs,
            }
        })
        .collect();
    let total_queries: u64 = per_op.iter().map(|r| r.queries).sum();
    let total_errors: u64 = per_op.iter().map(|r| r.errors).sum();
    let total_shed: u64 = per_op.iter().map(|r| r.shed).sum();
    let counters = service.delta_counters();
    let (deltas_applied, batches_failed) = (counters.deltas_applied, counters.batches_failed);
    ServeLoadReport {
        wall,
        per_op,
        total_queries,
        total_errors,
        total_shed,
        throughput: total_queries as f64 / wall_secs,
        shards: service.shard_count(),
        deltas_applied,
        batches_failed,
        swaps,
        epochs_observed: epochs_observed.unwrap_or((0, 0)),
    }
}
