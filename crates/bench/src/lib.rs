//! Shared infrastructure for the OCTOPUS benchmark harness: standard
//! workloads (one per experiment in `DESIGN.md` §6), a Monte-Carlo quality
//! referee, the serving-layer load generator (`exp_runner --serve`), and
//! plain-text table rendering for the `exp_runner` binary.

pub mod record;
pub mod referee;
pub mod serve_load;
pub mod table;
pub mod workloads;

pub use referee::Referee;
pub use table::Table;
