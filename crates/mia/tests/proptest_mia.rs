//! Property tests for the MIA engine: tree invariants, threshold
//! monotonicity, and exactness on path-unique graphs.

use octopus_graph::{EdgeProbs, GraphBuilder, NodeId, TopicGraph};
use octopus_mia::{mia_spread_set, mioa_spread, ArbDirection, Arborescence};
use proptest::prelude::*;

/// Random small single-topic graph.
fn arb_graph() -> impl Strategy<Value = (TopicGraph, EdgeProbs)> {
    (3usize..12).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32, 0.1f64..0.95), 1..n * 2).prop_map(
            move |edges| {
                let mut b = GraphBuilder::new(1);
                let _ = b.add_nodes(n);
                for (u, v, p) in edges {
                    if u != v {
                        b.add_edge(NodeId(u), NodeId(v), &[(0, p)]).unwrap();
                    }
                }
                let g = b.build().unwrap();
                let probs = g.materialize(&[1.0]).unwrap();
                (g, probs)
            },
        )
    })
}

/// Random tree (unique paths): node i>0 links from a random earlier parent.
fn arb_tree() -> impl Strategy<Value = (TopicGraph, EdgeProbs)> {
    (3usize..10).prop_flat_map(|n| {
        proptest::collection::vec((proptest::num::u32::ANY, 0.2f64..0.9), n - 1).prop_map(
            move |specs| {
                let mut b = GraphBuilder::new(1);
                let _ = b.add_nodes(n);
                for (i, &(r, p)) in specs.iter().enumerate() {
                    let child = (i + 1) as u32;
                    let parent = r % child;
                    b.add_edge(NodeId(parent), NodeId(child), &[(0, p)])
                        .unwrap();
                }
                let g = b.build().unwrap();
                let probs = g.materialize(&[1.0]).unwrap();
                (g, probs)
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Structural invariants: settle order sorted, parent links consistent,
    /// every path_prob within [θ, 1], root first.
    #[test]
    fn tree_invariants((g, p) in arb_graph(), theta in 0.01f64..0.5, root in 0u32..12) {
        let root = NodeId(root % g.node_count() as u32);
        for dir in [ArbDirection::Out, ArbDirection::In] {
            let arb = Arborescence::build(&g, &p, root, theta, dir);
            let nodes = arb.nodes();
            prop_assert_eq!(nodes[0].node, root);
            prop_assert_eq!(nodes[0].path_prob, 1.0);
            for w in nodes.windows(2) {
                prop_assert!(w[0].path_prob >= w[1].path_prob - 1e-12);
            }
            for (i, n) in nodes.iter().enumerate() {
                prop_assert!(n.path_prob >= theta - 1e-12 || n.parent.is_none());
                prop_assert!(n.path_prob <= 1.0 + 1e-12);
                if let Some(pi) = n.parent {
                    prop_assert!((pi as usize) < i, "parent settles before child");
                    let expect = nodes[pi as usize].path_prob * n.parent_edge_prob;
                    prop_assert!((n.path_prob - expect).abs() < 1e-9);
                    prop_assert!(nodes[pi as usize].children.contains(&(i as u32)));
                }
            }
        }
    }

    /// Lower θ admits a superset of nodes, and path probabilities of common
    /// nodes are identical (θ only prunes, never reroutes).
    #[test]
    fn theta_monotone((g, p) in arb_graph(), root in 0u32..12) {
        let root = NodeId(root % g.node_count() as u32);
        let loose = Arborescence::build(&g, &p, root, 0.02, ArbDirection::Out);
        let tight = Arborescence::build(&g, &p, root, 0.2, ArbDirection::Out);
        for n in tight.nodes() {
            prop_assert!(loose.contains(n.node));
            prop_assert!((loose.path_prob(n.node) - n.path_prob).abs() < 1e-9);
        }
        prop_assert!(loose.total_influence() >= tight.total_influence() - 1e-9);
    }

    /// MIOA path probability never exceeds the per-edge maximum along any
    /// single edge (path of length 1 bound).
    #[test]
    fn direct_neighbor_bound((g, p) in arb_graph(), root in 0u32..12) {
        let root = NodeId(root % g.node_count() as u32);
        let arb = Arborescence::build(&g, &p, root, 0.01, ArbDirection::Out);
        for (v, e) in g.out_edges(root) {
            if let Some(n) = arb.get(v) {
                // best path to a direct neighbor is at least the direct edge
                prop_assert!(n.path_prob >= p.get(e) as f64 - 1e-9);
            }
        }
    }

    /// On trees the MIA spread equals the exact IC spread (unique paths ⇒
    /// model is exact), validated against Monte-Carlo.
    #[test]
    fn exact_on_trees((g, p) in arb_tree()) {
        let mia = mioa_spread(&g, &p, NodeId(0), 1e-6);
        let mc = octopus_cascade::estimate_spread(&g, &p, &[NodeId(0)], 6000, 9);
        let slack = 0.1 * g.node_count() as f64;
        prop_assert!((mia - mc).abs() < slack.max(0.35), "mia={mia} mc={mc}");
    }

    /// Seed-set MIA spread: monotone in the seed set, ≥ |S| when all seeds
    /// distinct, ≤ n.
    #[test]
    fn set_spread_bounds((g, p) in arb_graph(), extra in 0u32..12) {
        let n = g.node_count();
        let s1 = vec![NodeId(0)];
        let s2 = vec![NodeId(0), NodeId(extra % n as u32)];
        let a = mia_spread_set(&g, &p, &s1, 0.05);
        let b = mia_spread_set(&g, &p, &s2, 0.05);
        prop_assert!(b >= a - 1e-9, "monotone: {a} -> {b}");
        prop_assert!(a >= 1.0 - 1e-9);
        prop_assert!(b <= n as f64 + 1e-9);
    }
}
