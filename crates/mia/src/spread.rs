//! MIA-model influence spread estimation.
//!
//! Under the MIA model, influence only travels along maximum-probability
//! paths, which makes spread computation *exact and deterministic* given the
//! trees — the reason Chen et al. \[4\] proposed it as a scalable stand-in
//! for Monte-Carlo estimation, and the reason OCTOPUS can size nodes in the
//! path visualization without sampling.

use crate::arborescence::{ArbDirection, Arborescence};
use octopus_graph::{EdgeProbs, NodeId, TopicGraph};

/// Single-seed MIA spread: `σ_MIA(u) = Σ_{v ∈ MIOA(u,θ)} pp(path u→v)`.
///
/// Includes the root itself (probability 1), matching `σ(S) ≥ |S|`.
pub fn mioa_spread(g: &TopicGraph, probs: &EdgeProbs, u: NodeId, theta: f64) -> f64 {
    Arborescence::build(g, probs, u, theta, ArbDirection::Out).total_influence()
}

/// Seed-set MIA spread: for every node `v` in any seed's MIOA, the
/// activation probability `ap(v | S)` is computed on `v`'s MIIA by the
/// standard bottom-up recursion
///
/// ```text
/// ap(x) = 1                                  if x ∈ S
/// ap(x) = 1 − Π_{w ∈ children(x)} (1 − ap(w) · pp(w → x))   otherwise
/// ```
///
/// and `σ_MIA(S) = Σ_v ap(v | S)`.
pub fn mia_spread_set(g: &TopicGraph, probs: &EdgeProbs, seeds: &[NodeId], theta: f64) -> f64 {
    if seeds.is_empty() {
        return 0.0;
    }
    // candidate targets: union of seed MIOAs
    let mut candidate = vec![false; g.node_count()];
    for &s in seeds {
        let arb = Arborescence::build(g, probs, s, theta, ArbDirection::Out);
        for n in arb.nodes() {
            candidate[n.node.index()] = true;
        }
    }
    let mut is_seed = vec![false; g.node_count()];
    for &s in seeds {
        is_seed[s.index()] = true;
    }

    let mut total = 0.0f64;
    for v in g.nodes().filter(|v| candidate[v.index()]) {
        if is_seed[v.index()] {
            total += 1.0;
            continue;
        }
        total += activation_probability(g, probs, v, &is_seed, theta);
    }
    total
}

/// `ap(v | S)` on `v`'s MIIA (bottom-up tree DP).
pub fn activation_probability(
    g: &TopicGraph,
    probs: &EdgeProbs,
    v: NodeId,
    is_seed: &[bool],
    theta: f64,
) -> f64 {
    let arb = Arborescence::build(g, probs, v, theta, ArbDirection::In);
    let nodes = arb.nodes();
    let mut ap = vec![0.0f64; nodes.len()];
    // settle order has parents before children, so a reverse scan is a
    // valid bottom-up order.
    for i in (0..nodes.len()).rev() {
        let n = &nodes[i];
        if is_seed[n.node.index()] {
            ap[i] = 1.0;
            continue;
        }
        if n.children.is_empty() {
            ap[i] = 0.0;
            continue;
        }
        let mut none_activates = 1.0f64;
        for &c in &n.children {
            let child = &nodes[c as usize];
            none_activates *= 1.0 - ap[c as usize] * child.parent_edge_prob;
        }
        ap[i] = 1.0 - none_activates;
    }
    ap[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_cascade::estimate_spread;
    use octopus_graph::GraphBuilder;

    /// 0 →.5 1, 0 →.5 2, 1 →.5 3, 2 →.5 3 (diamond).
    fn diamond() -> (TopicGraph, EdgeProbs) {
        let mut b = GraphBuilder::new(1);
        let _ = b.add_nodes(4);
        b.add_edge(NodeId(0), NodeId(1), &[(0, 0.5)]).unwrap();
        b.add_edge(NodeId(0), NodeId(2), &[(0, 0.5)]).unwrap();
        b.add_edge(NodeId(1), NodeId(3), &[(0, 0.5)]).unwrap();
        b.add_edge(NodeId(2), NodeId(3), &[(0, 0.5)]).unwrap();
        let g = b.build().unwrap();
        let p = g.materialize(&[1.0]).unwrap();
        (g, p)
    }

    #[test]
    fn single_seed_spread_on_chain_is_geometric() {
        let mut b = GraphBuilder::new(1);
        let _ = b.add_nodes(4);
        for i in 0..3u32 {
            b.add_edge(NodeId(i), NodeId(i + 1), &[(0, 0.5)]).unwrap();
        }
        let g = b.build().unwrap();
        let p = g.materialize(&[1.0]).unwrap();
        // chain has unique paths → MIA is exact: 1 + .5 + .25 + .125
        let s = mioa_spread(&g, &p, NodeId(0), 0.01);
        assert!((s - 1.875).abs() < 1e-6);
        // and equals MC on trees
        let mc = estimate_spread(&g, &p, &[NodeId(0)], 60_000, 3);
        assert!((s - mc).abs() < 0.05, "mia {s} vs mc {mc}");
    }

    #[test]
    fn mia_underestimates_on_diamond() {
        // MIA keeps only ONE path to node 3, so it undercounts vs MC
        let (g, p) = diamond();
        let mia = mioa_spread(&g, &p, NodeId(0), 0.01);
        let mc = estimate_spread(&g, &p, &[NodeId(0)], 60_000, 4);
        assert!(mia < mc, "mia {mia} must undercount mc {mc} on a diamond");
        // exact MIA: 1 + .5 + .5 + .25 = 2.25 (single best path to node 3)
        assert!((mia - 2.25).abs() < 1e-6);
    }

    #[test]
    fn set_spread_accounts_for_multiple_seeds() {
        let (g, p) = diamond();
        let single = mia_spread_set(&g, &p, &[NodeId(1)], 0.01);
        let both = mia_spread_set(&g, &p, &[NodeId(1), NodeId(2)], 0.01);
        // ap(3 | {1,2}) = 1 − (1−.5)(1−.5) = .75; total = 2 + .75
        assert!((both - 2.75).abs() < 1e-6, "both = {both}");
        assert!(both > single);
        // seeds count as 1 each
        assert!((single - 1.5).abs() < 1e-6);
    }

    #[test]
    fn set_spread_is_monotone_and_subadditive() {
        let (g, p) = diamond();
        let a = mia_spread_set(&g, &p, &[NodeId(0)], 0.01);
        let ab = mia_spread_set(&g, &p, &[NodeId(0), NodeId(3)], 0.01);
        let b_alone = mia_spread_set(&g, &p, &[NodeId(3)], 0.01);
        assert!(ab >= a - 1e-12);
        assert!(ab <= a + b_alone + 1e-12);
    }

    #[test]
    fn empty_seed_set_is_zero() {
        let (g, p) = diamond();
        assert_eq!(mia_spread_set(&g, &p, &[], 0.1), 0.0);
    }

    #[test]
    fn tighter_theta_never_increases_spread() {
        let (g, p) = diamond();
        let loose = mia_spread_set(&g, &p, &[NodeId(0)], 0.01);
        let tight = mia_spread_set(&g, &p, &[NodeId(0)], 0.3);
        assert!(tight <= loose + 1e-12, "tight {tight} loose {loose}");
    }

    #[test]
    fn activation_probability_of_seed_is_one() {
        let (g, p) = diamond();
        let mut is_seed = vec![false; 4];
        is_seed[3] = true;
        assert_eq!(
            activation_probability(&g, &p, NodeId(3), &is_seed, 0.01),
            1.0
        );
    }
}
