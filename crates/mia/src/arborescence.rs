//! Maximum-influence arborescence construction (Dijkstra on `−ln p`).

use octopus_graph::{EdgeProbs, NodeId, TopicGraph};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

/// Which side of the root the arborescence covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArbDirection {
    /// MIOA: best paths *from* the root (whom the root influences).
    Out,
    /// MIIA: best paths *to* the root (who influences the root).
    In,
}

/// One node of an arborescence.
#[derive(Debug, Clone, PartialEq)]
pub struct ArbNode {
    /// The graph node.
    pub node: NodeId,
    /// Index of the parent within the arborescence (`None` for the root).
    /// The parent is the next hop **toward the root**.
    pub parent: Option<u32>,
    /// Indices of children (nodes whose best path goes through this one).
    pub children: Vec<u32>,
    /// Probability of the edge connecting this node with its parent
    /// (1.0 for the root). For [`ArbDirection::Out`] this is the edge
    /// `parent → node`; for [`ArbDirection::In`], `node → parent`.
    pub parent_edge_prob: f64,
    /// Probability of the whole best path between root and this node.
    pub path_prob: f64,
    /// Hop distance from the root.
    pub depth: u32,
}

/// A maximum-influence arborescence rooted at some node, pruned at `θ`.
///
/// Nodes are stored in the order Dijkstra settled them (root first), so
/// `path_prob` is non-increasing along the node list — a property the tests
/// pin down.
#[derive(Debug, Clone, PartialEq)]
pub struct Arborescence {
    root: NodeId,
    direction: ArbDirection,
    theta: f64,
    nodes: Vec<ArbNode>,
    index: HashMap<NodeId, u32>,
}

/// Max-heap entry for Dijkstra over path probabilities.
struct Frontier {
    prob: f64,
    node: NodeId,
    parent: u32,
    edge_prob: f64,
    depth: u32,
}

impl PartialEq for Frontier {
    fn eq(&self, other: &Self) -> bool {
        self.prob == other.prob && self.node == other.node
    }
}
impl Eq for Frontier {}
impl PartialOrd for Frontier {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Frontier {
    fn cmp(&self, other: &Self) -> Ordering {
        self.prob
            .partial_cmp(&other.prob)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl Arborescence {
    /// Build the arborescence of `root` under materialized probabilities
    /// `probs`, keeping only nodes whose best-path probability is `≥ theta`.
    ///
    /// # Panics
    /// Panics if `theta` is not in `(0, 1]` — a zero threshold would admit
    /// the entire reachable component and defeat the model's purpose.
    pub fn build(
        g: &TopicGraph,
        probs: &EdgeProbs,
        root: NodeId,
        theta: f64,
        direction: ArbDirection,
    ) -> Self {
        assert!(
            theta > 0.0 && theta <= 1.0,
            "theta must be in (0, 1], got {theta}"
        );
        let mut nodes: Vec<ArbNode> = Vec::new();
        let mut index: HashMap<NodeId, u32> = HashMap::new();
        let mut best: HashMap<NodeId, f64> = HashMap::new();
        let mut heap: BinaryHeap<Frontier> = BinaryHeap::new();

        heap.push(Frontier {
            prob: 1.0,
            node: root,
            parent: u32::MAX,
            edge_prob: 1.0,
            depth: 0,
        });
        best.insert(root, 1.0);

        while let Some(f) = heap.pop() {
            if index.contains_key(&f.node) {
                continue; // already settled via a better path
            }
            let my_idx = nodes.len() as u32;
            index.insert(f.node, my_idx);
            let parent = if f.parent == u32::MAX {
                None
            } else {
                Some(f.parent)
            };
            if let Some(p) = parent {
                nodes[p as usize].children.push(my_idx);
            }
            nodes.push(ArbNode {
                node: f.node,
                parent,
                children: Vec::new(),
                parent_edge_prob: f.edge_prob,
                path_prob: f.prob,
                depth: f.depth,
            });

            // expand
            let neighbors: Box<dyn Iterator<Item = (NodeId, octopus_graph::EdgeId)>> =
                match direction {
                    ArbDirection::Out => Box::new(g.out_edges(f.node)),
                    ArbDirection::In => Box::new(g.in_edges(f.node)),
                };
            for (nb, e) in neighbors {
                if index.contains_key(&nb) {
                    continue;
                }
                let ep = probs.get(e) as f64;
                if ep <= 0.0 {
                    continue;
                }
                let np = f.prob * ep;
                if np < theta {
                    continue;
                }
                let entry = best.entry(nb).or_insert(0.0);
                if np > *entry {
                    *entry = np;
                    heap.push(Frontier {
                        prob: np,
                        node: nb,
                        parent: my_idx,
                        edge_prob: ep,
                        depth: f.depth + 1,
                    });
                }
            }
        }

        Arborescence {
            root,
            direction,
            theta,
            nodes,
            index,
        }
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Direction the tree was built in.
    pub fn direction(&self) -> ArbDirection {
        self.direction
    }

    /// The pruning threshold.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Number of nodes (≥ 1: the root is always present).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// An arborescence is never empty (root is always there).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// All nodes in settle order (root first, `path_prob` non-increasing).
    pub fn nodes(&self) -> &[ArbNode] {
        &self.nodes
    }

    /// Whether `u` made it into the tree.
    pub fn contains(&self, u: NodeId) -> bool {
        self.index.contains_key(&u)
    }

    /// The tree entry for `u`, if present.
    pub fn get(&self, u: NodeId) -> Option<&ArbNode> {
        self.index.get(&u).map(|&i| &self.nodes[i as usize])
    }

    /// Best-path probability between root and `u` (0 when pruned/absent).
    pub fn path_prob(&self, u: NodeId) -> f64 {
        self.get(u).map_or(0.0, |n| n.path_prob)
    }

    /// The best path between the root and `u`, always listed **from the
    /// root outward** (for [`ArbDirection::In`] the actual influence flows
    /// along the reversed list).
    pub fn path_to(&self, u: NodeId) -> Option<Vec<NodeId>> {
        let mut idx = *self.index.get(&u)?;
        let mut path = vec![self.nodes[idx as usize].node];
        while let Some(p) = self.nodes[idx as usize].parent {
            idx = p;
            path.push(self.nodes[idx as usize].node);
        }
        path.reverse();
        Some(path)
    }

    /// Sum of `path_prob` over all nodes — the MIA estimate of the root's
    /// influence (σ_MIA includes the root itself with probability 1).
    pub fn total_influence(&self) -> f64 {
        self.nodes.iter().map(|n| n.path_prob).sum()
    }

    /// Number of nodes in the subtree of `u` (including `u`).
    pub fn subtree_size(&self, u: NodeId) -> usize {
        let Some(&start) = self.index.get(&u) else {
            return 0;
        };
        let mut stack = vec![start];
        let mut count = 0usize;
        while let Some(i) = stack.pop() {
            count += 1;
            stack.extend(self.nodes[i as usize].children.iter().copied());
        }
        count
    }

    /// Rebuild the arborescence with every node id passed through `f`,
    /// preserving structure, probabilities, depths and settle order.
    ///
    /// Sharded serving computes explorations on shard-local subgraphs and
    /// lifts them back into global coordinates with this; `f` must be
    /// injective over the tree's nodes or the index will silently collapse
    /// duplicates.
    pub fn remap(&self, mut f: impl FnMut(NodeId) -> NodeId) -> Arborescence {
        let nodes: Vec<ArbNode> = self
            .nodes
            .iter()
            .map(|n| ArbNode {
                node: f(n.node),
                ..n.clone()
            })
            .collect();
        let index = nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.node, i as u32))
            .collect();
        Arborescence {
            root: nodes[0].node,
            direction: self.direction,
            theta: self.theta,
            nodes,
            index,
        }
    }

    /// Sum of `path_prob` over the subtree of `u`.
    pub fn subtree_mass(&self, u: NodeId) -> f64 {
        let Some(&start) = self.index.get(&u) else {
            return 0.0;
        };
        let mut stack = vec![start];
        let mut mass = 0.0f64;
        while let Some(i) = stack.pop() {
            mass += self.nodes[i as usize].path_prob;
            stack.extend(self.nodes[i as usize].children.iter().copied());
        }
        mass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_graph::GraphBuilder;

    /// 0 →.8 1 →.8 2 →.8 3 ; 0 →.3 3 ; 2 →.9 4
    fn sample() -> (TopicGraph, EdgeProbs) {
        let mut b = GraphBuilder::new(1);
        let _ = b.add_nodes(5);
        b.add_edge(NodeId(0), NodeId(1), &[(0, 0.8)]).unwrap();
        b.add_edge(NodeId(1), NodeId(2), &[(0, 0.8)]).unwrap();
        b.add_edge(NodeId(2), NodeId(3), &[(0, 0.8)]).unwrap();
        b.add_edge(NodeId(0), NodeId(3), &[(0, 0.3)]).unwrap();
        b.add_edge(NodeId(2), NodeId(4), &[(0, 0.9)]).unwrap();
        let g = b.build().unwrap();
        let p = g.materialize(&[1.0]).unwrap();
        (g, p)
    }

    #[test]
    fn mioa_prefers_max_probability_path() {
        let (g, p) = sample();
        let arb = Arborescence::build(&g, &p, NodeId(0), 0.01, ArbDirection::Out);
        // path to 3: direct 0.3 vs chain 0.8³ = 0.512 → chain wins
        assert!((arb.path_prob(NodeId(3)) - 0.512).abs() < 1e-6);
        assert_eq!(
            arb.path_to(NodeId(3)).unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
    }

    #[test]
    fn theta_prunes_weak_paths() {
        let (g, p) = sample();
        let arb = Arborescence::build(&g, &p, NodeId(0), 0.7, ArbDirection::Out);
        // only root (1.0) and node 1 (0.8) survive θ=0.7 — the 0.64 chain is pruned
        assert_eq!(arb.len(), 2);
        assert!(arb.contains(NodeId(1)));
        assert!(!arb.contains(NodeId(2)));
        assert_eq!(arb.path_prob(NodeId(2)), 0.0);
    }

    #[test]
    fn miia_follows_reverse_edges() {
        let (g, p) = sample();
        let arb = Arborescence::build(&g, &p, NodeId(3), 0.01, ArbDirection::In);
        assert!(arb.contains(NodeId(0)));
        // who influences 3 best: 2 directly (0.8); 0 via chain (0.512)
        assert!((arb.path_prob(NodeId(2)) - 0.8).abs() < 1e-6);
        assert!((arb.path_prob(NodeId(0)) - 0.512).abs() < 1e-6);
        // the path is reported root-outward: 3 ← 2 ← 1 ← 0
        assert_eq!(
            arb.path_to(NodeId(0)).unwrap(),
            vec![NodeId(3), NodeId(2), NodeId(1), NodeId(0)]
        );
    }

    #[test]
    fn settle_order_is_non_increasing_in_probability() {
        let (g, p) = sample();
        let arb = Arborescence::build(&g, &p, NodeId(0), 0.01, ArbDirection::Out);
        let probs: Vec<f64> = arb.nodes().iter().map(|n| n.path_prob).collect();
        for w in probs.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "settle order violated: {probs:?}");
        }
    }

    #[test]
    fn parent_child_links_are_consistent() {
        let (g, p) = sample();
        let arb = Arborescence::build(&g, &p, NodeId(0), 0.01, ArbDirection::Out);
        for (i, n) in arb.nodes().iter().enumerate() {
            if let Some(pi) = n.parent {
                assert!(arb.nodes()[pi as usize].children.contains(&(i as u32)));
                // path prob = parent path prob × edge prob
                let expect = arb.nodes()[pi as usize].path_prob * n.parent_edge_prob;
                assert!((n.path_prob - expect).abs() < 1e-12);
            } else {
                assert_eq!(n.node, NodeId(0));
                assert_eq!(n.path_prob, 1.0);
            }
        }
    }

    #[test]
    fn total_influence_and_subtrees() {
        let (g, p) = sample();
        let arb = Arborescence::build(&g, &p, NodeId(0), 0.01, ArbDirection::Out);
        // 1 + .8 + .64 + .512 + .576 (node 4 via 2: .64*.9)
        assert!((arb.total_influence() - (1.0 + 0.8 + 0.64 + 0.512 + 0.576)).abs() < 1e-6);
        assert_eq!(arb.subtree_size(NodeId(1)), 4);
        assert_eq!(arb.subtree_size(NodeId(4)), 1);
        assert!((arb.subtree_mass(NodeId(2)) - (0.64 + 0.512 + 0.576)).abs() < 1e-6);
    }

    #[test]
    fn isolated_root_is_singleton_tree() {
        let mut b = GraphBuilder::new(1);
        let _ = b.add_nodes(2);
        b.add_edge(NodeId(0), NodeId(1), &[(0, 0.5)]).unwrap();
        let g = b.build().unwrap();
        let p = g.materialize(&[1.0]).unwrap();
        let arb = Arborescence::build(&g, &p, NodeId(1), 0.1, ArbDirection::Out);
        assert_eq!(arb.len(), 1);
        assert_eq!(arb.total_influence(), 1.0);
        assert_eq!(arb.path_to(NodeId(0)), None);
    }

    #[test]
    fn remap_preserves_structure_under_id_translation() {
        let (g, p) = sample();
        let arb = Arborescence::build(&g, &p, NodeId(0), 0.01, ArbDirection::Out);
        let shift = |u: NodeId| NodeId(u.0 + 100);
        let lifted = arb.remap(shift);
        assert_eq!(lifted.root(), NodeId(100));
        assert_eq!(lifted.len(), arb.len());
        assert_eq!(lifted.theta(), arb.theta());
        for (a, b) in arb.nodes().iter().zip(lifted.nodes()) {
            assert_eq!(shift(a.node), b.node);
            assert_eq!(a.parent, b.parent);
            assert_eq!(a.children, b.children);
            assert_eq!(a.path_prob, b.path_prob);
            assert_eq!(a.depth, b.depth);
        }
        // lookups work in the new coordinate space
        assert_eq!(lifted.path_prob(NodeId(103)), arb.path_prob(NodeId(3)));
        assert_eq!(
            lifted.path_to(NodeId(103)).unwrap(),
            vec![NodeId(100), NodeId(101), NodeId(102), NodeId(103)]
        );
        assert!(!lifted.contains(NodeId(0)));
    }

    #[test]
    #[should_panic(expected = "theta must be in")]
    fn zero_theta_rejected() {
        let (g, p) = sample();
        let _ = Arborescence::build(&g, &p, NodeId(0), 0.0, ArbDirection::Out);
    }
}
