//! # octopus-mia
//!
//! The Maximum Influence Arborescence (MIA) engine \[Chen, Wang, Wang,
//! KDD'10 — reference 4 of the paper\] behind OCTOPUS's influential-path
//! visualization and exploration (§II-E).
//!
//! The MIA model restricts influence between two users to the single most
//! probable path between them. For a root `u`:
//!
//! * the **MIOA** (out-arborescence) collects the best `u → v` paths —
//!   "whom does `u` influence, and how";
//! * the **MIIA** (in-arborescence) collects the best `v → u` paths — "who
//!   influences `u`";
//! * paths whose probability falls below a threshold `θ` are pruned,
//!   trading completeness for interactive latency (the knob experiment E3
//!   sweeps).
//!
//! On top of the arborescences this crate provides the path-exploration
//! services the UI consumes ([`paths`]) — root-to-node chains, per-node
//! highlights, influence clusters — plus the d3-compatible JSON export
//! ([`json`]) and MIA-based spread estimation ([`spread`]) used both for
//! visual node sizing and as a fast spread oracle.

#![warn(missing_docs)]

pub mod arborescence;
pub mod json;
pub mod paths;
pub mod spread;

pub use arborescence::{ArbDirection, ArbNode, Arborescence};
pub use paths::{Cluster, InfluencePath, PathExplorer};
pub use spread::{mia_spread_set, mioa_spread};
