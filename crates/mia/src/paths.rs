//! Influential-path exploration services (Scenario 3).
//!
//! The OCTOPUS UI visualizes a researcher's MIOA, sizes nodes by influence
//! effect, highlights the paths through a clicked node, and lets the user
//! spot "clusters" — the distinct communities the root influences. This
//! module computes all of that from an [`Arborescence`].

use crate::arborescence::Arborescence;
use octopus_graph::NodeId;

/// One influential path with its MIA probability.
#[derive(Debug, Clone, PartialEq)]
pub struct InfluencePath {
    /// Path nodes, starting at the arborescence root.
    pub nodes: Vec<NodeId>,
    /// Product of edge probabilities along the path.
    pub prob: f64,
}

/// A cluster of influenced users: one subtree hanging off the root.
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    /// The root's child heading this subtree.
    pub head: NodeId,
    /// Number of users in the subtree.
    pub size: usize,
    /// Total influence mass (Σ path probabilities) of the subtree.
    pub mass: f64,
    /// All subtree members (head first, BFS order).
    pub members: Vec<NodeId>,
}

/// Exploration facade over an arborescence.
#[derive(Debug, Clone)]
pub struct PathExplorer<'a> {
    arb: &'a Arborescence,
}

impl<'a> PathExplorer<'a> {
    /// Wrap an arborescence.
    pub fn new(arb: &'a Arborescence) -> Self {
        PathExplorer { arb }
    }

    /// The `k` most probable influence paths (to distinct endpoints,
    /// root excluded), strongest first.
    pub fn top_paths(&self, k: usize) -> Vec<InfluencePath> {
        // settle order is already sorted by descending path_prob
        self.arb
            .nodes()
            .iter()
            .skip(1)
            .take(k)
            .map(|n| InfluencePath {
                nodes: self.arb.path_to(n.node).expect("tree member has a path"),
                prob: n.path_prob,
            })
            .collect()
    }

    /// All maximal paths passing through `via` (the click-to-highlight
    /// interaction): the root→via prefix extended to every leaf below
    /// `via`. Returns just the root→via path when `via` is a leaf; empty
    /// when `via` is absent from the tree.
    pub fn paths_through(&self, via: NodeId) -> Vec<InfluencePath> {
        let Some(via_node) = self.arb.get(via) else {
            return Vec::new();
        };
        if via_node.children.is_empty() {
            return vec![InfluencePath {
                nodes: self.arb.path_to(via).expect("member"),
                prob: via_node.path_prob,
            }];
        }
        // collect leaves under `via`
        let nodes = self.arb.nodes();
        let via_idx = nodes
            .iter()
            .position(|n| n.node == via)
            .expect("checked membership above") as u32;
        let mut leaves = Vec::new();
        let mut stack = vec![via_idx];
        while let Some(i) = stack.pop() {
            let n = &nodes[i as usize];
            if n.children.is_empty() {
                leaves.push(i);
            } else {
                stack.extend(n.children.iter().copied());
            }
        }
        let mut out: Vec<InfluencePath> = leaves
            .into_iter()
            .map(|leaf| {
                let n = &nodes[leaf as usize];
                InfluencePath {
                    nodes: self.arb.path_to(n.node).expect("member"),
                    prob: n.path_prob,
                }
            })
            .collect();
        out.sort_by(|a, b| b.prob.partial_cmp(&a.prob).expect("finite probs"));
        out
    }

    /// The influence clusters: one per root child, sorted by descending
    /// mass. "The influenced users roughly form some clusters, which may
    /// represent different groups influenced by [the root]."
    pub fn clusters(&self) -> Vec<Cluster> {
        let nodes = self.arb.nodes();
        let root = &nodes[0];
        let mut out = Vec::with_capacity(root.children.len());
        for &c in &root.children {
            let head = nodes[c as usize].node;
            let mut members = Vec::new();
            let mut queue = std::collections::VecDeque::from([c]);
            let mut mass = 0.0;
            while let Some(i) = queue.pop_front() {
                let n = &nodes[i as usize];
                members.push(n.node);
                mass += n.path_prob;
                queue.extend(n.children.iter().copied());
            }
            out.push(Cluster {
                head,
                size: members.len(),
                mass,
                members,
            });
        }
        out.sort_by(|a, b| b.mass.partial_cmp(&a.mass).expect("finite mass"));
        out
    }

    /// Visualization node sizes: `(node, effect)` where effect is the MIA
    /// subtree mass — hubs that relay influence get big glyphs.
    pub fn node_sizes(&self) -> Vec<(NodeId, f64)> {
        self.arb
            .nodes()
            .iter()
            .map(|n| (n.node, self.arb.subtree_mass(n.node)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arborescence::ArbDirection;
    use octopus_graph::{EdgeProbs, GraphBuilder, TopicGraph};

    /// root 0 with two "communities": {1,2,3} via 1, {4,5} via 4.
    fn two_communities() -> (TopicGraph, EdgeProbs) {
        let mut b = GraphBuilder::new(1);
        let _ = b.add_nodes(6);
        b.add_edge(NodeId(0), NodeId(1), &[(0, 0.9)]).unwrap();
        b.add_edge(NodeId(1), NodeId(2), &[(0, 0.8)]).unwrap();
        b.add_edge(NodeId(1), NodeId(3), &[(0, 0.7)]).unwrap();
        b.add_edge(NodeId(0), NodeId(4), &[(0, 0.6)]).unwrap();
        b.add_edge(NodeId(4), NodeId(5), &[(0, 0.5)]).unwrap();
        let g = b.build().unwrap();
        let p = g.materialize(&[1.0]).unwrap();
        (g, p)
    }

    fn arb() -> Arborescence {
        let (g, p) = two_communities();
        Arborescence::build(&g, &p, NodeId(0), 0.01, ArbDirection::Out)
    }

    #[test]
    fn top_paths_sorted_by_probability() {
        let a = arb();
        let ex = PathExplorer::new(&a);
        let paths = ex.top_paths(3);
        assert_eq!(paths.len(), 3);
        assert_eq!(paths[0].nodes, vec![NodeId(0), NodeId(1)]);
        assert!((paths[0].prob - 0.9).abs() < 1e-6);
        for w in paths.windows(2) {
            assert!(w[0].prob >= w[1].prob);
        }
    }

    #[test]
    fn paths_through_interior_node_reach_all_leaves() {
        let a = arb();
        let ex = PathExplorer::new(&a);
        let through1 = ex.paths_through(NodeId(1));
        assert_eq!(through1.len(), 2); // to 2 and to 3
        assert!(through1.iter().all(|p| p.nodes.contains(&NodeId(1))));
        // strongest first: 0→1→2 (0.72) over 0→1→3 (0.63)
        assert_eq!(*through1[0].nodes.last().unwrap(), NodeId(2));
    }

    #[test]
    fn paths_through_leaf_is_single_path() {
        let a = arb();
        let ex = PathExplorer::new(&a);
        let through5 = ex.paths_through(NodeId(5));
        assert_eq!(through5.len(), 1);
        assert_eq!(through5[0].nodes, vec![NodeId(0), NodeId(4), NodeId(5)]);
        assert!((through5[0].prob - 0.3).abs() < 1e-6);
    }

    #[test]
    fn paths_through_absent_node_is_empty() {
        let a = arb();
        let ex = PathExplorer::new(&a);
        // rebuild with tight theta so node 5 is pruned
        let (g, p) = two_communities();
        let tight = Arborescence::build(&g, &p, NodeId(0), 0.5, ArbDirection::Out);
        assert!(PathExplorer::new(&tight)
            .paths_through(NodeId(5))
            .is_empty());
        assert!(!ex.paths_through(NodeId(5)).is_empty());
    }

    #[test]
    fn clusters_split_by_root_children() {
        let a = arb();
        let ex = PathExplorer::new(&a);
        let clusters = ex.clusters();
        assert_eq!(clusters.len(), 2);
        // community via 1 has more mass (.9 + .72 + .63) than via 4 (.6 + .3)
        assert_eq!(clusters[0].head, NodeId(1));
        assert_eq!(clusters[0].size, 3);
        assert_eq!(clusters[1].head, NodeId(4));
        assert!((clusters[0].mass - 2.25).abs() < 1e-6);
        assert!(clusters[0].members.contains(&NodeId(3)));
    }

    #[test]
    fn node_sizes_decrease_down_the_tree() {
        let a = arb();
        let ex = PathExplorer::new(&a);
        let sizes: std::collections::HashMap<NodeId, f64> = ex.node_sizes().into_iter().collect();
        assert!(sizes[&NodeId(0)] > sizes[&NodeId(1)]);
        assert!(sizes[&NodeId(1)] > sizes[&NodeId(2)]);
    }
}
