//! Minimal JSON writer + d3-hierarchy export.
//!
//! OCTOPUS "utilize\[s\] d3js to visualize the paths and interact with the
//! end-users" (§II-E). d3's hierarchy layouts consume
//! `{"name": …, "children": […]}` trees; [`arborescence_to_d3`] emits
//! exactly that, with per-node influence attributes. The writer is
//! hand-rolled (~60 lines) rather than pulling `serde_json`, which is
//! outside the approved dependency set — see DESIGN.md §7.

use crate::arborescence::Arborescence;
use octopus_graph::TopicGraph;

/// Escape a string per RFC 8259.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A tiny JSON value builder sufficient for the export needs of this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// JSON null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Finite number (non-finite serializes as null, like d3 expects).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object (insertion-ordered).
    Obj(Vec<(String, Json)>),
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

impl Json {
    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        out.push_str(&format!("{}", *x as i64));
                    } else {
                        out.push_str(&format!("{x}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Export an arborescence as a d3 hierarchy:
/// `{"name", "id", "prob", "depth", "effect", "children": […]}`.
///
/// `name` falls back to the numeric id when the graph is anonymous;
/// `effect` is the subtree influence mass (drives node sizing in the UI).
pub fn arborescence_to_d3(g: &TopicGraph, arb: &Arborescence) -> Json {
    arborescence_to_d3_with(arb, |u| g.name(u).map(str::to_string))
}

/// Like [`arborescence_to_d3`], but names resolve through an arbitrary
/// lookup instead of one `TopicGraph` — for arborescences whose node ids
/// live in a different coordinate space than any single graph (a sharded
/// serving layer lifting a shard-local tree back to global ids renders
/// through this, resolving names via its shard mapping).
pub fn arborescence_to_d3_with(
    arb: &Arborescence,
    name_of: impl Fn(octopus_graph::NodeId) -> Option<String>,
) -> Json {
    fn build(
        name_of: &impl Fn(octopus_graph::NodeId) -> Option<String>,
        arb: &Arborescence,
        idx: u32,
    ) -> Json {
        let n = &arb.nodes()[idx as usize];
        let name = name_of(n.node).unwrap_or_else(|| format!("{}", n.node.0));
        let mut fields = vec![
            ("name".to_string(), Json::Str(name)),
            ("id".to_string(), Json::Num(n.node.0 as f64)),
            ("prob".to_string(), Json::Num(n.path_prob)),
            ("depth".to_string(), Json::Num(n.depth as f64)),
            ("effect".to_string(), Json::Num(arb.subtree_mass(n.node))),
        ];
        if !n.children.is_empty() {
            let children: Vec<Json> = n.children.iter().map(|&c| build(name_of, arb, c)).collect();
            fields.push(("children".to_string(), Json::Arr(children)));
        }
        Json::Obj(fields)
    }
    build(&name_of, arb, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arborescence::ArbDirection;
    use octopus_graph::{GraphBuilder, NodeId};

    #[test]
    fn escaping() {
        assert_eq!(escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn value_serialization() {
        let v = Json::Obj(vec![
            ("a".into(), Json::Num(1.0)),
            ("b".into(), Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("c".into(), Json::Str("x\"y".into())),
            ("d".into(), Json::Num(0.25)),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"a":1,"b":[true,null],"c":"x\"y","d":0.25}"#
        );
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn d3_export_shape() {
        let mut b = GraphBuilder::new(1);
        let u = b.add_node("ada");
        let v = b.add_node("grace");
        let w = b.add_node("alan");
        b.add_edge(u, v, &[(0, 0.8)]).unwrap();
        b.add_edge(v, w, &[(0, 0.5)]).unwrap();
        let g = b.build().unwrap();
        let p = g.materialize(&[1.0]).unwrap();
        let arb = Arborescence::build(&g, &p, NodeId(0), 0.01, ArbDirection::Out);
        let json = arborescence_to_d3(&g, &arb).to_string();
        assert!(json.contains(r#""name":"ada""#));
        assert!(json.contains(r#""children":[{"#));
        assert!(json.contains(r#""prob":0.8"#));
        // nested child "alan" inside "grace"
        let grace_pos = json.find("grace").unwrap();
        let alan_pos = json.find("alan").unwrap();
        assert!(alan_pos > grace_pos);
    }

    #[test]
    fn anonymous_nodes_use_numeric_names() {
        let mut b = GraphBuilder::new(1);
        let _ = b.add_nodes(2);
        b.add_edge(NodeId(0), NodeId(1), &[(0, 0.9)]).unwrap();
        let g = b.build().unwrap();
        let p = g.materialize(&[1.0]).unwrap();
        let arb = Arborescence::build(&g, &p, NodeId(0), 0.01, ArbDirection::Out);
        let json = arborescence_to_d3(&g, &arb).to_string();
        assert!(json.contains(r#""name":"0""#));
    }
}
