//! # octopus
//!
//! An online topic-aware influence analysis system for social networks — a
//! full Rust reproduction of OCTOPUS (Fan et al., ICDE 2018).
//!
//! This facade crate re-exports the whole workspace under one roof:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`graph`] | `octopus-graph` | topic-weighted CSR social graph |
//! | [`topics`] | `octopus-topics` | `p(w\|z)` model, Bayesian keyword→topic inference, radar charts |
//! | [`data`] | `octopus-data` | synthetic network generators, AMiner loader, TIC EM learner |
//! | [`cascade`] | `octopus-cascade` | IC simulation, RR sets, CELF, OPIM |
//! | [`mia`] | `octopus-mia` | maximum influence arborescences, path exploration, d3 export |
//! | [`core`] | `octopus-core` | keyword IM engines, keyword suggestion, the [`Octopus`] facade |
//!
//! ## Quickstart
//!
//! ```
//! use octopus::data::CitationConfig;
//! use octopus::core::engine::{Octopus, OctopusConfig};
//!
//! // A small synthetic citation network with ground truth.
//! let net = CitationConfig {
//!     authors: 100, papers: 200, num_topics: 4, words_per_topic: 12,
//!     ..Default::default()
//! }.generate();
//!
//! let engine = Octopus::new(net.graph, net.model, OctopusConfig::default()).unwrap();
//! let answer = engine.find_influencers("data mining", 3).unwrap();
//! assert_eq!(answer.seeds.len(), 3);
//! ```

pub use octopus_cascade as cascade;
pub use octopus_core as core;
pub use octopus_data as data;
pub use octopus_graph as graph;
pub use octopus_mia as mia;
pub use octopus_topics as topics;

pub use octopus_core::engine::{KimAnswer, KimEngineChoice, Octopus, OctopusConfig, SuggestAnswer};
pub use octopus_graph::{EdgeId, NodeId, TopicGraph};
pub use octopus_topics::{KeywordId, TopicDistribution, TopicModel, Vocabulary};
