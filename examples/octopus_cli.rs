//! Interactive OCTOPUS console — the closest library analogue of the demo's
//! web UI. Type keyword queries and user names; get influencers, selling
//! points, and influence paths.
//!
//! ```bash
//! cargo run --release --example octopus_cli
//! ```
//!
//! Commands:
//!
//! ```text
//! find <keywords...>        influential users for a keyword query (k=10)
//! suggest <user name>       the user's most influential keywords
//! paths <user name>         whom the user influences (MIA exploration)
//! rpaths <user name>        who influences the user
//! radar <keyword>           topic radar of one keyword
//! related <keyword>         topically related keywords
//! curve <keywords...>       influence-vs-budget curve (k = 1..10)
//! complete <prefix>         name auto-completion
//! report                    engine system report
//! save <file>               persist the dataset (graph+model+log)
//! help | quit
//! ```

use octopus::core::engine::{Octopus, OctopusConfig};
use octopus::core::paths::ExploreDirection;
use octopus::data::{store, CitationConfig, Dataset};
use octopus::KeywordId;
use std::collections::HashMap;
use std::io::{BufRead, Write};

fn main() {
    println!("OCTOPUS console — generating demo citation network…");
    let net = CitationConfig {
        authors: 600,
        papers: 1500,
        num_topics: 8,
        words_per_topic: 16,
        seed: 2018,
        ..Default::default()
    }
    .generate();
    let mut user_keywords: HashMap<octopus::NodeId, Vec<KeywordId>> = HashMap::new();
    for item in net.log.items() {
        let e = user_keywords.entry(item.origin).or_default();
        for &w in &item.keywords {
            if !e.contains(&w) {
                e.push(w);
            }
        }
    }
    let dataset = Dataset {
        graph: net.graph.clone(),
        model: net.model.clone(),
        log: Some(net.log.clone()),
    };
    let engine = Octopus::new(net.graph, net.model, OctopusConfig::default())
        .expect("engine builds")
        .with_user_keywords(user_keywords);
    println!(
        "ready: {} researchers, {} edges, {} keywords. Type `help` for commands.",
        engine.graph().node_count(),
        engine.graph().edge_count(),
        engine.model().vocab_size()
    );

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("octopus> ");
        out.flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break; // EOF
        }
        let line = line.trim();
        let (cmd, rest) = line.split_once(' ').unwrap_or((line, ""));
        match cmd {
            "" => {}
            "quit" | "exit" => break,
            "help" => {
                println!("find <kw…> | suggest <name> | paths <name> | rpaths <name>");
                println!("radar <kw> | related <kw> | curve <kw…> | complete <prefix>");
                println!("report | save <file> | quit");
            }
            "find" => match engine.find_influencers(rest, 10) {
                Ok(a) => {
                    for s in &a.seeds {
                        println!("  #{:<2} {}", s.rank + 1, s.name);
                    }
                    println!("  (spread≈{:.1}, {:?})", a.result.spread, a.elapsed);
                }
                Err(e) => println!("  error: {e}"),
            },
            "suggest" => match engine.suggest_keywords(rest, 3) {
                Ok(a) => {
                    println!("  selling points of {}: {:?}", a.user_name, a.words);
                    print!("{}", a.radar.ascii());
                }
                Err(e) => println!("  error: {e}"),
            },
            "paths" | "rpaths" => {
                let dir = if cmd == "paths" {
                    ExploreDirection::Influences
                } else {
                    ExploreDirection::InfluencedBy
                };
                match engine.explore_paths(rest, dir, None) {
                    Ok(ex) => {
                        println!(
                            "  {} reaches {} users (mass {:.1}), {} clusters",
                            ex.root_name,
                            ex.reached - 1,
                            ex.influence,
                            ex.clusters.len()
                        );
                        for p in ex.top_paths.iter().take(5) {
                            let names: Vec<&str> = p
                                .nodes
                                .iter()
                                .map(|&n| engine.graph().name(n).unwrap_or("?"))
                                .collect();
                            println!("    {:.3}  {}", p.prob, names.join(" -> "));
                        }
                    }
                    Err(e) => println!("  error: {e}"),
                }
            }
            "radar" => match engine.keyword_radar(rest) {
                Ok(r) => print!("{}", r.ascii()),
                Err(e) => println!("  error: {e}"),
            },
            "related" => match engine.related_keywords(rest, 6) {
                Ok(rel) => {
                    for (w, score) in rel {
                        println!("  {w}  ({score:.2})");
                    }
                }
                Err(e) => println!("  error: {e}"),
            },
            "curve" => match engine.model().infer_str(rest) {
                Ok(gamma) => match engine.influence_curve(&gamma, 10) {
                    Ok(curve) => {
                        for (k, spread) in curve {
                            let bar = "█".repeat((spread / 2.0).round() as usize);
                            println!("  k={k:<3} {spread:>8.1} {bar}");
                        }
                    }
                    Err(e) => println!("  error: {e}"),
                },
                Err(e) => println!("  error: {e}"),
            },
            "report" => {
                let r = engine.system_report();
                println!("  {r:#?}");
            }
            "complete" => {
                for (_, name, score) in engine.autocomplete(rest, 8) {
                    println!("  {name}  (influence score {score:.0})");
                }
            }
            "save" => {
                let path = std::path::Path::new(rest.trim());
                match store::save(&dataset, path) {
                    Ok(()) => println!("  saved dataset to {}", path.display()),
                    Err(e) => println!("  error: {e}"),
                }
            }
            other => println!("  unknown command {other:?}; try `help`"),
        }
    }
    println!("bye.");
}
