//! Quickstart: generate a synthetic citation network, build the OCTOPUS
//! engine, and run all three analysis services once.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use octopus::core::engine::{Octopus, OctopusConfig};
use octopus::core::paths::ExploreDirection;
use octopus::data::CitationConfig;

fn main() {
    // 1. A small ACMCite-like network with planted ground truth.
    println!("== generating citation network ==");
    let net = CitationConfig {
        authors: 400,
        papers: 900,
        num_topics: 6,
        words_per_topic: 16,
        seed: 42,
        ..Default::default()
    }
    .generate();
    println!(
        "graph: {} researchers, {} influence edges, {} topics; log: {} papers, {} trials",
        net.graph.node_count(),
        net.graph.edge_count(),
        net.graph.num_topics(),
        net.log.item_count(),
        net.log.trial_count()
    );

    // 2. Build the engine (offline phase: bound tables, influencer index…).
    let config = OctopusConfig {
        piks_index_size: 1024,
        ..Default::default()
    };
    let engine = Octopus::new(net.graph, net.model, config).expect("engine builds");

    // 3. Scenario 1 — keyword-based influential user discovery.
    println!("\n== scenario 1: influencers for \"data mining\" ==");
    let ans = engine
        .find_influencers("data mining", 5)
        .expect("query succeeds");
    for seed in &ans.seeds {
        println!("  #{:<2} {}", seed.rank + 1, seed.name);
    }
    println!(
        "  spread≈{:.1}, {} exact evals, {} pruned, {:?}",
        ans.result.spread,
        ans.result.stats.exact_evaluations,
        ans.result.stats.pruned_candidates,
        ans.elapsed
    );

    // 4. Scenario 2 — personalized influential keywords ("selling points").
    let target = ans.seeds[0].name.clone();
    println!("\n== scenario 2: selling points of {target} ==");
    let sugg = engine
        .suggest_keywords(&target, 3)
        .expect("suggestion succeeds");
    println!("  keywords: {:?}", sugg.words);
    println!(
        "  spread≈{:.1}, consistency {:.2}",
        sugg.result.spread, sugg.result.consistency
    );
    println!("{}", sugg.radar.ascii());

    // 5. Scenario 3 — influential path exploration.
    println!("== scenario 3: how {target} influences the community ==");
    let ex = engine
        .explore_paths(&target, ExploreDirection::Influences, Some("data mining"))
        .expect("exploration succeeds");
    println!(
        "  reaches {} researchers (influence mass {:.1}), {} clusters",
        ex.reached,
        ex.influence,
        ex.clusters.len()
    );
    for (i, c) in ex.clusters.iter().take(3).enumerate() {
        let head = engine.graph().name(c.head).unwrap_or("?");
        println!(
            "  cluster {}: via {head}, {} users, mass {:.2}",
            i + 1,
            c.size,
            c.mass
        );
    }
    println!(
        "  d3 JSON: {} bytes (feed to any d3 hierarchy layout)",
        ex.d3_json.len()
    );
}
