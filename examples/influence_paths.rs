//! Scenario 3 at depth: interactive influential-path exploration — MIA
//! trees in both directions, the click-to-highlight interaction, cluster
//! analysis across thresholds, and the d3 JSON export written to disk.
//!
//! ```bash
//! cargo run --release --example influence_paths
//! ```

use octopus::core::engine::{Octopus, OctopusConfig};
use octopus::core::paths::{highlight_json, ExploreDirection};
use octopus::data::CitationConfig;
use octopus::mia::{ArbDirection, Arborescence, PathExplorer};

fn main() {
    let net = CitationConfig {
        authors: 600,
        papers: 1500,
        num_topics: 6,
        words_per_topic: 14,
        seed: 23,
        ..Default::default()
    }
    .generate();
    let engine = Octopus::new(
        net.graph.clone(),
        net.model.clone(),
        OctopusConfig {
            piks_index_size: 256,
            ..Default::default()
        },
    )
    .expect("engine builds");

    // Most influential researcher in social networks as the demo root.
    let ans = engine
        .find_influencers("influence maximization", 1)
        .expect("query succeeds");
    let root_name = ans.seeds[0].name.clone();
    println!("exploring how {root_name} influences the community\n");

    // Forward exploration (whom do they influence).
    let ex = engine
        .explore_paths(
            &root_name,
            ExploreDirection::Influences,
            Some("influence maximization"),
        )
        .expect("exploration succeeds");
    println!("== forward (MIOA), θ = {} ==", ex.theta);
    println!(
        "  reached {} researchers, influence mass {:.1}",
        ex.reached, ex.influence
    );
    for (i, c) in ex.clusters.iter().take(4).enumerate() {
        println!(
            "  cluster {}: via {:24} size {:3}  mass {:.2}",
            i + 1,
            engine.graph().name(c.head).unwrap_or("?"),
            c.size,
            c.mass
        );
    }
    println!("  strongest paths:");
    for p in ex.top_paths.iter().take(5) {
        let names: Vec<&str> = p
            .nodes
            .iter()
            .map(|&n| engine.graph().name(n).unwrap_or("?"))
            .collect();
        println!("    {:.3}  {}", p.prob, names.join(" -> "));
    }

    // The click interaction: highlight all paths through the top cluster head.
    if let Some(c) = ex.clusters.first() {
        let json = highlight_json(&ex, c.head);
        println!(
            "\n  click on {:?} -> {} highlighted paths ({} bytes of JSON)",
            engine.graph().name(c.head).unwrap_or("?"),
            json.matches("\"prob\"").count(),
            json.len()
        );
    }

    // Reverse exploration (who influences them).
    let leaf = ex
        .clusters
        .first()
        .map(|c| *c.members.last().expect("non-empty cluster"));
    if let Some(leaf) = leaf {
        let leaf_name = engine.graph().name(leaf).unwrap_or("?").to_string();
        let rev = engine
            .explore_paths(&leaf_name, ExploreDirection::InfluencedBy, None)
            .expect("reverse exploration succeeds");
        println!("\n== reverse (MIIA) for {leaf_name} ==");
        println!("  influenced by {} researchers", rev.reached - 1);
        for p in rev.top_paths.iter().take(3) {
            let names: Vec<&str> = p
                .nodes
                .iter()
                .map(|&n| engine.graph().name(n).unwrap_or("?"))
                .collect();
            println!("    {:.3}  {}", p.prob, names.join(" <- "));
        }
    }

    // Threshold sweep: the interactivity knob.
    println!("\n== θ sweep (tree size / build cost trade-off) ==");
    let root = ans.seeds[0].node;
    let gamma = ans.gamma.clone();
    let probs = engine
        .graph()
        .materialize(gamma.as_slice())
        .expect("dims fine");
    for theta in [0.1, 0.03, 0.01, 0.003, 0.001] {
        let t0 = std::time::Instant::now();
        let arb = Arborescence::build(engine.graph(), &probs, root, theta, ArbDirection::Out);
        let dt = t0.elapsed();
        let explorer = PathExplorer::new(&arb);
        println!(
            "  θ={theta:<6} nodes={:<5} influence={:<8.2} clusters={:<3} build={dt:?}",
            arb.len(),
            arb.total_influence(),
            explorer.clusters().len()
        );
    }

    // d3 export for the front-end.
    let out = std::env::temp_dir().join("octopus_paths.json");
    std::fs::write(&out, &ex.d3_json).expect("write json");
    println!("\nd3 hierarchy written to {}", out.display());
}
