//! Scenario 2 at depth: personalized influential keyword suggestion — "the
//! selling points" of researchers — with radar-chart interpretation and a
//! greedy-vs-exhaustive quality check.
//!
//! ```bash
//! cargo run --release --example selling_points
//! ```

use octopus::core::engine::{Octopus, OctopusConfig};
use octopus::core::piks::{ExhaustivePiks, GreedyPiks, InfluencerIndex, PiksConfig};
use octopus::data::CitationConfig;
use octopus::KeywordId;
use std::collections::HashMap;

fn main() {
    let net = CitationConfig {
        authors: 500,
        papers: 1200,
        num_topics: 6,
        words_per_topic: 14,
        seed: 17,
        ..Default::default()
    }
    .generate();

    // Per-user candidates from the action log (paper titles), as OCTOPUS does.
    let mut user_keywords: HashMap<octopus::NodeId, Vec<KeywordId>> = HashMap::new();
    for item in net.log.items() {
        let entry = user_keywords.entry(item.origin).or_default();
        for &w in &item.keywords {
            if !entry.contains(&w) {
                entry.push(w);
            }
        }
    }

    let engine = Octopus::new(
        net.graph.clone(),
        net.model.clone(),
        OctopusConfig {
            piks_index_size: 2048,
            ..Default::default()
        },
    )
    .expect("engine builds")
    .with_user_keywords(user_keywords.clone());

    // pick the three most prolific researchers as targets
    let mut prolific: Vec<(octopus::NodeId, usize)> =
        user_keywords.iter().map(|(&u, ws)| (u, ws.len())).collect();
    prolific.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    for &(target, n_kw) in prolific.iter().take(3) {
        let name = engine.graph().name(target).unwrap_or("?").to_string();
        println!("\n== selling points of {name} ({n_kw} candidate keywords) ==");
        match engine.suggest_keywords_for(target, 3) {
            Ok(ans) => {
                println!("  suggested: {:?}", ans.words);
                println!(
                    "  spread≈{:.1}  consistency {:.2}  ({} evals, {} skipped, {:?})",
                    ans.result.spread,
                    ans.result.consistency,
                    ans.result.stats.evaluations,
                    ans.result.stats.skipped,
                    ans.elapsed
                );
                println!("{}", ans.radar.ascii());
            }
            Err(e) => println!("  error: {e}"),
        }
    }

    // Greedy vs exhaustive on a pruned candidate pool (the oracle check).
    println!("== greedy vs exhaustive (k=2, pool capped at 8) ==");
    let index = InfluencerIndex::build(&net.graph, 2048, 99);
    let cfg = PiksConfig::default();
    let greedy = GreedyPiks::new(&net.graph, &net.model, &index, cfg.clone());
    let exact = ExhaustivePiks::new(&net.graph, &net.model, &index, cfg);
    let mut ratios = Vec::new();
    for &(target, _) in prolific.iter().take(5) {
        let pool: Vec<KeywordId> = user_keywords[&target].iter().copied().take(8).collect();
        if pool.len() < 2 {
            continue;
        }
        let (Ok(g), Ok(e)) = (
            greedy.suggest(target, &pool, 2),
            exact.suggest(target, &pool, 2),
        ) else {
            continue;
        };
        let ratio = if e.spread > 0.0 {
            g.spread / e.spread
        } else {
            1.0
        };
        ratios.push(ratio);
        println!(
            "  {:24} greedy {:>6.2} vs exhaustive {:>6.2}  (ratio {:.3}, {} vs {} evals)",
            net.graph.name(target).unwrap_or("?"),
            g.spread,
            e.spread,
            ratio,
            g.stats.evaluations,
            e.stats.evaluations
        );
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
    println!("  mean greedy/exhaustive ratio: {mean:.3}");
}
