//! The full §II-B learning pipeline on raw data: parse an AMiner-format
//! citation dump, build the action log, learn the topic-aware influence
//! model with EM, persist it, and serve queries — exactly what the deployed
//! OCTOPUS does against ACMCite.
//!
//! ```bash
//! cargo run --release --example learn_from_log [path/to/aminer.txt]
//! ```
//!
//! Without an argument, a bundled miniature corpus is used so the example
//! is runnable out of the box.

use octopus::core::engine::{Octopus, OctopusConfig};
use octopus::data::loader::{build_action_log, parse_aminer, BuildOptions};
use octopus::data::store::{self, Dataset};
use octopus::data::{EmOptions, TicEm};
use std::io::BufReader;

/// A miniature AMiner-format corpus (12 papers, 3 research communities).
const MINI_CORPUS: &str = "\
#* Mining Association Rules between Sets of Items in Large Databases
#@ rakesh agrawal;tomasz imielinski;arun swami
#t 1993
#c SIGMOD
#index p01

#* Fast Algorithms for Mining Association Rules
#@ rakesh agrawal;ramakrishnan srikant
#t 1994
#c VLDB
#index p02
#% p01

#* Mining Frequent Patterns without Candidate Generation
#@ jiawei han;jian pei;yiwen yin
#t 2000
#c SIGMOD
#index p03
#% p01
#% p02

#* Data Mining Concepts and Techniques
#@ jiawei han
#t 2001
#c BOOK
#index p04
#% p02
#% p03

#* Efficient Mining of Partial Periodic Patterns in Time Series Database
#@ jiawei han;guozhu dong;yiwen yin
#t 1999
#c ICDE
#index p05
#% p02

#* Maximizing the Spread of Influence through a Social Network
#@ david kempe;jon kleinberg;eva tardos
#t 2003
#c KDD
#index p06

#* Graphs over Time Densification Laws Shrinking Diameters
#@ jure leskovec;jon kleinberg;christos faloutsos
#t 2005
#c KDD
#index p07
#% p06

#* Cost effective Outbreak Detection in Networks
#@ jure leskovec;andreas krause;carlos guestrin
#t 2007
#c KDD
#index p08
#% p06
#% p07

#* Scalable Influence Maximization for Prevalent Viral Marketing
#@ wei chen;chi wang;yajun wang
#t 2010
#c KDD
#index p09
#% p06
#% p08

#* Latent Dirichlet Allocation Topic Models for Text
#@ david blei;andrew ng;michael jordan
#t 2003
#c JMLR
#index p10

#* Probabilistic Topic Models of Text and Users
#@ david blei
#t 2007
#c ICML
#index p11
#% p10

#* Topic Models meet Social Influence Analysis
#@ jie tang;jimeng sun;chi wang
#t 2009
#c KDD
#index p12
#% p06
#% p10
";

fn main() {
    // 1. Parse (file argument or the bundled corpus).
    let records = match std::env::args().nth(1) {
        Some(path) => {
            println!("parsing {path}…");
            let f = std::fs::File::open(&path).expect("open corpus file");
            parse_aminer(BufReader::new(f)).expect("valid AMiner format")
        }
        None => {
            println!("no corpus given; using the bundled 12-paper miniature");
            parse_aminer(std::io::Cursor::new(MINI_CORPUS)).expect("bundled corpus is valid")
        }
    };
    println!("parsed {} papers", records.len());

    // 2. Build the action log (§II-B pipeline).
    let data = build_action_log(
        &records,
        &BuildOptions {
            min_keyword_count: 1,
            max_negatives_per_item: 16,
        },
    );
    println!(
        "action log: {} authors, {} keywords, {} items, {} trials ({:.0}% activated)",
        data.author_names.len(),
        data.vocab.len(),
        data.log.item_count(),
        data.log.trial_count(),
        100.0 * data.log.activation_rate()
    );

    // 3. Learn the topic-aware IC model with EM.
    let topics = 3;
    let em = TicEm::new(EmOptions {
        num_topics: topics,
        max_iters: 50,
        ..Default::default()
    });
    let fit = em.fit(&data.log, data.vocab.clone(), data.author_names.clone());
    println!(
        "EM converged after {} iterations (loglik {:.2} → {:.2})",
        fit.iterations,
        fit.log_likelihood.first().unwrap_or(&0.0),
        fit.log_likelihood.last().unwrap_or(&0.0)
    );
    for z in 0..topics {
        let top: Vec<String> = fit
            .model
            .top_keywords(z, 4)
            .into_iter()
            .map(|(w, _)| fit.model.vocab().word(w).unwrap_or("?").to_string())
            .collect();
        println!("  topic {z}: {}", top.join(", "));
    }

    // 4. Persist the learned dataset.
    let out = std::env::temp_dir().join("octopus_learned.octs");
    let ds = Dataset {
        graph: fit.graph.clone(),
        model: fit.model.clone(),
        log: Some(data.log),
    };
    store::save(&ds, &out).expect("dataset saves");
    println!("learned dataset persisted to {}", out.display());

    // 5. Serve queries from the learned model.
    let engine = Octopus::new(
        fit.graph,
        fit.model,
        OctopusConfig {
            piks_index_size: 512,
            ..Default::default()
        },
    )
    .expect("engine builds");
    for q in ["mining patterns", "influence network", "topic models"] {
        match engine.find_influencers(q, 3) {
            Ok(a) => {
                let names: Vec<&str> = a.seeds.iter().map(|s| s.name.as_str()).collect();
                println!("influencers for {q:?}: {}", names.join(", "));
            }
            Err(e) => println!("query {q:?}: {e}"),
        }
    }
}
