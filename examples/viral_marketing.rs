//! The QQ deployment scenario: influence analysis for advertising on a
//! messenger-style network — "deciding which users in QQ should be pushed
//! with an ad for viral marketing".
//!
//! ```bash
//! cargo run --release --example viral_marketing
//! ```

use octopus::core::engine::{Octopus, OctopusConfig};
use octopus::data::MessengerConfig;
use octopus::KeywordId;
use std::collections::HashMap;

fn main() {
    let net = MessengerConfig {
        users: 2000,
        links_per_user: 5,
        items: 1500,
        num_topics: 5,
        words_per_topic: 12,
        seed: 31,
        ..Default::default()
    }
    .generate();
    println!(
        "messenger network: {} users, {} friendship edges, {} product posts",
        net.graph.node_count(),
        net.graph.edge_count(),
        net.log.item_count()
    );

    // per-user posted-product keywords, for the suggestion service
    let mut user_keywords: HashMap<octopus::NodeId, Vec<KeywordId>> = HashMap::new();
    for item in net.log.items() {
        let e = user_keywords.entry(item.origin).or_default();
        for &w in &item.keywords {
            if !e.contains(&w) {
                e.push(w);
            }
        }
    }

    let engine = Octopus::new(
        net.graph.clone(),
        net.model.clone(),
        OctopusConfig {
            piks_index_size: 2048,
            ..Default::default()
        },
    )
    .expect("engine builds")
    .with_user_keywords(user_keywords.clone());

    // Ad targeting: who should receive the "game" campaign push?
    println!("\n== ad campaign: keyword \"game\", push list of 8 ==");
    let ans = engine.find_influencers("game", 8).expect("query succeeds");
    for s in &ans.seeds {
        println!("  push to {}", s.name);
    }
    println!(
        "  expected campaign reach ≈ {:.0} users ({:?} query latency)",
        ans.result.spread, ans.elapsed
    );

    // Campaign planning across categories.
    println!("\n== category comparison (k = 5) ==");
    for q in [
        "game",
        "strawberry gum",
        "smartphone",
        "sneaker",
        "flight deal",
    ] {
        match engine.find_influencers(q, 5) {
            Ok(a) => println!(
                "  {q:18} reach≈{:>7.1}  top seed: {}",
                a.result.spread, a.seeds[0].name
            ),
            Err(e) => println!("  {q:18} error: {e}"),
        }
    }

    // Which products is a given influencer best at pushing? (the paper's
    // "Gum / Strawberry / Xylitol ⇒ food influencer" observation)
    let top = ans.seeds[0].name.clone();
    println!("\n== product keywords for influencer {top} ==");
    match engine.suggest_keywords(&top, 3) {
        Ok(s) => {
            println!("  best product keywords: {:?}", s.words);
            println!("  dominant category: {}", s.radar.ranked_axes()[0].0);
            println!("{}", s.radar.ascii());
        }
        Err(e) => println!("  error: {e}"),
    }

    // Fairness of the estimate: re-score the push list with plain MC.
    let probs = engine
        .graph()
        .materialize(ans.gamma.as_slice())
        .expect("dims fine");
    let seeds: Vec<octopus::NodeId> = ans.seeds.iter().map(|s| s.node).collect();
    let mc = octopus::cascade::estimate_spread(engine.graph(), &probs, &seeds, 3000, 5);
    println!(
        "== validation: engine reach {:.1} vs Monte-Carlo {:.1} ==",
        ans.result.spread, mc
    );

    // Targeted campaign (the [7] extension): advertisers pay for *gamers*
    // reached, not total impressions.
    use octopus::core::kim::{Audience, KimAlgorithm, TargetedKim};
    println!("\n== targeted campaign: only gamers count ==");
    let audience = Audience::from_topic_affinity(engine.graph(), &ans.gamma);
    println!(
        "  audience: {} users with game affinity (total weight {:.0})",
        audience.support(),
        audience.total()
    );
    let targeted = TargetedKim::new(engine.graph(), audience);
    let tres = targeted.select(&ans.gamma, 8);
    let reach_targeted = targeted.weighted_spread(&ans.gamma, &tres.seeds);
    let reach_untargeted = targeted.weighted_spread(&ans.gamma, &seeds);
    println!("  gamer reach, targeted seeds:   {reach_targeted:.1}");
    println!("  gamer reach, untargeted seeds: {reach_untargeted:.1}");
    let lift = 100.0 * (reach_targeted - reach_untargeted) / reach_untargeted.max(1.0);
    println!("  targeting lift: {lift:+.0}%");
}
