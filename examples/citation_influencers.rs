//! Scenario 1 at depth: keyword-based influential user discovery on a
//! citation network, comparing every KIM engine on the same queries and
//! demonstrating the "diverse, non-overlapping influence" observation from
//! the paper.
//!
//! ```bash
//! cargo run --release --example citation_influencers
//! ```

use octopus::core::engine::{KimEngineChoice, Octopus, OctopusConfig};
use octopus::core::kim::BoundKind;
use octopus::data::CitationConfig;
use octopus::{NodeId, TopicDistribution};
use std::time::Instant;

fn main() {
    let net = CitationConfig {
        authors: 800,
        papers: 2000,
        num_topics: 8,
        words_per_topic: 20,
        seed: 7,
        ..Default::default()
    }
    .generate();
    println!(
        "citation network: {} researchers, {} edges, {} topics",
        net.graph.node_count(),
        net.graph.edge_count(),
        net.graph.num_topics()
    );

    let queries = [
        "data mining",
        "neural network deep learning",
        "influence maximization",
        "encryption",
    ];
    let engines = [
        ("naive", KimEngineChoice::Naive),
        ("mis", KimEngineChoice::Mis),
        (
            "best-effort/PB",
            KimEngineChoice::BestEffort(BoundKind::Precomputation),
        ),
        (
            "best-effort/NB",
            KimEngineChoice::BestEffort(BoundKind::Neighborhood),
        ),
        (
            "topic-sample",
            KimEngineChoice::TopicSample {
                bound: BoundKind::Precomputation,
                extra_samples: 24,
                direct_eps: 0.1,
            },
        ),
    ];

    for (label, choice) in engines {
        let t0 = Instant::now();
        let engine = Octopus::new(
            net.graph.clone(),
            net.model.clone(),
            OctopusConfig {
                kim: choice,
                piks_index_size: 256,
                ..Default::default()
            },
        )
        .expect("engine builds");
        let offline = t0.elapsed();

        println!("\n== engine {label} (offline {offline:?}) ==");
        for q in queries {
            let ans = match engine.find_influencers(q, 5) {
                Ok(a) => a,
                Err(e) => {
                    println!("  {q:35} -> error: {e}");
                    continue;
                }
            };
            let names: Vec<&str> = ans.seeds.iter().take(3).map(|s| s.name.as_str()).collect();
            println!(
                "  {q:35} {:>9.1?}  spread≈{:>6.1}  top: {}",
                ans.elapsed,
                ans.result.spread,
                names.join(", ")
            );
        }
    }

    // The diversity observation: IM seeds overlap little because greedy
    // picks non-overlapping influence regions, unlike a plain top-degree
    // ranking which crowds into the densest community.
    println!("\n== diversity check (IM seeds vs top-degree ranking) ==");
    let engine = Octopus::new(
        net.graph.clone(),
        net.model.clone(),
        OctopusConfig::default(),
    )
    .expect("engine builds");
    let ans = engine
        .find_influencers("data mining", 8)
        .expect("query succeeds");
    let seeds: Vec<NodeId> = ans.seeds.iter().map(|s| s.node).collect();
    let by_degree = octopus::graph::stats::top_out_degree(engine.graph(), 8);
    let gamma: TopicDistribution = ans.gamma.clone();
    let probs = engine
        .graph()
        .materialize(gamma.as_slice())
        .expect("dims fine");
    let im_spread = octopus::cascade::estimate_spread(engine.graph(), &probs, &seeds, 2000, 1);
    let deg_seeds: Vec<NodeId> = by_degree.iter().map(|&(u, _)| u).collect();
    let deg_spread = octopus::cascade::estimate_spread(engine.graph(), &probs, &deg_seeds, 2000, 1);
    println!("  IM seeds spread      ≈ {im_spread:.1}");
    println!("  top-degree spread    ≈ {deg_spread:.1}");
    println!(
        "  advantage            = {:.1}% (IM avoids overlapping influence regions)",
        100.0 * (im_spread - deg_spread) / deg_spread.max(1.0)
    );
}
